#include "ipin/serve/health.h"

#include <algorithm>

#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"

namespace ipin::serve {
namespace {

ShardHealthOptions ClampOptions(ShardHealthOptions options) {
  options.suspect_after = std::max(1, options.suspect_after);
  options.down_after = std::max(options.suspect_after, options.down_after);
  options.probe_interval_ms = std::max<int64_t>(1, options.probe_interval_ms);
  return options;
}

}  // namespace

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kSuspect:
      return "suspect";
    case ShardState::kDown:
      return "down";
  }
  return "down";
}

ShardHealthTracker::ShardHealthTracker(size_t num_shards,
                                       ShardHealthOptions options)
    : options_(ClampOptions(options)), shards_(num_shards) {
  for (Shard& s : shards_) s.endpoints.resize(1);
}

ShardHealthTracker::ShardHealthTracker(
    const std::vector<size_t>& endpoints_per_shard, ShardHealthOptions options)
    : options_(ClampOptions(options)), shards_(endpoints_per_shard.size()) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].endpoints.resize(std::max<size_t>(1, endpoints_per_shard[i]));
  }
}

bool ShardHealthTracker::AllDown(const Shard& s) {
  for (const Endpoint& ep : s.endpoints) {
    if (ep.state != ShardState::kDown) return false;
  }
  return true;
}

bool ShardHealthTracker::AllowRequest(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Shard& s = shards_[shard];
  return s.endpoints[s.active].state != ShardState::kDown;
}

size_t ShardHealthTracker::ActiveEndpoint(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].active;
}

size_t ShardHealthTracker::NumEndpoints(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].endpoints.size();
}

bool ShardHealthTracker::ProbeDueEndpoint(size_t shard, size_t* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[shard];
  const Clock::time_point now = Clock::now();
  // Lowest index first: the primary's recovery is what demotes a promoted
  // replica, so it must never be starved behind replica probes.
  for (size_t e = 0; e < s.endpoints.size(); ++e) {
    Endpoint& ep = s.endpoints[e];
    if (ep.state != ShardState::kDown) continue;
    if (now < ep.next_probe) continue;
    ep.next_probe = now + std::chrono::milliseconds(options_.probe_interval_ms);
    if (endpoint != nullptr) *endpoint = e;
    return true;
  }
  return false;
}

void ShardHealthTracker::OnSuccess(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  HandleSuccessLocked(shard, shards_[shard].active);
}

void ShardHealthTracker::OnFailure(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  HandleFailureLocked(shard, shards_[shard].active);
}

void ShardHealthTracker::OnEndpointSuccess(size_t shard, size_t endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  HandleSuccessLocked(shard, endpoint);
}

void ShardHealthTracker::OnEndpointFailure(size_t shard, size_t endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  HandleFailureLocked(shard, endpoint);
}

void ShardHealthTracker::HandleSuccessLocked(size_t shard, size_t endpoint) {
  Shard& s = shards_[shard];
  if (endpoint >= s.endpoints.size()) return;
  Endpoint& ep = s.endpoints[endpoint];
  ep.consecutive_failures = 0;
  const bool was_down = ep.state == ShardState::kDown;
  if (ep.state != ShardState::kHealthy) {
    ep.state = ShardState::kHealthy;
    if (was_down) {
      IPIN_COUNTER_ADD("serve.shard.health.recovered", 1);
      LogInfo(StrFormat("serve: shard %zu endpoint %zu recovered "
                        "(circuit closed)",
                        shard, endpoint));
      PublishDownCount();
    }
  }
  // Demotion: the healed primary takes traffic back from a promoted
  // replica. A replica healing only becomes active when the current active
  // endpoint is itself down (the shard was dark).
  if (endpoint == 0 && s.active != 0) {
    IPIN_COUNTER_ADD("serve.shard.health.demoted", 1);
    LogInfo(StrFormat("serve: shard %zu primary healed; demoting replica %zu",
                      shard, s.active));
    s.active = 0;
  } else if (s.endpoints[s.active].state == ShardState::kDown) {
    IPIN_COUNTER_ADD("serve.shard.health.promoted", 1);
    LogInfo(StrFormat("serve: shard %zu promoting recovered endpoint %zu",
                      shard, endpoint));
    s.active = endpoint;
  }
}

void ShardHealthTracker::HandleFailureLocked(size_t shard, size_t endpoint) {
  Shard& s = shards_[shard];
  if (endpoint >= s.endpoints.size()) return;
  Endpoint& ep = s.endpoints[endpoint];
  ++ep.consecutive_failures;
  if (ep.state == ShardState::kHealthy &&
      ep.consecutive_failures >= options_.suspect_after) {
    ep.state = ShardState::kSuspect;
    IPIN_COUNTER_ADD("serve.shard.health.suspect", 1);
    LogWarning(StrFormat(
        "serve: shard %zu endpoint %zu suspect (%d consecutive failures)",
        shard, endpoint, ep.consecutive_failures));
  }
  if (ep.state == ShardState::kSuspect &&
      ep.consecutive_failures >= options_.down_after) {
    ep.state = ShardState::kDown;
    // First probe is due immediately: a shard that just died during a
    // restart should come back as fast as the prober can notice.
    ep.next_probe = Clock::now();
    IPIN_COUNTER_ADD("serve.shard.health.down", 1);
    LogWarning(StrFormat("serve: shard %zu endpoint %zu down (circuit open "
                         "after %d consecutive failures)",
                         shard, endpoint, ep.consecutive_failures));
    // Promotion: the active endpoint's circuit just opened — advance to the
    // first endpoint (wrapping) whose circuit is closed, if any.
    if (endpoint == s.active && s.endpoints.size() > 1) {
      for (size_t step = 1; step < s.endpoints.size(); ++step) {
        const size_t candidate = (s.active + step) % s.endpoints.size();
        if (s.endpoints[candidate].state != ShardState::kDown) {
          IPIN_COUNTER_ADD("serve.shard.health.promoted", 1);
          LogWarning(StrFormat(
              "serve: shard %zu promoting endpoint %zu (active %zu is down)",
              shard, candidate, s.active));
          s.active = candidate;
          break;
        }
      }
    }
    PublishDownCount();
  }
}

void ShardHealthTracker::PublishDownCount() const {
  size_t down = 0;
  for (const Shard& s : shards_) {
    if (AllDown(s)) ++down;
  }
  IPIN_GAUGE_SET("serve.shard.down_count", static_cast<double>(down));
}

ShardState ShardHealthTracker::state(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Shard& s = shards_[shard];
  return s.endpoints[s.active].state;
}

ShardState ShardHealthTracker::endpoint_state(size_t shard,
                                              size_t endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Shard& s = shards_[shard];
  if (endpoint >= s.endpoints.size()) return ShardState::kDown;
  return s.endpoints[endpoint].state;
}

int ShardHealthTracker::consecutive_failures(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Shard& s = shards_[shard];
  return s.endpoints[s.active].consecutive_failures;
}

std::vector<ShardState> ShardHealthTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardState> states;
  states.reserve(shards_.size());
  for (const Shard& s : shards_) {
    states.push_back(s.endpoints[s.active].state);
  }
  return states;
}

size_t ShardHealthTracker::DownCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t down = 0;
  for (const Shard& s : shards_) {
    if (AllDown(s)) ++down;
  }
  return down;
}

}  // namespace ipin::serve
