#ifndef IPIN_SERVE_PROTOCOL_H_
#define IPIN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ipin/graph/types.h"

// Wire protocol of the influence-oracle serving layer — THE canonical
// definition; DESIGN.md §9 and the README quickstart reference this header
// rather than restating it.
//
// Transport: a byte stream (Unix-domain or localhost TCP socket). Each
// request and each response is exactly one JSON object on one line,
// terminated by '\n' (newline-delimited JSON). A connection may pipeline
// requests, but responses carry NO ordering guarantee: queries are fanned
// out to a worker pool and complete in evaluation order, and health/stats
// answers (plus shed/drain rejections) jump the queue by design. A client
// with more than one request in flight MUST assign each a unique "id" and
// correlate responses by the echoed id; the ids of concurrent requests on
// one connection must not collide (the default id 0 is only safe for
// strictly one-at-a-time use).
//
// Request object:
//   {"id": 7,                  // echoed back; any int64 (default 0)
//    "method": "query",        // "query" | "topk" | "health" | "stats"
//                              // | "reload" | "metrics" | "debug"
//                              // | "reshard_status" (router only)
//    "seeds": [1, 2, 3],       // query only: node ids
//    "mode": "auto",           // query only: "sketch" | "exact" | "auto"
//    "k": 10,                  // topk only: result count (default 10)
//    "want_ranks": true,       // query only: also return the union's
//                              // per-cell max-rank vector ("ranks" below).
//                              // Forces the sketch path (ranks only exist
//                              // there); the scatter-gather router sets it
//                              // on every shard leg so partials merge
//                              // exactly.
//    "deadline_ms": 50,        // per-request deadline; 0/absent = server
//                              // default
//    "trace_id": "00c0ffee0badf00d",  // optional distributed-trace context:
//    "parent_span": "1"}       // 64-bit ids as lowercase hex strings (hex
//                              // strings, not JSON numbers, because doubles
//                              // cannot carry 64 bits). A request without a
//                              // trace_id is assigned one at admission; the
//                              // id links the request's spans in the
//                              // server's Chrome trace, tags its log lines,
//                              // and is echoed in the response. parent_span
//                              // nests this request under a caller's span
//                              // (ipin_routerd reuses the client's trace_id
//                              // on every shard leg and sets parent_span to
//                              // it, so one id spans router + shard lanes).
//
// Methods:
//   query   estimate |sigma(seeds)|, the paper's Section 4.1 oracle query.
//           mode "sketch" answers from the vHLL index (O(|S| * beta));
//           "exact" answers from the exact IRS summaries when they are
//           loaded and the evaluation fits the server's exact-latency
//           budget, otherwise degrades to the sketch estimate; "auto"
//           (default) is "exact" semantics when the exact map is loaded,
//           "sketch" otherwise — degraded answers carry "degraded": true.
//           With "want_ranks": true the answer is always computed on the
//           sketch path and additionally carries "ranks".
//   topk    the k nodes with the largest individual influence estimates
//           |sigma(u)|, answered from the vHLL index, sorted by estimate
//           descending (ties broken by ascending node id, so shard partials
//           merge deterministically). Response carries "topk".
//   health  cheap liveness probe, answered inline by the connection reader
//           (never queued, so it works even when the queue is full).
//   stats   server gauges (queue depth, epoch, workers, ...) in "info",
//           including windowed rates/latencies (win_qps, win_p99_us, ...)
//           over the server's stats window when observability is compiled
//           in.
//   reload  ask the server to reload its index file now (also triggered by
//           the background reloader); answers after the attempt with
//           "info": {"epoch": ..., "rolled_back": 0|1}.
//   metrics full metrics snapshot in "payload", answered inline — the
//           scrape endpoint. "format": "prom" (default, Prometheus text
//           exposition) or "json" (the ipin.metrics.v1 report document).
//   debug   the slow-query flight recorder dump (ipin.debug.v1 JSON, see
//           flight_recorder.h) in "payload", answered inline.
//   reshard_status
//           router-only admin verb, answered inline: the live-reshard state
//           in "info" — map_epoch, in_transition (0|1), shards /
//           prev_shards (current and previous-epoch shard counts),
//           replicas_total, shards_down / prev_shards_down. A plain
//           ipin_oracled answers BAD_REQUEST (it has no shard map).
//
// Response object:
//   {"id": 7,
//    "status": "OK",           // see StatusCode below
//    "estimate": 123.4,        // query only
//    "degraded": true,         // query only: sketch answer served where
//                              // exact was requested (budget or unload),
//                              // or — through the router — a partial
//                              // answer missing >= 1 shard
//    "ranks": "0a03...",       // query with want_ranks: the union's
//                              // per-cell max-rank vector, hex-encoded two
//                              // digits per cell (beta cells). Cellwise max
//                              // of rank vectors from disjoint seed
//                              // partitions reproduces the single-process
//                              // estimate exactly (see shard_map.h), which
//                              // is how the router merges shard partials.
//    "topk": [[4, 99.5], ...], // topk only: [node, estimate] pairs,
//                              // estimate descending, ties by node id
//    "epoch": 3,               // index epoch the answer was computed on
//                              // (shard-map epoch in router responses)
//    "shards_total": 3,        // router only: shards that own part of the
//                              // answer (shards holding >= 1 requested
//                              // seed; every shard for topk)
//    "shards_answered": 2,     // router only: of those, how many returned
//                              // a usable partial before the deadline.
//                              // shards_answered < shards_total implies
//                              // degraded=true; the estimate is then a
//                              // conservative lower bound.
//    "coverage": 0.66,         // router only: conservative coverage bound —
//                              // fraction of requested seeds whose owning
//                              // shard answered (fraction of shards for
//                              // topk). 1.0 on a complete answer.
//    "retry_after_ms": 50,     // OVERLOADED/UNAVAILABLE: backoff hint
//    "error": "...",           // BAD_REQUEST/INTERNAL: human-readable
//    "trace_id": "00c0ffee0badf00d",  // echo of the request's trace
//                              // context (server-assigned if absent)
//    "info": {"queue_depth": 0.0, ...},  // stats/reload only
//    "payload": "..."}         // metrics/debug only: the document, as one
//                              // JSON string
//
// Statuses:
//   OK                 the request was served.
//   BAD_REQUEST        unparsable JSON, unknown method, seed out of range.
//   DEADLINE_EXCEEDED  the deadline passed before or during evaluation;
//                      expired requests are dropped at dequeue without
//                      occupying a worker for evaluation.
//   OVERLOADED         admission control shed the request (queue full);
//                      retry after retry_after_ms.
//   UNAVAILABLE        no index is loaded, or the server is draining.
//   INTERNAL           unexpected server-side failure (e.g. injected eval
//                      fault with no fallback available).

namespace ipin::serve {

enum class Method {
  kQuery,
  kTopk,
  kHealth,
  kStats,
  kReload,
  kMetrics,
  kDebug,
  kReshardStatus,
};

/// Formats accepted by the "metrics" method.
enum class MetricsFormat { kPrometheus, kJson };

enum class QueryMode { kSketch, kExact, kAuto };

enum class StatusCode {
  kOk,
  kBadRequest,
  kDeadlineExceeded,
  kOverloaded,
  kUnavailable,
  kInternal,
};

/// "OK", "DEADLINE_EXCEEDED", ... (the wire spelling).
const char* StatusCodeName(StatusCode code);
/// Inverse of StatusCodeName; nullopt for an unknown spelling.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

/// 64-bit trace ids travel as 16 lowercase hex characters ("00c0ffee..."):
/// JSON numbers are doubles and cannot carry 64 bits exactly.
std::string TraceIdToHex(uint64_t id);
/// Inverse of TraceIdToHex; accepts 1-16 hex digits (either case), nullopt
/// otherwise.
std::optional<uint64_t> TraceIdFromHex(std::string_view hex);

/// Rank vectors travel as two lowercase hex digits per cell ("0a03...").
std::string RanksToHex(const std::vector<uint8_t>& ranks);
/// Inverse of RanksToHex; nullopt on odd length or a non-hex digit.
std::optional<std::vector<uint8_t>> RanksFromHex(std::string_view hex);

/// One parsed request line.
struct Request {
  int64_t id = 0;
  Method method = Method::kQuery;
  std::vector<NodeId> seeds;
  QueryMode mode = QueryMode::kAuto;
  /// 0 = use the server default.
  int64_t deadline_ms = 0;
  /// topk only: result count (>= 1; default 10).
  int64_t k = 10;
  /// query only: also return the union's per-cell max-rank vector (forces
  /// the sketch path; see the header comment).
  bool want_ranks = false;
  /// Distributed-trace context; 0 = none carried (the server assigns one).
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  /// metrics method only.
  MetricsFormat format = MetricsFormat::kPrometheus;
};

/// One response line, parsed or about to be serialized.
struct Response {
  int64_t id = 0;
  StatusCode status = StatusCode::kOk;
  double estimate = 0.0;
  bool degraded = false;
  /// query with want_ranks: the union's per-cell max ranks (beta cells);
  /// empty otherwise.
  std::vector<uint8_t> ranks;
  /// topk: [node, estimate] pairs, estimate descending, ties by node id.
  std::vector<std::pair<NodeId, double>> topk;
  uint64_t epoch = 0;
  /// Scatter-gather accounting (router responses only; serialized when
  /// shards_total > 0). See the header comment for semantics.
  int64_t shards_total = 0;
  int64_t shards_answered = 0;
  double coverage = 0.0;
  int64_t retry_after_ms = 0;
  std::string error;
  /// Echo of the request's trace context; 0 = none.
  uint64_t trace_id = 0;
  /// stats/reload payload; names are dot-free identifiers.
  std::vector<std::pair<std::string, double>> info;
  /// metrics/debug payload: a whole document as one JSON string.
  std::string payload;
};

/// Parses one request line (without the trailing newline). On failure
/// returns nullopt and, when `error` is non-null, stores the reason; *id_out
/// (when non-null) receives the request id if one could be read, so the
/// server can echo it in the BAD_REQUEST response.
std::optional<Request> ParseRequest(std::string_view line, std::string* error,
                                    int64_t* id_out = nullptr);

/// Serializes a request as one line, with the trailing '\n'.
std::string SerializeRequest(const Request& request);

/// Parses one response line (client side). nullopt on malformed input.
std::optional<Response> ParseResponse(std::string_view line);

/// Serializes a response as one line, with the trailing '\n'.
std::string SerializeResponse(const Response& response);

}  // namespace ipin::serve

#endif  // IPIN_SERVE_PROTOCOL_H_
