#ifndef IPIN_SERVE_CLIENT_H_
#define IPIN_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "ipin/common/random.h"
#include "ipin/serve/protocol.h"

// Small blocking client for the oracle serving protocol, used by the smoke
// tests, the bench harness, and ipin_oracle_client. One call = one request
// line + one response line. Transport failures (connect refused, read
// timeout, torn connection) are retried on a fresh connection with jittered
// exponential backoff; OVERLOADED responses can opt into the same retry
// loop, honouring the server's retry_after_ms hint. Queries sent without a
// trace_id get a client-generated one (see last_trace_id()), so every
// query is correlatable with its server-side spans and log lines.

namespace ipin::serve {

struct ClientOptions {
  /// One of the two endpoints, mirroring ServerOptions.
  std::string unix_socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;

  /// Per-attempt socket timeouts.
  int64_t connect_timeout_ms = 1000;
  int64_t io_timeout_ms = 2000;

  /// Retry policy: `max_attempts` total attempts, sleeping
  /// backoff_initial_ms * multiplier^i, each sleep jittered uniformly in
  /// [1 - jitter, 1 + jitter] so a retrying fleet does not stampede.
  int max_attempts = 4;
  int64_t backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.5;
  /// Also retry OVERLOADED responses (waiting max(backoff, retry_after_ms)).
  bool retry_overloaded = false;
  /// Seed for the jitter PRNG (deterministic tests).
  uint64_t jitter_seed = 0x5eedULL;
};

class OracleClient {
 public:
  explicit OracleClient(ClientOptions options);
  ~OracleClient();

  OracleClient(const OracleClient&) = delete;
  OracleClient& operator=(const OracleClient&) = delete;

  /// Sends `request` and waits for its response, reconnecting and retrying
  /// per the options. nullopt (with `error` filled when non-null) once the
  /// attempts are exhausted.
  std::optional<Response> Call(const Request& request,
                               std::string* error = nullptr);

  /// Convenience: a query request for `seeds`.
  std::optional<Response> Query(const std::vector<NodeId>& seeds,
                                QueryMode mode = QueryMode::kAuto,
                                int64_t deadline_ms = 0,
                                std::string* error = nullptr);

  /// Drops the pooled connection so the next Call dials afresh.
  void Disconnect();

  /// Overrides options().io_timeout_ms from now on (applied to the pooled
  /// connection immediately and to every future connect). The router uses
  /// this to carve a per-leg timeout — and the shorter hedge timeout of a
  /// first attempt — out of one request's deadline without rebuilding
  /// clients. Values < 1 are clamped to 1.
  void SetIoTimeout(int64_t io_timeout_ms);

  /// Transport attempts that failed and were retried (observability for
  /// tests and the bench harness).
  size_t retries() const { return retries_; }

  /// Trace id the last Call() went out with (the request's own, or the one
  /// this client generated for a query sent without one); 0 before any
  /// call. Lets callers print/propagate the id for server-side correlation.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  bool EnsureConnected(std::string* error);
  bool SendLine(const std::string& line);
  bool ReadLine(std::string* line);

  const ClientOptions options_;
  Rng rng_;
  /// Current per-attempt I/O timeout (starts as options_.io_timeout_ms).
  int64_t io_timeout_ms_;
  int fd_ = -1;
  std::string read_buffer_;
  int64_t next_id_ = 1;
  size_t retries_ = 0;
  int64_t retry_after_hint_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_CLIENT_H_
