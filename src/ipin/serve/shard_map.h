#ifndef IPIN_SERVE_SHARD_MAP_H_
#define IPIN_SERVE_SHARD_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ipin/core/irs_approx.h"
#include "ipin/serve/index_manager.h"

// The shard map of the scatter-gather serving tier (DESIGN.md §11): which
// shard owns which slice of the node space, and where to reach it.
//
// Ownership uses consistent hashing: every shard contributes
// `virtual_points` points on a 64-bit ring (hash of "<name>#<i>"), and a
// node belongs to the shard owning the first ring point at or after
// Hash64(node). Adding or removing one shard therefore moves only ~1/N of
// the node space, which is what makes resharding a rolling operation
// instead of a full rebuild.
//
// Exactness of the scatter-gather merge rests on two invariants this
// header's helpers maintain:
//
//   1. Disjoint cover. Every node is owned by exactly one shard
//      (OwnerOf is a pure function of the map), so a seed set partitions
//      into disjoint per-shard subsets.
//   2. Full node space. A shard index produced by ExtractShardIndex keeps
//      the FULL num_nodes() of the source index and merely nulls out the
//      sketches of nodes it does not own. Seed-range validation therefore
//      behaves identically on every shard, and a rank vector computed over
//      a shard's subset is exactly the cellwise max its seeds would have
//      contributed on the single-process path. Cellwise max is associative
//      and commutative, so max over the shard partials equals the
//      single-process union vector bit for bit, and EstimateFromRanks of
//      the merged vector equals IrsApprox::EstimateUnionSize of the full
//      index. (A node with no sketch contributes an all-zero vector — the
//      identity of cellwise max — matching the single-process "no sketch"
//      path, which returns 0.)
//
// Serialized form: "ipin.shardmap.v1" (still parsed) or "ipin.shardmap.v2"
// (emitted whenever any v2 feature is present), one JSON document:
//
//   {"schema": "ipin.shardmap.v2",
//    "virtual_points": 64,
//    "shards": [
//      {"name": "shard0", "unix_socket": "/tmp/ipin-shard0.sock",
//       "index_file": "shard0.bin", "fingerprint": "crc32c:89ab12cd",
//       "replicas": [{"unix_socket": "/tmp/ipin-shard0r.sock"}]},
//      {"name": "shard1", "tcp_host": "127.0.0.1", "tcp_port": 7101,
//       "mirror_unix_socket": "/tmp/ipin-shard1b.sock"}],
//    "transition": {"virtual_points": 64, "shards": [...]}}
//
// Each shard needs a name (unique; it seeds the ring points, so renaming a
// shard moves its ownership) and exactly one primary endpoint (unix_socket
// or tcp_port [+ tcp_host, default 127.0.0.1]). An optional mirror endpoint
// (mirror_unix_socket / mirror_tcp_port [+ mirror_tcp_host]) is where the
// router sends hedged retries for straggling legs.
//
// v2 additions:
//   * "replicas": up to kMaxReplicas failover endpoints per shard, each a
//     daemon serving the SAME shard file. Distinct from the mirror: the
//     mirror absorbs hedged retries of a slow leg, a replica is PROMOTED by
//     the router's health tracker when the primary's circuit opens and
//     carries all subsequent legs until a probe recovers the primary.
//   * "index_file" / "fingerprint": the shard's index file (relative name)
//     and its crc32c fingerprint ("crc32c:%08x" over the file bytes), bound
//     at materialization time by ipin_shard and checked by `ipin_shard
//     verify`.
//   * "transition": the PREVIOUS epoch's assignment (shard list +
//     virtual_points, same schema minus nesting). While present, the map is
//     "in transition": the router double-dispatches every seed whose owner
//     differs between the two assignments — preferring the new owner,
//     falling back to the old — so a mid-migration answer stays bit-
//     identical to the single-index answer as long as either epoch's owner
//     is up (cellwise max is idempotent, so overlapping partials cannot
//     double-count). `ipin_shard rebalance` emits a transition map;
//     `ipin_shard finalize` strips the block once the old fleet retires.

namespace ipin::serve {

/// One dialable address, mirroring ClientOptions' endpoint fields.
struct ShardEndpoint {
  std::string unix_socket_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;

  bool valid() const { return !unix_socket_path.empty() || tcp_port >= 0; }
  bool operator==(const ShardEndpoint&) const = default;
};

struct ShardInfo {
  std::string name;
  ShardEndpoint endpoint;
  /// Optional hedging target; !valid() when the shard has no mirror
  /// (the default: no socket path and tcp_port = -1).
  ShardEndpoint mirror;
  /// Failover endpoints (v2). Each serves the same shard file as the
  /// primary; the router promotes replicas[0], replicas[1], ... in order
  /// when the active endpoint goes down.
  std::vector<ShardEndpoint> replicas;
  /// Relative file name of this shard's index (v2; set by ipin_shard).
  std::string index_file;
  /// "crc32c:%08x" over the index file's bytes (v2; set by ipin_shard).
  std::string fingerprint;
};

/// Upper bound on replicas per shard (a sanity cap, not a tuning knob).
inline constexpr size_t kMaxReplicas = 4;

class ShardMap {
 public:
  /// Builds the map (and its ring) from explicit shard infos. `shards` must
  /// be non-empty with unique names and valid endpoints (checked; invalid
  /// input leaves an empty map — prefer Parse for untrusted input).
  explicit ShardMap(std::vector<ShardInfo> shards, int virtual_points = 64);

  /// Parses an "ipin.shardmap.v1" or "ipin.shardmap.v2" document. nullopt
  /// (with *error filled when non-null) on syntax errors, a wrong/missing
  /// schema tag, an empty shard list, duplicate names, a shard without a
  /// valid endpoint, bad replicas, or a nested transition block.
  static std::optional<ShardMap> Parse(std::string_view json,
                                       std::string* error);
  static std::optional<ShardMap> ParseFile(const std::string& path,
                                           std::string* error);

  /// Serializes back to one line with stable field order; Parse(ToJson())
  /// reproduces the map exactly. Emits the v1 schema tag when no v2 feature
  /// (replicas / index_file / fingerprint / transition) is present, v2
  /// otherwise.
  std::string ToJson() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardInfo& shard(size_t i) const { return shards_[i]; }
  int virtual_points() const { return virtual_points_; }

  /// The shard owning `node` — consistent-hash ring lookup, O(log ring).
  size_t OwnerOf(NodeId node) const;

  /// Partitions `seeds` into per-shard subsets (result[i] = seeds owned by
  /// shard i, in input order; duplicates preserved).
  std::vector<std::vector<NodeId>> PartitionSeeds(
      std::span<const NodeId> seeds) const;

  /// --- Transition (v2) ---

  /// True while a previous-epoch assignment rides along (the router then
  /// double-dispatches moved keys).
  bool InTransition() const { return previous_ != nullptr; }
  /// The previous assignment; nullptr when not in transition.
  const ShardMap* previous() const { return previous_.get(); }

  /// Attaches/clears the previous assignment. `previous` must itself not be
  /// in transition (one hop only); a nested transition is dropped.
  void BeginTransition(std::shared_ptr<const ShardMap> previous);
  void ClearTransition() { previous_.reset(); }

  /// Does `node`'s owning DAEMON differ between the epochs? (Owners are
  /// compared by shard name, so shard0 staying shard0 is not a move even
  /// though the two maps index it independently.) Always false when not in
  /// transition.
  bool OwnerMoved(NodeId node) const;

 private:
  ShardMap() = default;

  void BuildRing();

  std::vector<ShardInfo> shards_;
  int virtual_points_ = 64;
  /// (ring point, shard index), sorted by point.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
  /// Previous epoch's assignment during a live reshard (never nested).
  std::shared_ptr<const ShardMap> previous_;
};

/// Copies out the slice of `full` that `shard` owns under `map`: same
/// num_nodes, same window/precision/salt, with only the owned nodes'
/// sketches retained (see the exactness invariants above). Pair with
/// SaveInfluenceIndex to write shard files a per-shard ipin_oracled serves.
IrsApprox ExtractShardIndex(const IrsApprox& full, const ShardMap& map,
                            size_t shard);

/// A consistent view of the router's shard map, taken under one lock.
struct ShardMapSnapshot {
  std::shared_ptr<const ShardMap> map;
  uint64_t epoch = 0;
};

/// Epoch-swapped ownership of the shard map, mirroring IndexManager's
/// contract for the serving index: queries snapshot the current map and
/// finish their fan-out on it while a reload swaps the pointer underneath.
/// A map file that is missing, unparsable, or semantically invalid is
/// REJECTED: the old map keeps serving ("rollback"), serve.shard.map.rollback
/// is incremented and an error is logged. Only a valid parse advances the
/// epoch (serve.shard.map.ok). Failpoint "serve.shard.map" forces the
/// rollback path.
class ShardMapManager {
 public:
  /// `map_path` is the file Reload() reads; may be empty for in-process use
  /// (tests, benches) — then Install() is the only way to load.
  explicit ShardMapManager(std::string map_path);

  ShardMapManager(const ShardMapManager&) = delete;
  ShardMapManager& operator=(const ShardMapManager&) = delete;

  /// Installs an in-memory map (first epoch or test swap).
  void Install(std::shared_ptr<const ShardMap> map);

  /// Re-reads map_path; swaps atomically on success, rolls back otherwise.
  /// `force` bypasses the file-unchanged short-circuit.
  ReloadStatus Reload(bool force = true);

  std::shared_ptr<const ShardMap> Current() const;
  ShardMapSnapshot Snapshot() const;
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  const std::string& map_path() const { return map_path_; }

 private:
  struct FileStamp {
    int64_t mtime_ns = -1;
    int64_t size = -1;
    bool operator==(const FileStamp&) const = default;
  };
  static FileStamp StampOf(const std::string& path);

  const std::string map_path_;

  mutable std::mutex mu_;  // guards current_, last_stamp_
  std::shared_ptr<const ShardMap> current_;
  FileStamp last_stamp_;
  std::atomic<uint64_t> epoch_{0};

  std::mutex reload_mu_;  // serializes reload attempts
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_SHARD_MAP_H_
