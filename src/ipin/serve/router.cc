#include "ipin/serve/router.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/export.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace_events.h"
#include "ipin/sketch/estimators.h"

namespace ipin::serve {
namespace {

constexpr size_t kMaxLineBytes = 1 << 20;

int64_t ToMicros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

int64_t MillisUntil(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline - std::chrono::steady_clock::now())
      .count();
}

void SetSendTimeout(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Same bounded write as server.cc: SO_SNDTIMEO bounds each send(), the
// elapsed check bounds the whole response against a drip-feeding peer.
bool WriteAll(int fd, const std::string& data, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        IPIN_COUNTER_ADD("serve.write.timeouts", 1);
      }
      return false;
    }
    written += static_cast<size_t>(n);
    if (written < data.size() && std::chrono::steady_clock::now() >= deadline) {
      IPIN_COUNTER_ADD("serve.write.timeouts", 1);
      return false;
    }
  }
  return true;
}

}  // namespace

struct RouterServer::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::mutex write_mu;
  std::string read_buffer;
  std::atomic<bool> broken{false};
  std::atomic<bool> reader_done{false};
};

namespace {

// Per-shard endpoint count (primary + replicas) for the health tracker.
std::vector<size_t> EndpointCounts(const ShardMap& map) {
  std::vector<size_t> counts(map.num_shards());
  for (size_t i = 0; i < map.num_shards(); ++i) {
    counts[i] = 1 + map.shard(i).replicas.size();
  }
  return counts;
}

}  // namespace

RouterServer::ShardFleet::ShardFleet(std::shared_ptr<const ShardMap> map,
                                     uint64_t epoch,
                                     const RouterOptions& options)
    : map(std::move(map)),
      epoch(epoch),
      options(options),
      health(EndpointCounts(*this->map), options.health) {
  const auto build_pools = [](const ShardMap& m) {
    std::vector<std::vector<std::unique_ptr<Pool>>> built(m.num_shards());
    for (size_t i = 0; i < m.num_shards(); ++i) {
      built[i].resize(1 + m.shard(i).replicas.size());
      for (auto& pool : built[i]) pool = std::make_unique<Pool>();
    }
    return built;
  };
  pools = build_pools(*this->map);
  if (this->map->InTransition()) {
    prev_health = std::make_unique<ShardHealthTracker>(
        EndpointCounts(*this->map->previous()), options.health);
    prev_pools = build_pools(*this->map->previous());
  }
}

std::unique_ptr<OracleClient> RouterServer::ShardFleet::NewClient(
    bool prev, size_t shard, size_t endpoint, bool prefer_mirror) const {
  const ShardInfo& info = SideMap(prev).shard(shard);
  const ShardEndpoint* ep = &info.endpoint;
  if (prefer_mirror && info.mirror.valid()) {
    ep = &info.mirror;
  } else if (endpoint >= 1 && endpoint <= info.replicas.size()) {
    ep = &info.replicas[endpoint - 1];
  }
  ClientOptions client_options;
  client_options.unix_socket_path = ep->unix_socket_path;
  client_options.tcp_host = ep->tcp_host;
  client_options.tcp_port = ep->tcp_port;
  client_options.connect_timeout_ms = options.connect_timeout_ms;
  // The router owns the retry policy (hedging + the next request's fresh
  // fan-out); a leg client must fail fast, not add its own backoff loop.
  client_options.max_attempts = 1;
  return std::make_unique<OracleClient>(client_options);
}

std::unique_ptr<OracleClient> RouterServer::ShardFleet::Borrow(
    bool prev, size_t shard, size_t endpoint) {
  auto& side = prev ? prev_pools : pools;
  if (endpoint < side[shard].size()) {
    Pool& pool = *side[shard][endpoint];
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.idle.empty()) {
      auto client = std::move(pool.idle.back());
      pool.idle.pop_back();
      return client;
    }
  }
  return NewClient(prev, shard, endpoint, /*prefer_mirror=*/false);
}

void RouterServer::ShardFleet::Return(bool prev, size_t shard, size_t endpoint,
                                      std::unique_ptr<OracleClient> client) {
  constexpr size_t kMaxIdlePerShard = 8;
  auto& side = prev ? prev_pools : pools;
  if (endpoint >= side[shard].size()) return;
  Pool& pool = *side[shard][endpoint];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.idle.size() < kMaxIdlePerShard) {
    pool.idle.push_back(std::move(client));
  }
}

RouterServer::RouterServer(ShardMapManager* map, RouterOptions options)
    : map_(map),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      flight_(std::make_shared<FlightRecorder>(options_.flight_recorder_size,
                                               options_.flight_slow_size,
                                               options_.slow_query_us)),
      window_(obs::WindowedAggregatorOptions{
          /*sample_period_ms=*/1000,
          /*num_buckets=*/std::max<size_t>(
              64, static_cast<size_t>(std::max<int64_t>(
                      0, options_.stats_window_s)) * 2)}) {}

RouterServer::~RouterServer() { Shutdown(); }

bool RouterServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const bool unix_mode = !options_.unix_socket_path.empty();
  if (unix_mode == (options_.tcp_port >= 0)) {
    LogError("route: set exactly one of unix_socket_path / tcp_port");
    return false;
  }

  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      LogError("route: socket path too long: " + options_.unix_socket_path);
      return false;
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("route: socket(): %s", std::strerror(errno)));
      return false;
    }
    ::unlink(options_.unix_socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("route: bind(%s): %s",
                         options_.unix_socket_path.c_str(),
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("route: socket(): %s", std::strerror(errno)));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("route: bind(127.0.0.1:%d): %s", options_.tcp_port,
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, 128) != 0) {
    LogError(StrFormat("route: listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);

#ifndef IPIN_OBS_DISABLED
  window_.Start();
#endif

  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = false;
  }
  prober_ = std::thread([this] { ProbeLoop(); });
  acceptor_ = std::thread([this] { AcceptLoop(); });
  worker_pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    worker_pool_->Submit([this] { WorkerLoop(); });
  }
  LogInfo(StrFormat(
      "route: listening on %s (%d workers, queue %zu)",
      unix_mode ? options_.unix_socket_path.c_str()
                : StrFormat("127.0.0.1:%d", bound_port_).c_str(),
      options_.num_workers, options_.queue_capacity));
  return true;
}

std::shared_ptr<RouterServer::ShardFleet> RouterServer::Fleet() {
  const ShardMapSnapshot snapshot = map_->Snapshot();
  if (snapshot.map == nullptr || snapshot.map->num_shards() == 0) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(fleet_mu_);
  if (fleet_ == nullptr || fleet_->epoch != snapshot.epoch) {
    fleet_ = std::make_shared<ShardFleet>(snapshot.map, snapshot.epoch,
                                          options_);
    LogInfo(StrFormat("route: shard fleet rebuilt (%zu shards, epoch %llu)",
                      snapshot.map->num_shards(),
                      static_cast<unsigned long long>(snapshot.epoch)));
  }
  return fleet_;
}

std::vector<ShardState> RouterServer::ShardHealth() const {
  std::lock_guard<std::mutex> lock(fleet_mu_);
  if (fleet_ == nullptr) return {};
  return fleet_->health.Snapshot();
}

void RouterServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      ReapFinishedReaders();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (IPIN_FAILPOINT("serve.accept").fail) {
      IPIN_COUNTER_ADD("serve.accept.failures", 1);
      ::close(fd);
      continue;
    }
    SetSendTimeout(fd, options_.write_timeout_ms);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (active_connections_ >= options_.max_connections) {
        Response reject;
        reject.status = StatusCode::kOverloaded;
        reject.retry_after_ms = options_.retry_after_ms;
        reject.error = "connection limit reached";
        IPIN_COUNTER_ADD("serve.requests.shed", 1);
        WriteResponse(conn, reject, options_.write_timeout_ms);
        continue;
      }
      ++active_connections_;
      IPIN_GAUGE_SET("serve.connections.active", active_connections_);
      readers_.push_back(ReaderSlot{
          std::thread([this, conn] { ReadLoop(conn); }), conn});
    }
    ReapFinishedReaders();
  }
}

void RouterServer::ReapFinishedReaders() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < readers_.size();) {
    if (readers_[i].conn->reader_done.load(std::memory_order_acquire)) {
      readers_[i].thread.join();
      readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
}

void RouterServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::string line;
  while (true) {
    size_t newline;
    while ((newline = conn->read_buffer.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n == 0) goto done;
      if (n < 0) {
        if (errno == EINTR) continue;
        goto done;
      }
      conn->read_buffer.append(chunk, static_cast<size_t>(n));
      if (conn->read_buffer.size() > kMaxLineBytes) {
        LogWarning("route: dropping connection with oversized request line");
        goto done;
      }
    }
    line.assign(conn->read_buffer, 0, newline);
    conn->read_buffer.erase(0, newline + 1);

    if (IPIN_FAILPOINT("serve.read").fail) {
      IPIN_COUNTER_ADD("serve.read.failures", 1);
      goto done;
    }
    if (line.empty()) continue;

    std::string parse_error;
    int64_t id = 0;
    auto request = ParseRequest(line, &parse_error, &id);
    if (!request.has_value()) {
      Response bad;
      bad.id = id;
      bad.status = StatusCode::kBadRequest;
      bad.error = parse_error;
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      WriteResponse(conn, bad, options_.write_timeout_ms);
      continue;
    }
    HandleRequest(conn, std::move(*request));
    if (conn->broken.load(std::memory_order_acquire)) break;
  }
done:
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    --active_connections_;
    IPIN_GAUGE_SET("serve.connections.active", active_connections_);
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void RouterServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                 Request&& request) {
  const Clock::time_point now = Clock::now();
  switch (request.method) {
    case Method::kHealth: {
      IPIN_LATENCY_SCOPE("serve.latency.health_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.epoch = map_->Epoch();
      response.status = response.epoch > 0 ? StatusCode::kOk
                                           : StatusCode::kUnavailable;
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kStats: {
      IPIN_LATENCY_SCOPE("serve.latency.stats_us");
      WriteResponse(conn, StatsResponse(request), options_.write_timeout_ms);
      return;
    }
    case Method::kMetrics: {
      IPIN_LATENCY_SCOPE("serve.latency.metrics_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kOk;
      response.epoch = map_->Epoch();
      response.payload =
          request.format == MetricsFormat::kJson
              ? obs::GlobalMetricsReportJson()
              : obs::MetricsPrometheusText(
                    obs::MetricsRegistry::Global().Snapshot());
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kDebug: {
      IPIN_LATENCY_SCOPE("serve.latency.debug_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kOk;
      response.epoch = map_->Epoch();
      response.payload = flight_->DumpJson();
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kReload: {
      // The router's reload verb swaps the SHARD MAP, not an index. The map
      // is one small JSON document, so unlike the oracle server's index
      // reload it runs inline on the reader; a corrupt file rolls back
      // (old epoch keeps routing) per ShardMapManager's contract.
      IPIN_LATENCY_SCOPE("serve.latency.reload_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      if (draining_.load(std::memory_order_acquire)) {
        response.status = StatusCode::kUnavailable;
        response.error = "server is draining";
      } else {
        const ReloadStatus status = map_->Reload();
        response.status = StatusCode::kOk;
        response.epoch = map_->Epoch();
        response.info.emplace_back(
            "rolled_back", status == ReloadStatus::kRolledBack ? 1.0 : 0.0);
      }
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kReshardStatus: {
      // Live-reshard admin verb, answered inline: where the fleet stands in
      // the old->new transition, plus both sides' health.
      IPIN_LATENCY_SCOPE("serve.latency.stats_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kOk;
      const std::shared_ptr<ShardFleet> fleet = Fleet();
      response.epoch = fleet ? fleet->epoch : 0;
      response.info.emplace_back(
          "map_epoch", fleet ? static_cast<double>(fleet->epoch) : 0.0);
      if (fleet) {
        const bool in_transition = fleet->map->InTransition();
        response.info.emplace_back("in_transition", in_transition ? 1.0 : 0.0);
        response.info.emplace_back(
            "shards", static_cast<double>(fleet->map->num_shards()));
        response.info.emplace_back(
            "prev_shards",
            in_transition
                ? static_cast<double>(fleet->map->previous()->num_shards())
                : 0.0);
        size_t replicas_total = 0;
        for (size_t s = 0; s < fleet->map->num_shards(); ++s) {
          replicas_total += fleet->map->shard(s).replicas.size();
        }
        response.info.emplace_back("replicas_total",
                                   static_cast<double>(replicas_total));
        response.info.emplace_back(
            "shards_down", static_cast<double>(fleet->health.DownCount()));
        response.info.emplace_back(
            "prev_shards_down",
            fleet->prev_health
                ? static_cast<double>(fleet->prev_health->DownCount())
                : 0.0);
      } else {
        response.info.emplace_back("in_transition", 0.0);
        response.info.emplace_back("shards", 0.0);
        response.info.emplace_back("prev_shards", 0.0);
        response.info.emplace_back("replicas_total", 0.0);
        response.info.emplace_back("shards_down", 0.0);
        response.info.emplace_back("prev_shards_down", 0.0);
      }
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kQuery:
    case Method::kTopk:
      break;
  }

  if (request.trace_id == 0) {
    request.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t trace_id = request.trace_id;
  IPIN_TRACE_ASYNC_BEGIN("serve.request", trace_id);

  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  Task task;
  task.deadline = now + std::chrono::milliseconds(deadline_ms);
  task.enqueued = now;
  task.conn = conn;
  const int64_t id = request.id;

  if (draining_.load(std::memory_order_acquire)) {
    Response response;
    response.id = id;
    response.trace_id = trace_id;
    response.status = StatusCode::kUnavailable;
    response.error = "server is draining";
    response.retry_after_ms = options_.retry_after_ms;
    WriteResponse(conn, response, options_.write_timeout_ms);
    RecordRejected(trace_id, id, request.mode, request.seeds.size(),
                   StatusCode::kUnavailable, now);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);
    return;
  }
  task.admission_us = ToMicros(Clock::now() - now);
  const QueryMode mode = request.mode;
  const size_t num_seeds = request.seeds.size();
  task.request = std::move(request);
  if (!queue_.TryPush(std::move(task))) {
    Response response;
    response.id = id;
    response.trace_id = trace_id;
    response.status = StatusCode::kOverloaded;
    response.retry_after_ms = options_.retry_after_ms;
    IPIN_COUNTER_ADD("serve.requests.shed", 1);
    WriteResponse(conn, response, options_.write_timeout_ms);
    RecordRejected(trace_id, id, mode, num_seeds, StatusCode::kOverloaded,
                   now);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);
    return;
  }
  IPIN_TRACE_ASYNC_BEGIN("serve.queue", trace_id);
  IPIN_COUNTER_ADD("serve.requests.accepted", 1);
  IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
}

void RouterServer::RecordRejected(uint64_t trace_id, int64_t id,
                                  QueryMode mode, size_t num_seeds,
                                  StatusCode status,
                                  Clock::time_point received) {
  RequestRecord record;
  record.trace_id = trace_id;
  record.id = id;
  record.mode = mode;
  record.status = status;
  record.num_seeds = num_seeds;
  record.epoch = map_->Epoch();
  record.total_us = ToMicros(Clock::now() - received);
  record.admission_us = record.total_us;
  flight_->Record(record);
}

void RouterServer::WorkerLoop() {
  while (true) {
    auto task = queue_.Pop();
    if (!task.has_value()) return;
    IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
    const Clock::time_point now = Clock::now();
    const uint64_t trace_id = task->request.trace_id;
    const int64_t queue_us = ToMicros(now - task->enqueued);
    IPIN_HISTOGRAM_RECORD("serve.queue.wait_us", queue_us);
    IPIN_TRACE_ASYNC_END("serve.queue", trace_id);

    const bool past_drain =
        draining_.load(std::memory_order_acquire) && now >= drain_deadline_;

    Response response;
    int64_t eval_us = 0;
    if (now >= task->deadline || past_drain) {
      response.id = task->request.id;
      response.trace_id = trace_id;
      response.status = StatusCode::kDeadlineExceeded;
      response.epoch = map_->Epoch();
      IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
    } else {
      IPIN_LATENCY_SCOPE("serve.latency.route_us");
      IPIN_TRACE_ASYNC_BEGIN("serve.route", trace_id);
      const Clock::time_point eval_start = Clock::now();
      response = EvaluateScatter(task->request, task->deadline);
      eval_us = ToMicros(Clock::now() - eval_start);
      IPIN_TRACE_ASYNC_END("serve.route", trace_id);
    }
    IPIN_TRACE_ASYNC_BEGIN("serve.write", trace_id);
    const Clock::time_point write_start = Clock::now();
    WriteResponse(task->conn, response, options_.write_timeout_ms);
    const Clock::time_point done = Clock::now();
    IPIN_TRACE_ASYNC_END("serve.write", trace_id);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);

    RequestRecord record;
    record.trace_id = trace_id;
    record.id = task->request.id;
    record.mode = task->request.mode;
    record.status = response.status;
    record.degraded = response.degraded;
    record.num_seeds = task->request.seeds.size();
    record.epoch = response.epoch;
    record.admission_us = task->admission_us;
    record.queue_us = queue_us;
    record.eval_us = eval_us;
    record.write_us = ToMicros(done - write_start);
    record.total_us = ToMicros(done - task->enqueued);
    flight_->Record(record);
    if (record.total_us > options_.slow_query_us) {
      LogWarning(StrFormat(
          "route: slow request trace_id=%s id=%lld status=%s total_us=%lld "
          "(admission=%lld queue=%lld route=%lld write=%lld)",
          TraceIdToHex(trace_id).c_str(),
          static_cast<long long>(record.id), StatusCodeName(record.status),
          static_cast<long long>(record.total_us),
          static_cast<long long>(record.admission_us),
          static_cast<long long>(record.queue_us),
          static_cast<long long>(record.eval_us),
          static_cast<long long>(record.write_us)));
    }
  }
}

std::optional<Response> RouterServer::RunShardLeg(
    const std::shared_ptr<ShardFleet>& fleet, bool prev, size_t shard,
    const Request& leg, Clock::time_point leg_deadline,
    FlightRecorder* flight) {
  const Clock::time_point start = Clock::now();
  IPIN_COUNTER_ADD("serve.shard.legs", 1);
  if (prev) IPIN_COUNTER_ADD("serve.shard.legs.fallback", 1);
  IPIN_TRACE_ASYNC_BEGIN("serve.shard.leg", leg.trace_id);
  ShardHealthTracker& health = fleet->SideHealth(prev);

  // One flight record per leg, tagged with its shard, under the request's
  // trace id — the dump shows which leg made a request slow or partial.
  const auto record_leg = [&](StatusCode status, uint64_t epoch) {
    RequestRecord record;
    record.shard = static_cast<int>(shard);
    record.trace_id = leg.trace_id;
    record.id = leg.id;
    record.mode = leg.mode;
    record.status = status;
    record.num_seeds = leg.seeds.size();
    record.epoch = epoch;
    record.eval_us = ToMicros(Clock::now() - start);
    record.total_us = record.eval_us;
    flight->Record(record);
    IPIN_TRACE_ASYNC_END("serve.shard.leg", leg.trace_id);
  };

  if (!health.AllowRequest(shard)) {
    // Circuit open on every endpoint: report the shard missing immediately
    // instead of burning the request's budget on backends known to be down.
    IPIN_COUNTER_ADD("serve.shard.legs.skipped", 1);
    record_leg(StatusCode::kUnavailable, 0);
    return std::nullopt;
  }
  // Replica failover: dial whatever endpoint the health tracker currently
  // designates (the primary, or a promoted replica while the primary's
  // circuit is open). All outcome bookkeeping is addressed to this endpoint
  // so a replica's failures never count against the primary.
  const size_t endpoint = health.ActiveEndpoint(shard);
  int64_t remaining_ms = MillisUntil(leg_deadline);
  if (remaining_ms < 1) {
    // Never ran: says nothing about the shard's health.
    record_leg(StatusCode::kDeadlineExceeded, 0);
    return std::nullopt;
  }

  std::optional<Response> result;
  std::string error;
  if (IPIN_FAILPOINT("serve.shard.connect").fail) {
    error = "injected serve.shard.connect fault";
  } else {
    auto client = fleet->Borrow(prev, shard, endpoint);
    const bool hedge = fleet->options.hedge_after_ms > 0 &&
                       fleet->options.hedge_after_ms < remaining_ms;
    client->SetIoTimeout(hedge ? fleet->options.hedge_after_ms
                               : remaining_ms);
    if (IPIN_FAILPOINT("serve.shard.rpc").fail) {
      error = "injected serve.shard.rpc fault";
      client->Disconnect();
    } else {
      result = client->Call(leg, &error);
    }
    if (result.has_value()) {
      fleet->Return(prev, shard, endpoint, std::move(client));
    } else if (hedge) {
      // Hedged retry: the first attempt straggled past hedge_after_ms (or
      // failed outright); re-send once on the mirror — or the same endpoint
      // when none is configured — with whatever budget is left.
      IPIN_COUNTER_ADD("serve.shard.hedged", 1);
      remaining_ms = MillisUntil(leg_deadline);
      if (remaining_ms >= 1) {
        if (IPIN_FAILPOINT("serve.shard.rpc").fail) {
          error = "injected serve.shard.rpc fault";
        } else {
          auto hedged =
              fleet->NewClient(prev, shard, endpoint, /*prefer_mirror=*/true);
          hedged->SetIoTimeout(remaining_ms);
          result = hedged->Call(leg, &error);
        }
      }
    }
  }
  IPIN_HISTOGRAM_RECORD("serve.shard.leg_us", ToMicros(Clock::now() - start));

  // A usable partial is OK (merged) or BAD_REQUEST (propagated: the seed
  // range check is deterministic across shards). Everything else — no
  // response, OVERLOADED, UNAVAILABLE, DEADLINE_EXCEEDED, INTERNAL — counts
  // against the endpoint's health and the leg is reported missing.
  const bool usable = result.has_value() &&
                      (result->status == StatusCode::kOk ||
                       result->status == StatusCode::kBadRequest);
  if (usable) {
    health.OnEndpointSuccess(shard, endpoint);
    IPIN_COUNTER_ADD("serve.shard.legs.ok", 1);
    record_leg(result->status, result->epoch);
    return result;
  }
  health.OnEndpointFailure(shard, endpoint);
  IPIN_COUNTER_ADD("serve.shard.legs.failed", 1);
  if (!result.has_value()) {
    LogDebug(StrFormat("route: shard %zu endpoint %zu leg failed "
                       "trace_id=%s: %s",
                       shard, endpoint, TraceIdToHex(leg.trace_id).c_str(),
                       error.c_str()));
  }
  record_leg(result.has_value() ? result->status : StatusCode::kUnavailable,
             result.has_value() ? result->epoch : 0);
  return std::nullopt;
}

Response RouterServer::EvaluateScatter(const Request& request,
                                       Clock::time_point deadline) {
  Response response;
  response.id = request.id;
  response.trace_id = request.trace_id;

  const std::shared_ptr<ShardFleet> fleet = Fleet();
  if (fleet == nullptr) {
    response.status = StatusCode::kUnavailable;
    response.error = "no shard map loaded";
    response.retry_after_ms = options_.retry_after_ms;
    return response;
  }
  response.epoch = fleet->epoch;

  // Fan-out plan: for a query, one leg per shard owning >= 1 seed (with its
  // disjoint seed subset, want_ranks=true, sketch mode); for topk, one leg
  // per shard (every shard may own top nodes). During a transition, moved
  // seeds additionally ride a fallback leg to their previous-epoch owner
  // (double-dispatch: the merge is idempotent, so the overlap is free), and
  // topk fans out to the previous fleet as well.
  const bool topk = request.method == Method::kTopk;
  const bool in_transition = fleet->map->InTransition();
  struct Leg {
    size_t shard = 0;
    /// Targets the previous-epoch fleet (fallback leg of a double
    /// dispatch).
    bool prev = false;
    /// Positions in request.seeds this leg carries (coverage accounting —
    /// overlapping legs must not double-count a seed).
    std::vector<size_t> seed_idx;
    Request request;
  };
  std::vector<Leg> legs;
  const size_t total_seeds = request.seeds.size();
  // Each leg's deadline leaves the router margin to merge and answer; the
  // leg's wire deadline_ms tells the backend the same budget.
  const Clock::time_point leg_deadline = std::max(
      Clock::now() + std::chrono::milliseconds(1),
      deadline - std::chrono::milliseconds(options_.shard_deadline_margin_ms));
  const int64_t leg_deadline_ms = std::max<int64_t>(1,
                                                    MillisUntil(leg_deadline));
  const auto make_leg = [&](size_t shard, bool prev) {
    Leg leg;
    leg.shard = shard;
    leg.prev = prev;
    leg.request.method = topk ? Method::kTopk : Method::kQuery;
    if (topk) {
      leg.request.k = request.k;
    } else {
      leg.request.mode = QueryMode::kSketch;
      leg.request.want_ranks = true;
    }
    leg.request.deadline_ms = leg_deadline_ms;
    leg.request.trace_id = request.trace_id;
    leg.request.parent_span = request.trace_id;
    return leg;
  };
  size_t num_new_legs = 0;  // topk: legs on the new epoch's fleet
  if (topk) {
    num_new_legs = fleet->map->num_shards();
    legs.reserve(num_new_legs +
                 (in_transition ? fleet->map->previous()->num_shards() : 0));
    for (size_t s = 0; s < num_new_legs; ++s) {
      legs.push_back(make_leg(s, /*prev=*/false));
    }
    if (in_transition) {
      for (size_t s = 0; s < fleet->map->previous()->num_shards(); ++s) {
        legs.push_back(make_leg(s, /*prev=*/true));
      }
    }
  } else {
    // Partition by the NEW map, remembering each seed's position; moved
    // seeds get a second, previous-epoch partition.
    std::vector<std::vector<size_t>> parts(fleet->map->num_shards());
    std::vector<std::vector<size_t>> prev_parts(
        in_transition ? fleet->map->previous()->num_shards() : 0);
    for (size_t i = 0; i < request.seeds.size(); ++i) {
      const NodeId seed = request.seeds[i];
      parts[fleet->map->OwnerOf(seed)].push_back(i);
      if (in_transition && fleet->map->OwnerMoved(seed)) {
        prev_parts[fleet->map->previous()->OwnerOf(seed)].push_back(i);
      }
    }
    const auto emit = [&](std::vector<std::vector<size_t>>& side_parts,
                          bool prev) {
      for (size_t s = 0; s < side_parts.size(); ++s) {
        if (side_parts[s].empty()) continue;
        Leg leg = make_leg(s, prev);
        leg.seed_idx = std::move(side_parts[s]);
        leg.request.seeds.reserve(leg.seed_idx.size());
        for (const size_t i : leg.seed_idx) {
          leg.request.seeds.push_back(request.seeds[i]);
        }
        legs.push_back(std::move(leg));
      }
    };
    emit(parts, /*prev=*/false);
    if (in_transition) emit(prev_parts, /*prev=*/true);
  }
  if (legs.empty()) {
    // A query whose seed set is empty unions nothing — the single-process
    // answer is 0 with no shard involved.
    response.status = StatusCode::kOk;
    response.estimate = 0.0;
    IPIN_COUNTER_ADD("serve.requests.ok", 1);
    return response;
  }

  // Scatter. Legs run on the shared global pool and rendezvous through a
  // refcounted Gather; the worker waits until every leg delivered or the
  // request deadline passed. A straggler completing later writes into the
  // still-alive Gather and is ignored. Legs capture only refcounted state
  // (fleet, gather, flight) — never `this` — so a leg stuck in a socket
  // timeout cannot dangle across server shutdown.
  auto gather = std::make_shared<Gather>();
  gather->pending = legs.size();
  gather->results.resize(legs.size());
  const std::shared_ptr<FlightRecorder> flight = flight_;
  for (size_t i = 0; i < legs.size(); ++i) {
    GlobalPool().Submit([fleet, gather, flight, i,
                         leg = legs[i].request, shard = legs[i].shard,
                         prev = legs[i].prev, leg_deadline] {
      std::optional<Response> result =
          RunShardLeg(fleet, prev, shard, leg, leg_deadline, flight.get());
      std::lock_guard<std::mutex> lock(gather->mu);
      gather->results[i] = std::move(result);
      --gather->pending;
      gather->cv.notify_all();
    });
  }

  // Gather.
  std::vector<std::optional<Response>> results;
  {
    std::unique_lock<std::mutex> lock(gather->mu);
    gather->cv.wait_until(lock, deadline,
                          [&] { return gather->pending == 0; });
    results = gather->results;
  }

  // Merge. During a transition the same seed (query) or the same node
  // (topk) may arrive from both epochs; the cellwise max is idempotent and
  // both epochs computed the identical per-node sketch, so the overlap
  // merges away — per-seed coverage bits and a by-node dedupe keep the
  // accounting honest.
  size_t answered = 0;
  size_t answered_new = 0;   // topk: usable legs on the new fleet
  size_t answered_prev = 0;  // topk: usable legs on the previous fleet
  std::vector<bool> covered(total_seeds, false);
  std::vector<uint8_t> merged;
  std::vector<std::pair<NodeId, double>> candidates;
  for (size_t i = 0; i < legs.size(); ++i) {
    if (!results[i].has_value()) continue;
    const Response& partial = *results[i];
    if (partial.status == StatusCode::kBadRequest) {
      // Deterministic across shards (full node space everywhere): the
      // request itself is bad, not the fan-out.
      response.status = StatusCode::kBadRequest;
      response.error = partial.error;
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      return response;
    }
    if (topk) {
      candidates.insert(candidates.end(), partial.topk.begin(),
                        partial.topk.end());
    } else {
      if (partial.ranks.empty() ||
          (!merged.empty() && partial.ranks.size() != merged.size())) {
        // Protocol violation (a sketch answer always carries beta cells):
        // treat the leg as missing rather than poison the merge.
        LogWarning(StrFormat("route: shard %zu returned a malformed rank "
                             "vector; dropping its partial",
                             legs[i].shard));
        continue;
      }
      if (merged.empty()) {
        merged = partial.ranks;
      } else {
        for (size_t c = 0; c < merged.size(); ++c) {
          if (partial.ranks[c] > merged[c]) merged[c] = partial.ranks[c];
        }
      }
      for (const size_t idx : legs[i].seed_idx) covered[idx] = true;
    }
    ++answered;
    if (legs[i].prev) {
      ++answered_prev;
    } else {
      ++answered_new;
    }
  }

  if (IPIN_FAILPOINT("serve.shard.merge").fail) {
    response.status = StatusCode::kInternal;
    response.error = "injected serve.shard.merge fault";
    return response;
  }

  response.shards_total = static_cast<int64_t>(legs.size());
  response.shards_answered = static_cast<int64_t>(answered);
  if (answered == 0) {
    // Nothing to stand an answer on. This is the ONLY path on which a
    // fanned-out request errors: any single answering shard yields a
    // partial instead.
    response.status = StatusCode::kUnavailable;
    response.error = "no shard answered";
    response.retry_after_ms = options_.retry_after_ms;
    return response;
  }

  response.status = StatusCode::kOk;
  if (topk) {
    // Either epoch's fleet can produce the complete answer on its own, so
    // coverage is the better of the two fractions (no transition: all legs
    // are new-side and this is the usual answered/total).
    const size_t prev_legs = legs.size() - num_new_legs;
    const double new_frac =
        num_new_legs == 0 ? 0.0
                          : static_cast<double>(answered_new) /
                                static_cast<double>(num_new_legs);
    const double prev_frac =
        prev_legs == 0 ? 0.0
                       : static_cast<double>(answered_prev) /
                             static_cast<double>(prev_legs);
    response.coverage = std::max(new_frac, prev_frac);
  } else {
    size_t marked = 0;
    for (const bool c : covered) marked += c ? 1 : 0;
    response.coverage = total_seeds == 0
                            ? 1.0
                            : static_cast<double>(marked) /
                                  static_cast<double>(total_seeds);
  }
  // Incomplete coverage is a degraded answer (double-dispatch means a lost
  // leg is harmless when the seed's other-epoch owner answered); so is a
  // sketch-merged answer where the client explicitly asked for exact
  // evaluation (the router always merges on the sketch path).
  response.degraded =
      response.coverage < 1.0 || (!topk && request.mode == QueryMode::kExact);
  if (topk) {
    // Ownership is disjoint within an epoch, so the global top-k is the k
    // best of the shards' local top-k lists — same order (estimate desc,
    // ties by node id asc) as a single backend would produce. Across epochs
    // the same node may appear twice with the identical estimate (both
    // epochs answer from the same per-node sketch): dedupe by node id
    // before cutting to k.
    std::sort(candidates.begin(), candidates.end(),
              [](const std::pair<NodeId, double>& a,
                 const std::pair<NodeId, double>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second > b.second;
              });
    candidates.erase(
        std::unique(candidates.begin(), candidates.end(),
                    [](const std::pair<NodeId, double>& a,
                       const std::pair<NodeId, double>& b) {
                      return a.first == b.first;
                    }),
        candidates.end());
    std::sort(candidates.begin(), candidates.end(),
              [](const std::pair<NodeId, double>& a,
                 const std::pair<NodeId, double>& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const size_t k = static_cast<size_t>(std::max<int64_t>(1, request.k));
    if (candidates.size() > k) candidates.resize(k);
    response.topk = std::move(candidates);
  } else {
    // The exactness tentpole: cellwise max over disjoint partials, one
    // estimate at the end — bit-identical to the single-process answer
    // over the answered seeds (see shard_map.h). With shards missing it is
    // a conservative lower bound: absent seeds only lose rank mass.
    response.estimate = merged.empty() ? 0.0 : EstimateFromRanks(merged);
    if (request.want_ranks) response.ranks = std::move(merged);
  }
  IPIN_COUNTER_ADD("serve.requests.ok", 1);
  if (response.degraded) {
    IPIN_COUNTER_ADD("serve.requests.degraded", 1);
    IPIN_COUNTER_ADD("serve.requests.partial", 1);
    LogWarning(StrFormat(
        "route: partial answer trace_id=%s id=%lld shards=%lld/%lld "
        "coverage=%.3f",
        TraceIdToHex(request.trace_id).c_str(),
        static_cast<long long>(request.id),
        static_cast<long long>(response.shards_answered),
        static_cast<long long>(response.shards_total), response.coverage));
  }
  return response;
}

void RouterServer::ProbeLoop() {
  const int64_t interval_ms =
      std::max<int64_t>(1, options_.health.probe_interval_ms);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      // Wake at twice the probe rate so a due probe is never late by more
      // than half an interval; ProbeDue rate-limits the actual sends.
      probe_cv_.wait_for(lock,
                         std::chrono::milliseconds(std::max<int64_t>(
                             1, interval_ms / 2)),
                         [this] { return probe_stop_; });
      if (probe_stop_) return;
    }
    std::shared_ptr<ShardFleet> fleet;
    {
      std::lock_guard<std::mutex> lock(fleet_mu_);
      fleet = fleet_;
    }
    if (fleet == nullptr) continue;
    // Probe both epochs during a transition — the previous fleet keeps
    // serving fallback legs until the map is finalized, so its endpoints
    // need recovery probes too.
    for (const bool prev : {false, true}) {
      if (prev && fleet->prev_health == nullptr) continue;
      ShardHealthTracker& health = fleet->SideHealth(prev);
      const ShardMap& map = fleet->SideMap(prev);
      for (size_t s = 0; s < map.num_shards(); ++s) {
        size_t endpoint = 0;
        if (!health.ProbeDueEndpoint(s, &endpoint)) continue;
        IPIN_COUNTER_ADD("serve.shard.probe", 1);
        Request probe;
        probe.method = Method::kHealth;
        auto client =
            fleet->NewClient(prev, s, endpoint, /*prefer_mirror=*/false);
        client->SetIoTimeout(std::max<int64_t>(10, interval_ms));
        std::string error;
        const std::optional<Response> result = client->Call(probe, &error);
        // Recovery requires a SERVING backend: a daemon that answers health
        // with UNAVAILABLE (no index yet) stays down rather than flapping
        // between probe-recovered and leg-failed.
        if (result.has_value() && result->status == StatusCode::kOk) {
          IPIN_COUNTER_ADD("serve.shard.probe.ok", 1);
          health.OnEndpointSuccess(s, endpoint);
        } else {
          health.OnEndpointFailure(s, endpoint);
        }
      }
    }
  }
}

Response RouterServer::StatsResponse(const Request& request) {
  Response response;
  response.id = request.id;
  response.trace_id = request.trace_id;
  response.status = StatusCode::kOk;
  response.epoch = map_->Epoch();
  size_t active;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active = active_connections_;
  }
  size_t shards = 0;
  size_t healthy = 0;
  size_t suspect = 0;
  size_t down = 0;
  {
    const auto snapshot = map_->Snapshot();
    if (snapshot.map != nullptr) shards = snapshot.map->num_shards();
  }
  for (const ShardState state : ShardHealth()) {
    switch (state) {
      case ShardState::kHealthy:
        ++healthy;
        break;
      case ShardState::kSuspect:
        ++suspect;
        break;
      case ShardState::kDown:
        ++down;
        break;
    }
  }
  response.info = {
      {"queue_depth", static_cast<double>(queue_.Depth())},
      {"queue_capacity", static_cast<double>(options_.queue_capacity)},
      {"workers", static_cast<double>(options_.num_workers)},
      {"connections_active", static_cast<double>(active)},
      {"map_epoch", static_cast<double>(map_->Epoch())},
      {"shards_total", static_cast<double>(shards)},
      {"shards_healthy", static_cast<double>(healthy)},
      {"shards_suspect", static_cast<double>(suspect)},
      {"shards_down", static_cast<double>(down)},
      {"draining", draining_.load(std::memory_order_acquire) ? 1.0 : 0.0},
  };
#ifndef IPIN_OBS_DISABLED
  const double win_s = static_cast<double>(options_.stats_window_s);
  const obs::HistogramSnapshot latency =
      window_.WindowedHistogram("serve.latency.route_us", win_s);
  response.info.emplace_back("win_s", win_s);
  response.info.emplace_back("win_qps",
                             window_.Rate("serve.requests.accepted", win_s));
  response.info.emplace_back("win_ok_per_s",
                             window_.Rate("serve.requests.ok", win_s));
  response.info.emplace_back(
      "win_partial_per_s", window_.Rate("serve.requests.partial", win_s));
  response.info.emplace_back(
      "win_leg_fail_per_s", window_.Rate("serve.shard.legs.failed", win_s));
  response.info.emplace_back("win_route_count",
                             static_cast<double>(latency.count));
  response.info.emplace_back("win_p50_us", latency.P50());
  response.info.emplace_back("win_p95_us", latency.P95());
  response.info.emplace_back("win_p99_us", latency.P99());
#endif
  return response;
}

void RouterServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                 const Response& response,
                                 int64_t write_timeout_ms) {
  if (conn->broken.load(std::memory_order_acquire)) return;
  const std::string line = SerializeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->broken.load(std::memory_order_acquire)) return;
  if (!WriteAll(conn->fd, line, write_timeout_ms)) {
    conn->broken.store(true, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void RouterServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  LogInfo("route: draining");
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting connections.
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }

  // 2. Half-close connections: no new requests, queued answers still flow.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& slot : readers_) ::shutdown(slot.conn->fd, SHUT_RD);
  }

  // 3. Drain the queue; workers answer what is in it (their scatter waits
  // are bounded by each request's deadline) and exit on the empty signal.
  queue_.Drain();
  worker_pool_.reset();

  // 4. Join the readers.
  std::vector<ReaderSlot> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (auto& slot : readers) {
    if (slot.thread.joinable()) slot.thread.join();
  }

  // 5. Stop the prober (a probe in flight is bounded by its I/O timeout).
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();

  window_.Stop();
  IPIN_GAUGE_SET("serve.queue.depth", 0);
  LogInfo("route: drained, all workers stopped");
}

}  // namespace ipin::serve
