#include "ipin/datasets/registry.h"

#include <algorithm>
#include <cmath>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"

namespace ipin {
namespace {

constexpr int64_t kSecondsPerDay = 86400;

// Rough behavioural family of a dataset, used to pick generator knobs.
enum class Family { kEmail, kSocial, kBurst };

struct NamedDataset {
  PaperDatasetStats stats;
  Family family;
};

const std::vector<NamedDataset>& AllDatasets() {
  static const auto* datasets = new std::vector<NamedDataset>{
      {{"enron", 87300, 1148100, 8767}, Family::kEmail},
      {{"lkml", 27400, 1048600, 2923}, Family::kEmail},
      {{"facebook", 46900, 877000, 1592}, Family::kSocial},
      {{"higgs", 304700, 526200, 7}, Family::kBurst},
      {{"slashdot", 51100, 140800, 978}, Family::kSocial},
      {{"us2016", 4468000, 44638000, 16}, Family::kBurst},
  };
  return *datasets;
}

}  // namespace

std::vector<PaperDatasetStats> PaperTable2() {
  std::vector<PaperDatasetStats> rows;
  for (const NamedDataset& d : AllDatasets()) rows.push_back(d.stats);
  return rows;
}

std::vector<std::string> ListDatasetNames() {
  std::vector<std::string> names;
  for (const NamedDataset& d : AllDatasets()) names.push_back(d.stats.name);
  return names;
}

std::optional<SyntheticConfig> GetDatasetConfig(const std::string& name,
                                                double scale) {
  IPIN_CHECK_GT(scale, 0.0);
  IPIN_CHECK_LE(scale, 1.0);
  for (const NamedDataset& d : AllDatasets()) {
    if (d.stats.name != name) continue;
    SyntheticConfig config;
    config.name = name;
    config.num_nodes = std::max<size_t>(
        100, static_cast<size_t>(std::llround(
                 static_cast<double>(d.stats.num_nodes) * scale)));
    config.num_interactions = std::max<size_t>(
        500, static_cast<size_t>(std::llround(
                 static_cast<double>(d.stats.num_interactions) * scale)));
    config.time_span = d.stats.days * kSecondsPerDay;
    config.seed = Hash64(HashString(name));
    switch (d.family) {
      case Family::kEmail:
        // Mailing lists: strong reply chains, medium-size communities.
        config.reply_probability = 0.5;
        config.activity_exponent = 1.3;
        config.popularity_exponent = 1.25;
        config.num_communities = 64;
        config.intra_community_probability = 0.75;
        break;
      case Family::kSocial:
        // Social link/comment networks: weaker chains, more communities.
        config.reply_probability = 0.35;
        config.activity_exponent = 1.2;
        config.popularity_exponent = 1.2;
        config.num_communities = 128;
        config.intra_community_probability = 0.65;
        break;
      case Family::kBurst:
        // Retweet bursts: very heavy hubs, short span, strong cascades.
        config.reply_probability = 0.3;
        config.activity_exponent = 1.45;
        config.popularity_exponent = 1.4;
        config.num_communities = 16;
        config.intra_community_probability = 0.5;
        break;
    }
    return config;
  }
  return std::nullopt;
}

InteractionGraph LoadSyntheticDataset(const std::string& name, double scale) {
  const auto config = GetDatasetConfig(name, scale);
  IPIN_CHECK(config.has_value());
  return GenerateInteractionNetwork(*config);
}

}  // namespace ipin
