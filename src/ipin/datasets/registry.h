#ifndef IPIN_DATASETS_REGISTRY_H_
#define IPIN_DATASETS_REGISTRY_H_

#include <optional>
#include <string>
#include <vector>

#include "ipin/datasets/synthetic.h"
#include "ipin/graph/interaction_graph.h"

namespace ipin {

/// Characteristics the paper reports for its six datasets (Table 2).
struct PaperDatasetStats {
  std::string name;
  size_t num_nodes;         // |V|
  size_t num_interactions;  // |E|
  int64_t days;             // time span in days
};

/// The paper's Table 2 rows, verbatim.
std::vector<PaperDatasetStats> PaperTable2();

/// Names of the six named dataset configurations:
/// enron, lkml, facebook, higgs, slashdot, us2016.
std::vector<std::string> ListDatasetNames();

/// Returns the synthetic generator configuration whose node/interaction
/// counts match the paper's dataset `name`, scaled by `scale` in (0, 1]
/// (node and interaction counts multiply by `scale`; the time span in days
/// is kept, at one-minute resolution). Activity/community parameters are
/// tuned per dataset family (email vs social vs tweet burst).
/// Returns nullopt for an unknown name.
std::optional<SyntheticConfig> GetDatasetConfig(const std::string& name,
                                                double scale);

/// Generates the named dataset at the given scale. Check-fails on unknown
/// names (use GetDatasetConfig to probe).
InteractionGraph LoadSyntheticDataset(const std::string& name, double scale);

}  // namespace ipin

#endif  // IPIN_DATASETS_REGISTRY_H_
