#ifndef IPIN_DATASETS_SYNTHETIC_H_
#define IPIN_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Configuration of the synthetic interaction-network generator.
///
/// The generator produces timestamped directed interactions with the
/// statistical features that drive the paper's algorithms:
///   * heavy-tailed sender activity and receiver popularity (Zipf), giving
///     the hub structure High Degree / PageRank exploit;
///   * community structure (most interactions stay within a node's
///     community), giving locality;
///   * a reply/forward mechanism: with probability `reply_probability` the
///     sender of an interaction is a node that recently *received* one,
///     creating time-respecting chains — the information channels the
///     paper mines;
///   * strictly increasing integer timestamps spread over `time_span`
///     units (matching the paper's assumption of distinct timestamps).
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_nodes = 1000;
  size_t num_interactions = 10000;
  /// Total span of timestamps (e.g. days * 86400 for second resolution).
  Duration time_span = 1000000;
  /// Zipf exponent of sender activity (>1 = heavier hubs).
  double activity_exponent = 1.2;
  /// Zipf exponent of receiver popularity.
  double popularity_exponent = 1.2;
  /// Probability the sender is drawn from recent receivers (chain driver).
  double reply_probability = 0.4;
  /// Size of the recent-receiver pool the reply mechanism samples from.
  size_t reply_pool_size = 256;
  /// Number of communities nodes are evenly hashed into.
  size_t num_communities = 32;
  /// Probability a receiver is drawn from the sender's own community.
  double intra_community_probability = 0.7;
  /// PRNG seed; same config + seed = identical network.
  uint64_t seed = 7;
};

/// Generates an interaction network according to `config`; the result is
/// sorted by time with strictly increasing timestamps and no self-loops.
InteractionGraph GenerateInteractionNetwork(const SyntheticConfig& config);

/// Generates a uniformly random interaction network (Erdos-Renyi-style
/// endpoints, strictly increasing times): the fuzzing workhorse for tests.
InteractionGraph GenerateUniformRandomNetwork(size_t num_nodes,
                                              size_t num_interactions,
                                              Duration time_span,
                                              uint64_t seed);

}  // namespace ipin

#endif  // IPIN_DATASETS_SYNTHETIC_H_
