#include "ipin/datasets/synthetic.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/random.h"

namespace ipin {
namespace {

// m strictly increasing timestamps in [0, ~time_span). Duplicates from the
// uniform draw are bumped forward, which can extend the range by at most m.
std::vector<Timestamp> DrawTimestamps(size_t m, Duration time_span, Rng* rng) {
  std::vector<Timestamp> times(m);
  if (static_cast<Duration>(m) >= time_span) {
    for (size_t i = 0; i < m; ++i) times[i] = static_cast<Timestamp>(i);
    return times;
  }
  for (size_t i = 0; i < m; ++i) {
    times[i] = static_cast<Timestamp>(
        rng->NextBounded(static_cast<uint64_t>(time_span)));
  }
  std::sort(times.begin(), times.end());
  for (size_t i = 1; i < m; ++i) {
    if (times[i] <= times[i - 1]) times[i] = times[i - 1] + 1;
  }
  return times;
}

// Random permutation of [0, n): maps Zipf ranks to node ids so that hub
// identities are seed-dependent rather than always the low ids.
std::vector<NodeId> DrawPermutation(size_t n, Rng* rng) {
  std::vector<NodeId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  std::vector<NodeId>* p = &perm;
  rng->Shuffle(p);
  return perm;
}

}  // namespace

InteractionGraph GenerateInteractionNetwork(const SyntheticConfig& config) {
  IPIN_CHECK_GE(config.num_nodes, 2u);
  IPIN_CHECK_GE(config.num_interactions, 1u);
  IPIN_CHECK_GE(config.time_span, 1);
  IPIN_CHECK_GE(config.num_communities, 1u);

  Rng rng(config.seed);
  const size_t n = config.num_nodes;
  const size_t m = config.num_interactions;
  const size_t num_communities = std::min(config.num_communities, n);

  const std::vector<Timestamp> times = DrawTimestamps(m, config.time_span, &rng);
  const std::vector<NodeId> perm = DrawPermutation(n, &rng);

  // Node u lives in community u % num_communities; community c's members are
  // {c, c + C, c + 2C, ...}.
  const auto community_size = [&](size_t c) {
    return (n - c + num_communities - 1) / num_communities;
  };

  std::vector<NodeId> reply_pool;
  reply_pool.reserve(config.reply_pool_size);
  size_t reply_cursor = 0;

  const auto draw_zipf_node = [&](double exponent) {
    return perm[rng.NextZipf(n, exponent)];
  };

  std::vector<Interaction> interactions;
  interactions.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    // Sender: a recent receiver (chain continuation) or an active hub.
    NodeId src;
    if (!reply_pool.empty() && rng.NextBernoulli(config.reply_probability)) {
      src = reply_pool[rng.NextBounded(reply_pool.size())];
    } else {
      src = draw_zipf_node(config.activity_exponent);
    }

    // Receiver: popular node inside the sender's community, or globally.
    NodeId dst = src;
    for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
      if (rng.NextBernoulli(config.intra_community_probability)) {
        const size_t c = src % num_communities;
        const size_t size = community_size(c);
        const uint64_t rank =
            rng.NextZipf(size, config.popularity_exponent);
        dst = static_cast<NodeId>(c + rank * num_communities);
      } else {
        dst = draw_zipf_node(config.popularity_exponent);
      }
    }
    if (dst == src) dst = static_cast<NodeId>((src + 1) % n);

    interactions.push_back(Interaction{src, dst, times[i]});

    // Receivers become eligible reply senders (ring buffer).
    if (reply_pool.size() < config.reply_pool_size) {
      reply_pool.push_back(dst);
    } else if (!reply_pool.empty()) {
      reply_pool[reply_cursor] = dst;
      reply_cursor = (reply_cursor + 1) % reply_pool.size();
    }
  }

  InteractionGraph graph(n, std::move(interactions));
  IPIN_CHECK(graph.is_sorted());
  return graph;
}

InteractionGraph GenerateUniformRandomNetwork(size_t num_nodes,
                                              size_t num_interactions,
                                              Duration time_span,
                                              uint64_t seed) {
  IPIN_CHECK_GE(num_nodes, 2u);
  Rng rng(seed);
  const std::vector<Timestamp> times =
      DrawTimestamps(num_interactions, time_span, &rng);
  std::vector<Interaction> interactions;
  interactions.reserve(num_interactions);
  for (size_t i = 0; i < num_interactions; ++i) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % num_nodes);
    interactions.push_back(Interaction{src, dst, times[i]});
  }
  return InteractionGraph(num_nodes, std::move(interactions));
}

}  // namespace ipin
