#!/usr/bin/env bash
# Runs the benchmark suite, aggregates per-repetition JSON into bench-history
# documents (schema ipin.bench.v1, one BENCH_<name>.json per bench), ready
# for archiving and for the tools/bench_compare regression gate.
#
# Usage:
#   scripts/run_benches.sh [--quick] [--build-dir=build] [--out-dir=bench-out]
#                          [--reps=3] [--scale=0.05] [--datasets=slashdot]
#                          [--threads=1] [--ledger-dir=DIR]
#
#   --quick      micro-benches only (micro_irs, micro_sketch,
#                micro_structures), 2 reps, minimal measuring time —
#                the CI smoke configuration, a couple of minutes.
#   full (default) additionally runs the fig3/fig4/table4 harnesses and
#                uses 3 reps.
#   --threads=N  worker-pool size for every bench (harnesses get --threads=N,
#                micro benches inherit it via IPIN_THREADS). Defaults to 1 so
#                bench-history documents stay comparable across machines;
#                pass --threads=0 for the hardware default when measuring
#                scaling curves (see EXPERIMENTS.md).
#   --ledger-dir=DIR  write one ipin.run.v1 manifest per bench invocation
#                (exported as IPIN_LEDGER_DIR; defaults to <out-dir>/ledgers).
#                Inspect with build/tools/ipin_runs.
#
# Outputs in --out-dir:
#   BENCH_micro_irs.json, BENCH_micro_sketch.json, ...   (ipin.bench.v1)
#   reps/<bench>.rep<N>.json                              (raw per-rep data)
#
# Compare two runs:
#   build/tools/bench_compare --baseline=old/BENCH_micro_irs.json \
#       --current=new/BENCH_micro_irs.json --threshold=0.15

set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
BUILD_DIR=build
OUT_DIR=bench-out
REPS=""
SCALE=0.05
DATASETS=slashdot
OMEGA_PCT=10
THREADS=1
LEDGER_DIR=""

for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --out-dir=*) OUT_DIR="${arg#*=}" ;;
    --reps=*) REPS="${arg#*=}" ;;
    --scale=*) SCALE="${arg#*=}" ;;
    --datasets=*) DATASETS="${arg#*=}" ;;
    --omega-pct=*) OMEGA_PCT="${arg#*=}" ;;
    --threads=*) THREADS="${arg#*=}" ;;
    --ledger-dir=*) LEDGER_DIR="${arg#*=}" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

# Micro benches use google-benchmark's own flag parser, which rejects
# unknown flags, so the pool size and ledger directory reach them through
# the environment (harnesses pick IPIN_LEDGER_DIR up as well).
export IPIN_THREADS="$THREADS"
export IPIN_LEDGER_DIR="${LEDGER_DIR:-$OUT_DIR/ledgers}"
mkdir -p "$IPIN_LEDGER_DIR"

if [[ -z "$REPS" ]]; then
  REPS=$(( QUICK == 1 ? 2 : 3 ))
fi

for exe in bench_micro_irs bench_micro_sketch tools/bench_history; do
  if [[ ! -x "$BUILD_DIR/bench/$exe" && ! -x "$BUILD_DIR/$exe" ]]; then
    echo "missing $exe under $BUILD_DIR — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 2
  fi
done

mkdir -p "$OUT_DIR/reps"

GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
COMPILER=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -1)
COMPILER_ID=$("${COMPILER:-c++}" --version 2>/dev/null | head -1 || true)
COMPILER_ID=${COMPILER_ID:-unknown}

aggregate() {
  local bench="$1"; shift
  "$BUILD_DIR/tools/bench_history" \
    --bench="$bench" \
    --out="$OUT_DIR/BENCH_${bench}.json" \
    --git_sha="$GIT_SHA" \
    --compiler="$COMPILER_ID" \
    --dataset="$DATASETS" \
    --omega="${OMEGA_PCT}%" \
    "$@"
}

# --- micro-benches (google-benchmark JSON) --------------------------------
MICRO_BENCHES=(micro_irs micro_sketch micro_structures)

for bench in "${MICRO_BENCHES[@]}"; do
  reps=()
  for ((r = 1; r <= REPS; ++r)); do
    rep_file="$OUT_DIR/reps/${bench}.rep${r}.json"
    echo "== bench_${bench} rep $r/$REPS"
    args=(--benchmark_format=json --benchmark_out="$rep_file" \
          --benchmark_out_format=json)
    if [[ $QUICK == 1 ]]; then
      args+=(--benchmark_min_time=0.02)
    fi
    "$BUILD_DIR/bench/bench_${bench}" "${args[@]}" >/dev/null
    reps+=("$rep_file")
  done
  aggregate "$bench" "${reps[@]}"
done

# --- harness benches (ipin.metrics.v1 reports) ----------------------------
if [[ $QUICK == 0 ]]; then
  HARNESSES=(fig3_processing_time fig4_oracle_query table4_memory
             oracle_serving oracle_serving_shards reshard)
  for bench in "${HARNESSES[@]}"; do
    # oracle_serving_shards is the same binary in scatter-gather mode: the
    # router over 2/4/8 in-process shards, its own history document.
    exe="$bench"
    extra=()
    if [[ "$bench" == oracle_serving_shards ]]; then
      exe=oracle_serving
      extra=(--sharded_only=1 --shards=2,4,8)
    fi
    reps=()
    for ((r = 1; r <= REPS; ++r)); do
      rep_file="$OUT_DIR/reps/${bench}.rep${r}.json"
      echo "== bench_${bench} rep $r/$REPS"
      "$BUILD_DIR/bench/bench_${exe}" "${extra[@]}" \
        --datasets="$DATASETS" --scale="$SCALE" --threads="$THREADS" \
        --metrics_out="$rep_file" >/dev/null
      reps+=("$rep_file")
    done
    aggregate "$bench" "${reps[@]}"
  done
fi

echo
echo "bench-history documents:"
ls -l "$OUT_DIR"/BENCH_*.json
