#!/usr/bin/env python3
"""Blocking gate: dispatched SIMD sketch kernels must beat the scalar baseline.

Runs bench_micro_sketch's Kernel* benches. The scalar and dispatched variants
of each workload live in the same binary and run back to back in the same
process, so the ratio is a clean same-machine, same-run comparison — no
cross-run or cross-host noise. The scalar reference is compiled with
auto-vectorization disabled, so it is the true portable baseline.

Fails (exit 1) if the dispatched target is avx2 and any enforced kernel —
union estimate, cellwise max, estimate-from-ranks — is below --min-speedup x
scalar. On hosts where dispatch resolves to scalar/sse2/neon the ratios are
reported but nothing is enforced: the 2x contract is an AVX2 claim.

Usage:
  scripts/check_kernel_speedup.py --bench=build/bench/bench_micro_sketch \
      [--min-speedup=2.0] [--min-time=0.05]
"""

import argparse
import json
import re
import subprocess
import sys

# Kernels under contract. BoundedMaxInto is deliberately absent: its SSE2 and
# NEON rows alias the scalar routine by design (no packed 64-bit compare),
# and the AVX2 win is modest on short cells.
ENFORCED = ("UnionEstimate", "CellwiseMax", "EstimateFromRanks")

NAME_RE = re.compile(r"^BM_Kernel(\w+?)(Scalar|Dispatched)/(\d+)$")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", required=True,
                        help="path to the bench_micro_sketch binary")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-time", default="0.05",
                        help="benchmark_min_time per bench, seconds")
    args = parser.parse_args()

    cmd = [
        args.bench,
        "--benchmark_filter=BM_Kernel",
        "--benchmark_format=json",
        f"--benchmark_min_time={args.min_time}",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)

    # (kind, arg) -> {"Scalar": cpu_time, "Dispatched": cpu_time}
    times = {}
    target = None
    for bench in report.get("benchmarks", []):
        match = NAME_RE.match(bench["name"])
        if not match:
            continue
        kind, variant, arg = match.groups()
        times.setdefault((kind, int(arg)), {})[variant] = bench["cpu_time"]
        if variant == "Dispatched" and bench.get("label"):
            target = bench["label"]

    if not times:
        print("no BM_Kernel* benchmarks found — wrong binary?", file=sys.stderr)
        return 1
    if target is None:
        print("dispatched benches carry no target label", file=sys.stderr)
        return 1

    enforcing = target == "avx2"
    print(f"dispatched target: {target} "
          f"({'enforcing' if enforcing else 'report-only'}, "
          f"min speedup {args.min_speedup:.2f}x on {', '.join(ENFORCED)})")

    failures = []
    for (kind, arg) in sorted(times):
        pair = times[(kind, arg)]
        if "Scalar" not in pair or "Dispatched" not in pair:
            continue
        ratio = pair["Scalar"] / pair["Dispatched"]
        enforced = enforcing and kind in ENFORCED
        verdict = ""
        if enforced:
            verdict = "ok" if ratio >= args.min_speedup else "TOO SLOW"
            if ratio < args.min_speedup:
                failures.append(f"{kind}/{arg}: {ratio:.2f}x")
        print(f"  {kind}/{arg}: scalar {pair['Scalar']:.0f}ns, "
              f"{target} {pair['Dispatched']:.0f}ns -> {ratio:.2f}x {verdict}")

    if failures:
        print("kernel speedup gate FAILED: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
