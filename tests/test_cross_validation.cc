// Cross-module consistency properties: independent implementations of the
// same temporal-graph concepts must agree. These are the strongest
// correctness checks in the suite — each property ties together two modules
// that were written separately.

#include <gtest/gtest.h>

#include "ipin/core/information_channel.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/neighborhood_profile.h"
#include "ipin/core/source_sets.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/graph/static_graph.h"
#include "ipin/graph/temporal_paths.h"
#include "test_util.h"

namespace ipin {
namespace {

struct SweepCase {
  size_t num_nodes;
  size_t num_interactions;
  Duration time_span;
  uint64_t seed;
};

class CrossValidationTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  InteractionGraph MakeGraph() const {
    const SweepCase c = GetParam();
    return GenerateUniformRandomNetwork(c.num_nodes, c.num_interactions,
                                        c.time_span, c.seed);
  }
};

TEST_P(CrossValidationTest, TcicAtProbabilityOneEqualsTemporalReachability) {
  // A deterministic TCIC cascade from one seed s activates exactly s plus
  // every node reachable by a time-respecting path whose edges lie in
  // [t0, t0 + omega], where t0 is s's first interaction as a source.
  const InteractionGraph g = MakeGraph();
  std::vector<Timestamp> first_out(g.num_nodes(), kNoTimestamp);
  for (const Interaction& e : g.interactions()) {
    if (first_out[e.src] == kNoTimestamp) first_out[e.src] = e.time;
  }
  Rng rng(1);
  for (const Duration w : {0, 20, 100, 100000}) {
    TcicOptions options;
    options.window = w;
    options.probability = 1.0;
    for (NodeId s = 0; s < std::min<size_t>(g.num_nodes(), 10); ++s) {
      const std::vector<NodeId> seeds = {s};
      const size_t spread = SimulateTcic(g, seeds, options, &rng);
      if (first_out[s] == kNoTimestamp) {
        EXPECT_EQ(spread, 0u);
        continue;
      }
      const auto reach =
          EarliestArrival(g, s, first_out[s], first_out[s] + w);
      EXPECT_EQ(spread, reach.num_reachable + 1)
          << "seed " << s << " window " << w;
    }
  }
}

TEST_P(CrossValidationTest, IrsEqualsWindowSweptFastestPaths) {
  // sigma_omega(u) = {v : fastest duration(u -> v) <= omega}, and
  // lambda(u, v) is realized by some channel, so IRS sizes must agree with
  // duration-threshold counts for EVERY omega simultaneously.
  const InteractionGraph g = MakeGraph();
  for (NodeId u = 0; u < std::min<size_t>(g.num_nodes(), 8); ++u) {
    const FastestPathResult fastest = FastestPaths(g, u);
    for (const Duration w : {1, 7, 40, 1000}) {
      const IrsExact irs = IrsExact::Compute(g, w);
      size_t count = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v != u && fastest.duration[v] >= 0 && fastest.duration[v] <= w) {
          ++count;
        }
      }
      EXPECT_EQ(irs.IrsSize(u), count) << "u=" << u << " w=" << w;
    }
  }
}

TEST_P(CrossValidationTest, UnlimitedWindowSourceSetsMatchLatestDeparture) {
  // With the window covering the whole span, tau(v) equals the set of
  // nodes with ANY time-respecting path into v, which LatestDeparture
  // computes independently.
  const InteractionGraph g = MakeGraph();
  if (g.empty()) return;
  const auto stats = g.ComputeStats();
  const Duration whole = stats.time_span + 1;
  const SourceSetExact sources = SourceSetExact::Compute(g, whole);
  for (NodeId v = 0; v < std::min<size_t>(g.num_nodes(), 10); ++v) {
    const auto departures =
        LatestDeparture(g, v, stats.min_time, stats.max_time);
    size_t count = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u != v && departures.departure[u] != kNoTimestamp) ++count;
    }
    EXPECT_EQ(sources.SourceSetSize(v), count) << "v=" << v;
  }
}

TEST_P(CrossValidationTest, SummaryTimesAreRealizableChannels) {
  // Every (v, lambda) entry of phi(u) must correspond to an actual channel
  // found by the brute-force path reconstructor, ending exactly at lambda.
  const InteractionGraph g = MakeGraph();
  const Duration w = 50;
  const IrsExact irs = IrsExact::Compute(g, w);
  for (NodeId u = 0; u < std::min<size_t>(g.num_nodes(), 6); ++u) {
    for (const auto& [v, lambda] : irs.Summary(u)) {
      const auto path = FindEarliestChannel(g, u, v, w);
      ASSERT_FALSE(path.empty()) << "u=" << u << " v=" << v;
      EXPECT_EQ(path.back().time, lambda) << "u=" << u << " v=" << v;
      EXPECT_LE(path.back().time - path.front().time + 1, w);
    }
  }
}

TEST_P(CrossValidationTest, HopBoundedProfilesConvergeToReachability) {
  // With a window covering everything and max_distance >= n, the windowed
  // neighborhood profile equals plain (static) reachability on the
  // flattened graph... which for this stream equals the number of nodes
  // reachable ignoring time order. Compare against a BFS on the flattened
  // static graph.
  const InteractionGraph g = MakeGraph();
  if (g.empty()) return;
  // Only run for the small cases (exact profile propagation is O(n^2 d)).
  if (g.num_nodes() > 16) return;
  const auto stats = g.ComputeStats();
  ProfileOptions options;
  options.max_distance = static_cast<int>(g.num_nodes());
  options.window = stats.time_span + 1;
  WindowedProfileExact profiles(g.num_nodes(), options);
  for (const Interaction& e : g.interactions()) {
    profiles.ProcessInteraction(e);
  }
  const StaticGraph flat = StaticGraph::FromInteractions(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // BFS on the flattened graph.
    std::vector<char> seen(g.num_nodes(), 0);
    std::vector<NodeId> stack = {u};
    seen[u] = 1;
    size_t count = 0;
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (const NodeId y : flat.Neighbors(x)) {
        if (!seen[y]) {
          seen[y] = 1;
          ++count;
          stack.push_back(y);
        }
      }
    }
    // Note: `seen[u]` is pre-marked so cycles never re-count the source,
    // matching the profiles' self-exclusion.
    EXPECT_EQ(profiles.NeighborhoodSize(u, options.max_distance), count)
        << "u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossValidationTest,
    ::testing::Values(SweepCase{8, 40, 100, 1}, SweepCase{12, 80, 200, 2},
                      SweepCase{16, 120, 150, 3}, SweepCase{25, 200, 600, 4},
                      SweepCase{40, 300, 1000, 5},
                      SweepCase{10, 150, 120, 6}, SweepCase{30, 90, 800, 7},
                      SweepCase{20, 250, 250, 8}));

}  // namespace
}  // namespace ipin
