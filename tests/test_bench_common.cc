#include "../bench/bench_common.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/json.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"

namespace ipin {
namespace {

// Builds a FlagMap from a literal argv (argv[0] is the program name).
FlagMap MakeFlags(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return FlagMap::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchFlagsTest, ParsesTypedFlagsAndPositionals) {
  const FlagMap flags = MakeFlags({"--scale=0.25", "--datasets=enron,higgs",
                                   "--quick", "input.txt"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
  EXPECT_EQ(flags.GetString("datasets", ""), "enron,higgs");
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_FALSE(flags.Has("absent"));
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
}

TEST(BenchFlagsTest, DatasetsFromFlagsSplitsList) {
  const std::vector<std::string> names =
      DatasetsFromFlags(MakeFlags({"--datasets=enron,higgs,slashdot"}));
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "enron");
  EXPECT_EQ(names[1], "higgs");
  EXPECT_EQ(names[2], "slashdot");
}

TEST(BenchFlagsTest, DatasetsFromFlagsDefaultsToAll) {
  const std::vector<std::string> names = DatasetsFromFlags(MakeFlags({}));
  EXPECT_EQ(names, ListDatasetNames());
}

TEST(BenchCommonTest, LoadBenchDatasetIsSortedAndNonEmpty) {
  const InteractionGraph graph = LoadBenchDataset("slashdot", 0.002);
  EXPECT_TRUE(graph.is_sorted());
  EXPECT_GT(graph.num_interactions(), 0u);
}

TEST(BenchCommonTest, EmitRunReportWritesMetricsV1Document) {
  // Put something distinctive into the registry, then capture the report
  // via --metrics_out and validate structure against the schema the
  // exporters promise. Direct registry calls (not the IPIN_* macros) so
  // the values exist under -DIPIN_OBS_DISABLED too.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("bench_common_test.distinctive_counter")->Add(11);
  registry.GetGauge("bench_common_test.distinctive_gauge")->Set(2.5);
  registry.GetHistogram("bench_common_test.distinctive_hist")->Record(42);

  const std::string path = ::testing::TempDir() + "/bench_report.json";
  EmitRunReport(MakeFlags({"--metrics_out=" + path}));

  const auto doc = JsonValue::ParseFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value()) << "report is not valid JSON";
  EXPECT_EQ(doc->FindString("schema", ""), "ipin.metrics.v1");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* obj = doc->Find(section);
    ASSERT_NE(obj, nullptr) << section;
    EXPECT_TRUE(obj->is_object()) << section;
  }
  ASSERT_NE(doc->Find("spans"), nullptr);
  EXPECT_TRUE(doc->Find("spans")->is_array());

  EXPECT_DOUBLE_EQ(doc->Find("counters")->FindNumber(
                       "bench_common_test.distinctive_counter", -1.0),
                   11.0);
  EXPECT_DOUBLE_EQ(doc->Find("gauges")->FindNumber(
                       "bench_common_test.distinctive_gauge", -1.0),
                   2.5);
  const JsonValue* hist = doc->Find("histograms")
                              ->Find("bench_common_test.distinctive_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->FindNumber("count", 0.0), 1.0);
  // Percentile satellite: histogram objects carry interpolated p50/p95/p99.
  for (const char* pct : {"p50", "p95", "p99"}) {
    ASSERT_NE(hist->Find(pct), nullptr) << pct;
    const double v = hist->FindNumber(pct, -1.0);
    EXPECT_GE(v, 32.0) << pct;  // bucket [32, 63] around the one sample
    EXPECT_LE(v, 63.0) << pct;
  }
}

TEST(BenchCommonTest, EmitRunReportPublishesMemoryGauges) {
  obs::GetMemoryTally("bench_common_test_component").Add(777);
  const std::string path = ::testing::TempDir() + "/bench_report_mem.json";
  EmitRunReport(MakeFlags({"--metrics_out=" + path}));
  const auto doc = JsonValue::ParseFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(
      doc->Find("gauges")->FindNumber("mem.bench_common_test_component.bytes",
                                      -1.0),
      777.0);
  obs::GetMemoryTally("bench_common_test_component").Sub(777);
}

TEST(BenchCommonTest, SetupAndReportRoundTripWritesChromeTrace) {
  const std::string trace_path = ::testing::TempDir() + "/bench_trace.json";
  const std::string metrics_path =
      ::testing::TempDir() + "/bench_trace_metrics.json";
  const FlagMap flags = MakeFlags(
      {"--trace_out=" + trace_path, "--metrics_out=" + metrics_path});

  SetupBenchObservability(flags);
  ASSERT_TRUE(obs::IsTraceRecording());
  {
    obs::TraceSpan span("bench_common_test.work");
  }
  EmitRunReport(flags);
  EXPECT_FALSE(obs::IsTraceRecording());

  const auto trace = JsonValue::ParseFile(trace_path);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  ASSERT_TRUE(trace.has_value()) << "trace is not valid JSON";
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_span = false;
  for (const JsonValue& e : events->array_items()) {
    saw_span =
        saw_span || e.FindString("name", "") == "bench_common_test.work";
  }
  EXPECT_TRUE(saw_span);
  obs::ResetTraceEventsForTest();
}

}  // namespace
}  // namespace ipin
