// Boundary-condition tests for the duration-window semantics shared by the
// whole library: duration(ic) = t_last - t_first + 1 and membership
// requires duration <= omega. Off-by-one errors here would silently distort
// every experiment, so the exact boundaries get their own suite.

#include <gtest/gtest.h>

#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/source_sets.h"
#include "ipin/core/tcic.h"
#include "ipin/graph/temporal_paths.h"

namespace ipin {
namespace {

// Chain 0 -> 1 -> 2 with edge times 10 and 10 + gap: the two-hop channel
// has duration gap + 1.
InteractionGraph Chain(Duration gap) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 10);
  g.AddInteraction(1, 2, 10 + gap);
  return g;
}

TEST(WindowBoundaryTest, IrsExactDurationExactlyOmegaIsIncluded) {
  const InteractionGraph g = Chain(4);  // duration 5
  EXPECT_TRUE(IrsExact::Compute(g, 5).Summary(0).count(2));
  EXPECT_FALSE(IrsExact::Compute(g, 4).Summary(0).count(2));
}

TEST(WindowBoundaryTest, SingleEdgeHasDurationOne) {
  InteractionGraph g(2);
  g.AddInteraction(0, 1, 1000);
  const IrsExact irs = IrsExact::Compute(g, 1);
  EXPECT_TRUE(irs.Summary(0).count(1));  // duration 1 <= 1
}

TEST(WindowBoundaryTest, WindowOneForbidsAnyTwoHopChannel) {
  // Distinct timestamps force every 2-hop channel to duration >= 2.
  const InteractionGraph g = Chain(1);
  const IrsExact irs = IrsExact::Compute(g, 1);
  EXPECT_TRUE(irs.Summary(0).count(1));
  EXPECT_TRUE(irs.Summary(1).count(2));
  EXPECT_FALSE(irs.Summary(0).count(2));
}

TEST(WindowBoundaryTest, SourceSetsShareTheBoundary) {
  const InteractionGraph g = Chain(4);  // duration 5
  EXPECT_TRUE(SourceSetExact::Compute(g, 5).Summary(2).count(0));
  EXPECT_FALSE(SourceSetExact::Compute(g, 4).Summary(2).count(0));
}

TEST(WindowBoundaryTest, ApproxSharesTheBoundaryExactlyOnTinyInput) {
  // With beta large and 3 nodes, the sketch is effectively exact and the
  // boundary must land on the same side.
  const InteractionGraph g = Chain(4);
  IrsApproxOptions options;
  options.precision = 10;
  EXPECT_GT(IrsApprox::Compute(g, 5, options).EstimateIrsSize(0), 1.5);
  EXPECT_LT(IrsApprox::Compute(g, 4, options).EstimateIrsSize(0), 1.5);
}

TEST(WindowBoundaryTest, FastestPathsReportTheDefiningDuration) {
  EXPECT_EQ(FastestPaths(Chain(4), 0).duration[2], 5);
  EXPECT_EQ(FastestPaths(Chain(0), 0).duration[1], 1);
}

TEST(WindowBoundaryTest, TcicWindowCountsFromChainStartInclusive) {
  // Seed 0 activates at t=10; edge at t = 10 + w is the last usable one
  // (t - activate <= w).
  for (const Duration w : {3, 4, 5}) {
    InteractionGraph g(3);
    g.AddInteraction(0, 1, 10);
    g.AddInteraction(1, 2, 10 + w);  // t - 10 == w: usable
    TcicOptions options;
    options.window = w;
    options.probability = 1.0;
    Rng rng(1);
    const std::vector<NodeId> seeds = {0};
    EXPECT_EQ(SimulateTcic(g, seeds, options, &rng), 3u) << "w=" << w;

    InteractionGraph late(3);
    late.AddInteraction(0, 1, 10);
    late.AddInteraction(1, 2, 11 + w);  // one past the budget
    Rng rng2(1);
    EXPECT_EQ(SimulateTcic(late, seeds, options, &rng2), 2u) << "w=" << w;
  }
}

TEST(WindowBoundaryTest, NegativeTimestampsWork) {
  // Timestamps are signed; archives counted relative to an epoch may go
  // negative. All window arithmetic must hold.
  InteractionGraph g(3);
  g.AddInteraction(0, 1, -100);
  g.AddInteraction(1, 2, -97);  // chain duration 4
  const IrsExact irs = IrsExact::Compute(g, 4);
  EXPECT_TRUE(irs.Summary(0).count(2));
  EXPECT_FALSE(IrsExact::Compute(g, 3).Summary(0).count(2));

  const auto arrivals = EarliestArrival(g, 0, -1000, 1000);
  EXPECT_EQ(arrivals.arrival[2], -97);

  IrsApproxOptions options;
  options.precision = 8;
  const IrsApprox approx = IrsApprox::Compute(g, 4, options);
  EXPECT_GT(approx.EstimateIrsSize(0), 1.5);
}

TEST(WindowBoundaryTest, LambdaPrefersEarliestEndAcrossBoundary) {
  // Two channels 0 -> 2: short-duration late one and long-duration early
  // one; at omega just below the long duration, lambda must switch to the
  // late channel's end time.
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 7);    // duration 7, ends 7
  g.AddInteraction(0, 3, 20);
  g.AddInteraction(3, 2, 21);   // duration 2, ends 21
  EXPECT_EQ(IrsExact::Compute(g, 7).Summary(0).at(2), 7);
  EXPECT_EQ(IrsExact::Compute(g, 6).Summary(0).at(2), 21);
}

TEST(WindowBoundaryTest, MergeUsesStrictInequality) {
  // Algorithm 2's Merge keeps (x, t_x) iff t_x - t < omega. t_x - t ==
  // omega means duration omega + 1: excluded.
  IrsExact irs(3, 5);
  irs.ProcessInteraction({1, 2, 15});
  irs.ProcessInteraction({0, 1, 10});  // t_x - t = 5 == omega -> excluded
  EXPECT_FALSE(irs.Summary(0).count(2));

  IrsExact irs2(3, 6);
  irs2.ProcessInteraction({1, 2, 15});
  irs2.ProcessInteraction({0, 1, 10});  // duration 6 <= 6 -> included
  EXPECT_TRUE(irs2.Summary(0).count(2));
}

}  // namespace
}  // namespace ipin
