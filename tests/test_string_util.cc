#include "ipin/common/string_util.h"

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(SplitStringTest, BasicWhitespace) {
  const auto parts = SplitString("a b\tc");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  const auto parts = SplitString("  a   b  ");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitStringTest, CustomDelimiters) {
  const auto parts = SplitString("1,2,,3", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "3");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("").empty());
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(TrimStringTest, TrimsBothEnds) {
  EXPECT_EQ(TrimString("  x  "), "x");
  EXPECT_EQ(TrimString("\t\r\nx y\n"), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  123 ").value(), 123);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("x12").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999999999").has_value());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5.2").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

}  // namespace
}  // namespace ipin
