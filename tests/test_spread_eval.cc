#include "ipin/eval/spread_eval.h"

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

TEST(SpreadEvalTest, CurveHasRequestedShape) {
  const InteractionGraph g = GenerateUniformRandomNetwork(80, 800, 2000, 1);
  std::vector<NodeId> ranked;
  for (NodeId u = 0; u < 50; ++u) ranked.push_back(u);
  const std::vector<size_t> ks = {5, 10, 20, 50};
  TcicOptions options;
  options.window = 500;
  options.probability = 0.5;
  const SpreadCurve curve =
      EvaluateSpreadCurve(g, "test", ranked, ks, options, 10, 3);
  EXPECT_EQ(curve.method, "test");
  ASSERT_EQ(curve.top_k_values.size(), 4u);
  ASSERT_EQ(curve.spreads.size(), 4u);
  for (const double s : curve.spreads) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 80.0);
  }
}

TEST(SpreadEvalTest, SpreadGrowsWithKOnAverage) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 1200, 3000, 5);
  std::vector<NodeId> ranked;
  for (NodeId u = 0; u < 60; ++u) ranked.push_back(u);
  const std::vector<size_t> ks = {1, 10, 40};
  TcicOptions options;
  options.window = 1000;
  options.probability = 1.0;
  const SpreadCurve curve =
      EvaluateSpreadCurve(g, "m", ranked, ks, options, 5, 9);
  EXPECT_LE(curve.spreads[0], curve.spreads[1] + 1e-9);
  EXPECT_LE(curve.spreads[1], curve.spreads[2] + 1e-9);
}

TEST(SpreadEvalTest, KBeyondRankedListUsesWholeList) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 200, 600, 7);
  const std::vector<NodeId> ranked = {0, 1, 2};
  const std::vector<size_t> ks = {2, 100};
  TcicOptions options;
  options.window = 100;
  options.probability = 1.0;
  const SpreadCurve curve =
      EvaluateSpreadCurve(g, "m", ranked, ks, options, 3, 1);
  EXPECT_EQ(curve.top_k_values[1], 100u);
  EXPECT_GE(curve.spreads[1], curve.spreads[0] - 1e-9);
}

TEST(SpreadEvalTest, DeterministicGivenSeed) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 300, 800, 2);
  const std::vector<NodeId> ranked = {0, 1, 2, 3, 4};
  const std::vector<size_t> ks = {3, 5};
  TcicOptions options;
  options.window = 200;
  options.probability = 0.5;
  const SpreadCurve a = EvaluateSpreadCurve(g, "m", ranked, ks, options, 8, 4);
  const SpreadCurve b = EvaluateSpreadCurve(g, "m", ranked, ks, options, 8, 4);
  EXPECT_EQ(a.spreads, b.spreads);
}

}  // namespace
}  // namespace ipin
