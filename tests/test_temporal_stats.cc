#include "ipin/graph/temporal_stats.h"

#include <gtest/gtest.h>

#include "ipin/datasets/registry.h"
#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

TEST(SummarizeCountsTest, BasicQuantiles) {
  std::vector<double> counts;
  for (int i = 1; i <= 100; ++i) counts.push_back(i);
  const DistributionSummary s = SummarizeCounts(counts);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.0, 1.0);
  EXPECT_NEAR(s.p90, 90.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  EXPECT_NEAR(s.top1_percent_share, 100.0 / 5050.0, 1e-9);
}

TEST(SummarizeCountsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(SummarizeCounts({}).mean, 0.0);
  const DistributionSummary s = SummarizeCounts({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.top1_percent_share, 1.0);
}

TEST(TemporalStatsTest, CountsActivityAndDegree) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(0, 1, 2);  // repeated edge
  g.AddInteraction(0, 2, 3);
  const TemporalStats stats = ComputeTemporalStats(g, 100);
  EXPECT_EQ(stats.num_interactions, 3u);
  EXPECT_DOUBLE_EQ(stats.out_activity.max, 3.0);  // node 0 sends 3
  EXPECT_DOUBLE_EQ(stats.out_degree.max, 2.0);    // to 2 distinct targets
  EXPECT_DOUBLE_EQ(stats.in_activity.max, 2.0);   // node 1 receives 2
}

TEST(TemporalStatsTest, ReciprocityDetectsBackEdges) {
  InteractionGraph g(2);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 0, 2);  // reciprocated
  g.AddInteraction(0, 1, 3);  // also reciprocated now
  const TemporalStats stats = ComputeTemporalStats(g, 100);
  EXPECT_NEAR(stats.reciprocity, 2.0 / 3.0, 1e-9);
}

TEST(TemporalStatsTest, ReplyFractionUsesHorizon) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 10);   // 1 receives at 10
  g.AddInteraction(1, 2, 15);   // reply within 10 units
  g.AddInteraction(2, 0, 100);  // 2 received at 15; gap 85 > horizon
  const TemporalStats stats = ComputeTemporalStats(g, 10);
  EXPECT_NEAR(stats.reply_fraction, 1.0 / 3.0, 1e-9);
}

TEST(TemporalStatsTest, PoissonStreamHasUnitCv) {
  // Uniformly random timestamps have exponential-ish gaps: CV near 1.
  const InteractionGraph g =
      GenerateUniformRandomNetwork(100, 5000, 1000000, 3);
  const TemporalStats stats = ComputeTemporalStats(g);
  EXPECT_NEAR(stats.burstiness_cv, 1.0, 0.15);
}

TEST(TemporalStatsTest, SyntheticDatasetsShowFamilySignatures) {
  // The email-family generator must produce more reply chaining than the
  // uniform random stream, and heavy-tailed sender activity.
  const InteractionGraph lkml = LoadSyntheticDataset("lkml", 0.01);
  const TemporalStats stats = ComputeTemporalStats(lkml);
  EXPECT_GT(stats.out_activity.top1_percent_share, 0.05);
  EXPECT_GT(stats.reply_fraction, 0.3);

  const InteractionGraph random = GenerateUniformRandomNetwork(
      lkml.num_nodes(), lkml.num_interactions(), 1000000, 5);
  const TemporalStats random_stats = ComputeTemporalStats(random);
  EXPECT_GT(stats.out_activity.top1_percent_share,
            random_stats.out_activity.top1_percent_share);
}

TEST(TemporalStatsTest, EmptyGraph) {
  const InteractionGraph g(5);
  const TemporalStats stats = ComputeTemporalStats(g);
  EXPECT_EQ(stats.num_interactions, 0u);
  EXPECT_DOUBLE_EQ(stats.reciprocity, 0.0);
}

TEST(TemporalStatsTest, ReportMentionsKeyFields) {
  InteractionGraph g(2);
  g.AddInteraction(0, 1, 1);
  const std::string report = TemporalStatsReport(ComputeTemporalStats(g, 10));
  EXPECT_NE(report.find("out-activity"), std::string::npos);
  EXPECT_NE(report.find("reciprocity"), std::string::npos);
  EXPECT_NE(report.find("burstiness"), std::string::npos);
}

}  // namespace
}  // namespace ipin
