#include <vector>

#include <gtest/gtest.h>

#include "ipin/eval/metrics.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

TEST(MeanRelativeErrorTest, ExactMatchIsZero) {
  const std::vector<double> x = {10, 20, 30};
  EXPECT_DOUBLE_EQ(MeanRelativeError(x, x), 0.0);
}

TEST(MeanRelativeErrorTest, ComputesMean) {
  const std::vector<double> exact = {10, 100};
  const std::vector<double> est = {11, 90};  // errors 0.1 and 0.1
  EXPECT_NEAR(MeanRelativeError(exact, est), 0.1, 1e-12);
}

TEST(MeanRelativeErrorTest, SkipsZeroTruth) {
  const std::vector<double> exact = {0, 10};
  const std::vector<double> est = {5, 12};
  EXPECT_NEAR(MeanRelativeError(exact, est), 0.2, 1e-12);
}

TEST(MeanRelativeErrorTest, AllZeroTruthGivesZero) {
  const std::vector<double> exact = {0, 0};
  const std::vector<double> est = {5, 7};
  EXPECT_DOUBLE_EQ(MeanRelativeError(exact, est), 0.0);
}

TEST(SeedOverlapTest, CountsCommonElements) {
  const std::vector<NodeId> a = {1, 2, 3, 4};
  const std::vector<NodeId> b = {3, 4, 5, 6};
  EXPECT_EQ(SeedOverlap(a, b), 2u);
}

TEST(SeedOverlapTest, HandlesDuplicatesAndEmpties) {
  const std::vector<NodeId> a = {1, 1, 2};
  const std::vector<NodeId> b = {1, 1, 1};
  EXPECT_EQ(SeedOverlap(a, b), 1u);
  EXPECT_EQ(SeedOverlap({}, b), 0u);
  EXPECT_EQ(SeedOverlap(a, {}), 0u);
}

TEST(SeedJaccardTest, Basics) {
  const std::vector<NodeId> a = {1, 2};
  const std::vector<NodeId> b = {2, 3};
  EXPECT_NEAR(SeedJaccard(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(SeedJaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(SeedJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SeedJaccard(a, {}), 0.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table("Demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Rows align: every line (after title) has the same length.
  size_t first_len = 0;
  size_t pos = s.find('\n') + 1;  // skip title line
  while (pos < s.size()) {
    const size_t end = s.find('\n', pos);
    const size_t len = end - pos;
    if (first_len == 0) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = end + 1;
  }
}

TEST(TablePrinterTest, CellFormatters) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(static_cast<size_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Cell(static_cast<int64_t>(-7)), "-7");
}

TEST(TablePrinterTest, NoTitleOmitsBanner) {
  TablePrinter table;
  table.SetHeader({"a"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToString().find("=="), std::string::npos);
}

}  // namespace
}  // namespace ipin
