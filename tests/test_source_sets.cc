#include "ipin/core/source_sets.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "ipin/core/influence_maximization.h"
#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(SourceSetExactTest, FigureOneDuality) {
  // tau_omega is the transpose of sigma_omega: u in tau(v) iff v in
  // sigma(u). Check against the paper's Example 2 summaries.
  const InteractionGraph g = FigureOneGraph();
  const SourceSetExact sources = SourceSetExact::Compute(g, 3);
  const auto expected = FigureOneSummariesW3();

  for (NodeId v = 0; v < 6; ++v) {
    for (NodeId u = 0; u < 6; ++u) {
      const bool in_sigma = expected[u].count(v) > 0;
      const bool in_tau = sources.Summary(v).count(u) > 0;
      EXPECT_EQ(in_sigma, in_tau) << "u=" << u << " v=" << v;
    }
  }
}

TEST(SourceSetExactTest, DualityOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const InteractionGraph g =
        GenerateUniformRandomNetwork(25, 180, 400, seed);
    for (const Duration w : {1, 10, 50, 400}) {
      const IrsExact irs = IrsExact::Compute(g, w);
      const SourceSetExact sources = SourceSetExact::Compute(g, w);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          EXPECT_EQ(irs.Summary(u).count(v) > 0,
                    sources.Summary(v).count(u) > 0)
              << "u=" << u << " v=" << v << " w=" << w << " seed=" << seed;
        }
      }
    }
  }
}

TEST(SourceSetExactTest, LatestStartSemantics) {
  // Two channels 0 -> 2: via (0,1,1),(1,2,2) starting at 1, and direct
  // (0,2,5) starting at 5. The summary keeps the LATEST start (5).
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 2);
  g.AddInteraction(0, 2, 5);
  const SourceSetExact sources = SourceSetExact::Compute(g, 10);
  EXPECT_EQ(sources.Summary(2).at(0), 5);
  EXPECT_EQ(sources.Summary(2).at(1), 2);
}

TEST(SourceSetExactTest, WindowPrunesLongChannels) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 10);  // chain duration 10, too long for window 5
  const SourceSetExact sources = SourceSetExact::Compute(g, 5);
  EXPECT_TRUE(sources.Summary(2).count(1));   // direct edge
  EXPECT_FALSE(sources.Summary(2).count(0));  // pruned chain
}

TEST(SourceSetExactTest, UnionSizeMatchesManualUnion) {
  const InteractionGraph g = GenerateUniformRandomNetwork(20, 150, 300, 7);
  const SourceSetExact sources = SourceSetExact::Compute(g, 100);
  const std::vector<NodeId> targets = {0, 4, 9, 15};
  std::set<NodeId> manual;
  for (const NodeId v : targets) {
    const auto set = sources.SourceSet(v);
    manual.insert(set.begin(), set.end());
  }
  EXPECT_EQ(sources.UnionSize(targets), manual.size());
}

TEST(SourceSetExactTest, StreamingIncrementalUpdates) {
  // The defining feature: interactions are processed as they arrive and
  // queries are valid after every prefix.
  SourceSetExact sources(4, 5);
  sources.ProcessInteraction({0, 1, 1});
  EXPECT_EQ(sources.SourceSetSize(1), 1u);
  sources.ProcessInteraction({1, 2, 3});
  EXPECT_EQ(sources.SourceSetSize(2), 2u);  // 1 direct, 0 via chain
  sources.ProcessInteraction({2, 3, 8});
  // Chain 0 -> ... -> 3 has duration 8 > 5; 1 -> 3 has 8 - 3 + 1 = 6 > 5.
  EXPECT_EQ(sources.SourceSetSize(3), 1u);  // only 2
}

TEST(SourceSetExactDeathTest, RejectsOutOfOrderInteractions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SourceSetExact sources(3, 5);
  sources.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(sources.ProcessInteraction({1, 2, 5}), "CHECK failed");
}

TEST(SourceSetApproxTest, SketchesKeepInvariants) {
  const InteractionGraph g = GenerateUniformRandomNetwork(60, 600, 2000, 11);
  IrsApproxOptions options;
  options.precision = 6;
  const SourceSetApprox approx = SourceSetApprox::Compute(g, 500, options);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (approx.Sketch(v)) {
      EXPECT_TRUE(approx.Sketch(v).CheckInvariants()) << "node " << v;
    }
  }
}

TEST(SourceSetApproxTest, TracksExactSizes) {
  SyntheticConfig config;
  config.num_nodes = 300;
  config.num_interactions = 5000;
  config.time_span = 10000;
  config.seed = 23;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  const SourceSetExact exact = SourceSetExact::Compute(g, window);
  IrsApproxOptions options;
  options.precision = 9;
  const SourceSetApprox approx = SourceSetApprox::Compute(g, window, options);

  double total_err = 0.0;
  int count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (exact.SourceSetSize(v) < 10) continue;
    const double truth = static_cast<double>(exact.SourceSetSize(v));
    total_err += std::abs(approx.EstimateSourceSetSize(v) - truth) / truth;
    ++count;
  }
  ASSERT_GT(count, 10);
  EXPECT_LT(total_err / count, 0.15);
}

TEST(SourceSetApproxTest, UnionEstimateReasonable) {
  const InteractionGraph g = GenerateUniformRandomNetwork(150, 2500, 6000, 13);
  const Duration window = 2000;
  const SourceSetExact exact = SourceSetExact::Compute(g, window);
  IrsApproxOptions options;
  options.precision = 9;
  const SourceSetApprox approx = SourceSetApprox::Compute(g, window, options);
  const std::vector<NodeId> targets = {3, 17, 42, 99};
  const double truth = static_cast<double>(exact.UnionSize(targets));
  if (truth > 20.0) {
    EXPECT_NEAR(approx.EstimateUnionSize(targets) / truth, 1.0, 0.25);
  }
}

TEST(SourceSetApproxTest, LazyAllocationOnlyForReceivers) {
  InteractionGraph g(5);
  g.AddInteraction(0, 1, 1);
  IrsApproxOptions options;
  options.precision = 6;
  const SourceSetApprox approx = SourceSetApprox::Compute(g, 5, options);
  EXPECT_TRUE(approx.Sketch(1).valid());
  EXPECT_FALSE(approx.Sketch(0).valid());  // pure sender
  EXPECT_EQ(approx.NumAllocatedSketches(), 1u);
  EXPECT_DOUBLE_EQ(approx.EstimateSourceSetSize(0), 0.0);
}

TEST(SourceSetApproxDeathTest, RejectsOutOfOrderInteractions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IrsApproxOptions options;
  options.precision = 6;
  SourceSetApprox approx(3, 5, options);
  approx.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(approx.ProcessInteraction({1, 2, 5}), "CHECK failed");
}


TEST(SourceSetOracleTest, SusceptibilityMaximizationCoversMoreThanTopK) {
  // Greedy over the source-set oracle picks monitors whose influencer sets
  // overlap little; it must cover at least as much as the top-k by
  // individual source-set size.
  SyntheticConfig config;
  config.num_nodes = 200;
  config.num_interactions = 3000;
  config.time_span = 6000;
  config.seed = 33;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  IrsApproxOptions options;
  options.precision = 9;
  const SourceSetApprox sets = SourceSetApprox::Compute(g, 1500, options);
  const SourceSetOracle oracle(&sets);

  const SeedSelection greedy = SelectSeedsCelf(oracle, 8);
  ASSERT_EQ(greedy.seeds.size(), 8u);

  // Top-8 by individual size.
  std::vector<NodeId> by_size(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) by_size[v] = v;
  std::sort(by_size.begin(), by_size.end(), [&oracle](NodeId a, NodeId b) {
    return oracle.InfluenceOf(a) > oracle.InfluenceOf(b);
  });
  by_size.resize(8);
  EXPECT_GE(greedy.total_coverage + 1e-6,
            0.95 * oracle.InfluenceOfSet(by_size));
}

TEST(SourceSetOracleTest, CoverageConsistentWithSetQueries) {
  const InteractionGraph g = GenerateUniformRandomNetwork(80, 1000, 3000, 9);
  IrsApproxOptions options;
  options.precision = 8;
  const SourceSetApprox sets = SourceSetApprox::Compute(g, 800, options);
  const SourceSetOracle oracle(&sets);
  auto coverage = oracle.NewCoverage();
  std::vector<NodeId> committed;
  for (const NodeId v : {3u, 20u, 55u}) {
    coverage->Commit(v);
    committed.push_back(v);
    EXPECT_NEAR(coverage->Covered(), oracle.InfluenceOfSet(committed), 1e-9);
  }
}

}  // namespace
}  // namespace ipin
