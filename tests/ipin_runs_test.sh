#!/usr/bin/env bash
# End-to-end test of the ipin_runs ledger inspector: list/show rendering
# and the diff gate's exit codes, against real ledgers produced by
# ipin_cli. Works in both obs build modes — the run ledger itself is never
# compiled out; only the phase/pool tables are empty under obs-disabled.
#
# Usage: ipin_runs_test.sh <ipin_runs> <ipin_cli> <obs-mode>

set -euo pipefail

RUNS=$1
CLI=$2
OBS_MODE="${3:-obs-enabled}"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- fixtures: two real runs of the same build command --------------------
"$CLI" generate --dataset=slashdot --scale=0.01 --out="$WORK/net.txt" \
  > /dev/null 2>&1
"$CLI" build-index --in="$WORK/net.txt" --out="$WORK/a.bin" --threads=1 \
  --ledger_dir="$WORK/ledgers" > /dev/null 2>&1
"$CLI" build-index --in="$WORK/net.txt" --out="$WORK/b.bin" --threads=2 \
  --ledger_dir="$WORK/ledgers" > /dev/null 2>&1

LEDGERS=("$WORK"/ledgers/*.ipinrun)
[[ ${#LEDGERS[@]} -eq 2 ]] || fail "expected 2 ledgers, got ${#LEDGERS[@]}"
A=${LEDGERS[0]}
B=${LEDGERS[1]}

# --- list ------------------------------------------------------------------
"$RUNS" list "$WORK/ledgers" > "$WORK/list.out" \
  || fail "list exited nonzero"
[[ $(grep -c 'build-index' "$WORK/list.out") -eq 2 ]] \
  || fail "list should show both build-index runs"
grep -q 'ok' "$WORK/list.out" || fail "list should show the outcome"
"$RUNS" list "$WORK/no_such_dir" > /dev/null 2>&1 \
  && fail "list of a missing directory should exit nonzero"

# --- show ------------------------------------------------------------------
"$RUNS" show "$A" > "$WORK/show.out" || fail "show exited nonzero"
grep -q 'tool.*ipin_cli' "$WORK/show.out" || fail "show missing tool"
grep -q 'outcome.*ok' "$WORK/show.out" || fail "show missing outcome"
grep -q 'net.txt' "$WORK/show.out" || fail "show missing the input file"
grep -q 'a.bin' "$WORK/show.out" || fail "show missing the output file"
grep -q 'git' "$WORK/show.out" || fail "show missing provenance"
if [ "$OBS_MODE" = "obs-enabled" ]; then
  grep -q 'graph.parse' "$WORK/show.out" \
    || fail "show missing the graph.parse phase"
  grep -q 'irs.' "$WORK/show.out" || fail "show missing the IRS scan phase"
fi

# --- diff ------------------------------------------------------------------
# A ledger diffed against itself has zero deltas: exit 0.
"$RUNS" diff "$A" "$A" > "$WORK/diff_same.out" \
  || fail "self-diff should exit 0"
grep -q 'total.wall' "$WORK/diff_same.out" \
  || fail "diff should report total wall time"
# A negative threshold turns the zero delta into a regression: exit 1.
set +e
"$RUNS" diff "$A" "$A" --threshold=-0.01 > "$WORK/diff_reg.out"
rc=$?
set -e
[[ $rc -eq 1 ]] || fail "self-diff with negative threshold should exit 1"
grep -q 'REGRESSED' "$WORK/diff_reg.out" \
  || fail "regressed rows should be marked"
# Two different runs still diff cleanly with a generous threshold (timing
# noise between two tiny builds can be large in relative terms).
"$RUNS" diff "$A" "$B" --threshold=1000 > "$WORK/diff_ab.out" \
  || fail "cross-run diff with huge threshold should exit 0"

# --- corrupt / missing inputs exit 2 --------------------------------------
set +e
"$RUNS" diff "$A" "$WORK/ledgers/absent.ipinrun" 2>/dev/null
[[ $? -eq 2 ]] || fail "diff against a missing ledger should exit 2"
head -c 24 "$A" > "$WORK/truncated.ipinrun"
"$RUNS" show "$WORK/truncated.ipinrun" 2>/dev/null
[[ $? -eq 2 ]] || fail "show of a truncated ledger should exit 2"
"$RUNS" frobnicate 2>/dev/null
[[ $? -eq 2 ]] || fail "unknown command should exit 2 with usage"
set -e

echo "ipin_runs_test: all checks passed"
