// Run-ledger coverage: write/read roundtrip, outcome derivation, the event
// cap, and corruption handling (damaged later frames degrade, a damaged
// core frame is fatal, random flips never crash the loader).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/obs/ledger.h"

namespace ipin::obs {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ipin_ledger_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    fs::remove_all(dir_);
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { fs::remove_all(dir_); }

  RunLedgerOptions Options(const std::string& command) {
    RunLedgerOptions options;
    options.dir = dir_;
    options.tool = "test";
    options.command = command;
    options.args = "--flag=1";
    return options;
  }

  std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(LedgerTest, RoundtripsCoreActivityAndMetrics) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("roundtrip"));
  EXPECT_TRUE(ledger.begun());

  const std::string input = dir_ + "/input.txt";
  fs::create_directories(dir_);
  WriteBytes(input, "1 2 3\n4 5 6\n");
  ledger.RecordInputFile(input);
  ledger.RecordOutput("/out/index.bin");
  ledger.RecordEvent("checkpoint.save", "100/200 edges");
  EXPECT_TRUE(ledger.SawEvent("checkpoint.save"));
  EXPECT_FALSE(ledger.SawEvent("checkpoint.resume"));

  const std::string path = ledger.Finish(0);
  ASSERT_FALSE(path.empty());
  EXPECT_FALSE(ledger.begun());

  const LedgerLoadResult result = LoadRunLedger(path);
  ASSERT_EQ(result.status, LedgerLoadStatus::kOk);
  EXPECT_EQ(result.frames_total, 3u);
  EXPECT_EQ(result.frames_dropped, 0u);
  const JsonValue& doc = result.doc;
  EXPECT_EQ(doc.FindString("schema", ""), "ipin.run.v1");
  EXPECT_EQ(doc.FindString("tool", ""), "test");
  EXPECT_EQ(doc.FindString("command", ""), "roundtrip");
  EXPECT_EQ(doc.FindString("args", ""), "--flag=1");
  EXPECT_EQ(doc.FindString("outcome", ""), "ok");
  EXPECT_GE(doc.FindNumber("wall_seconds", -1.0), 0.0);

  const JsonValue* prov = doc.Find("provenance");
  ASSERT_NE(prov, nullptr);
  EXPECT_FALSE(prov->FindString("git_sha", "").empty());
  EXPECT_FALSE(prov->FindString("hostname", "").empty());
  EXPECT_GE(prov->FindNumber("cpus", 0.0), 1.0);

  const JsonValue* inputs = doc.Find("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_TRUE(inputs->is_array());
  ASSERT_EQ(inputs->array_items().size(), 1u);
  EXPECT_EQ(inputs->array_items()[0].FindString("path", ""), input);
  EXPECT_EQ(inputs->array_items()[0].FindNumber("bytes", 0.0), 12.0);
  EXPECT_GT(inputs->array_items()[0].FindNumber("crc32c", 0.0), 0.0);

  const JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array_items().size(), 1u);
  EXPECT_EQ(events->array_items()[0].FindString("kind", ""),
            "checkpoint.save");

  // The metrics frame merged in too.
  EXPECT_NE(doc.Find("counters"), nullptr);
  EXPECT_NE(doc.Find("gauges"), nullptr);
}

TEST_F(LedgerTest, OutcomeDerivation) {
  RunLedger& ledger = RunLedger::Global();

  ledger.Begin(Options("resumed"));
  ledger.RecordEvent("checkpoint.resume", "from ckpt_approx_42");
  const std::string resumed_path = ledger.Finish(0);
  ASSERT_FALSE(resumed_path.empty());
  EXPECT_EQ(LoadRunLedger(resumed_path).doc.FindString("outcome", ""),
            "resumed");

  ledger.Begin(Options("failed"));
  ledger.RecordEvent("checkpoint.resume", "resume then crash");
  const std::string failed_path = ledger.Finish(3);
  ASSERT_FALSE(failed_path.empty());
  const LedgerLoadResult failed = LoadRunLedger(failed_path);
  EXPECT_EQ(failed.doc.FindString("outcome", ""), "error");
  EXPECT_EQ(failed.doc.FindNumber("exit_code", 0.0), 3.0);
}

TEST_F(LedgerTest, EventCapCountsDrops) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("cap"));
  for (size_t i = 0; i < RunLedger::kMaxEvents + 50; ++i) {
    ledger.RecordEvent("spam", std::to_string(i));
  }
  // Kind bookkeeping survives the cap.
  ledger.RecordEvent("checkpoint.resume", "late but tracked");
  EXPECT_TRUE(ledger.SawEvent("checkpoint.resume"));
  const std::string path = ledger.Finish(0);
  ASSERT_FALSE(path.empty());
  const LedgerLoadResult result = LoadRunLedger(path);
  const JsonValue* events = result.doc.Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array_items().size(), RunLedger::kMaxEvents);
  EXPECT_EQ(result.doc.FindNumber("events_dropped", 0.0), 51.0);
  EXPECT_EQ(result.doc.FindString("outcome", ""), "resumed");
}

TEST_F(LedgerTest, FinishWithoutDirWritesNothing) {
  RunLedger& ledger = RunLedger::Global();
  RunLedgerOptions options;  // dir empty: in-memory only
  options.tool = "test";
  options.command = "nowrite";
  ledger.Begin(options);
  EXPECT_EQ(ledger.Finish(0), "");
}

TEST_F(LedgerTest, RecordingBeforeBeginIsDropped) {
  RunLedger& ledger = RunLedger::Global();
  // Not begun (previous tests finished their runs).
  ledger.RecordEvent("orphan", "no run open");
  ledger.RecordOutput("/nope");
  ledger.Begin(Options("clean"));
  EXPECT_FALSE(ledger.SawEvent("orphan"));
  EXPECT_TRUE(ledger.Outputs().empty());
  const std::string path = ledger.Finish(0);
  const LedgerLoadResult result = LoadRunLedger(path);
  const JsonValue* events = result.doc.Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array_items().empty());
}

TEST_F(LedgerTest, DamagedLaterFrameDegradesButCoreSurvives) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("degrade"));
  ledger.RecordEvent("checkpoint.save", "1/2");
  const std::string path = ledger.Finish(0);
  ASSERT_FALSE(path.empty());

  // Flip the final byte: inside the last (metrics) frame's payload.
  std::string bytes = ReadBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes.back() = static_cast<char>(bytes.back() ^ 0xff);
  WriteBytes(path, bytes);

  const LedgerLoadResult result = LoadRunLedger(path);
  ASSERT_EQ(result.status, LedgerLoadStatus::kDegraded);
  EXPECT_TRUE(result.usable());
  EXPECT_GE(result.frames_dropped, 1u);
  EXPECT_EQ(result.doc.FindString("outcome", ""), "ok");  // core survived
  EXPECT_NE(result.doc.Find("events"), nullptr);  // activity survived too
}

TEST_F(LedgerTest, DamagedCoreFrameIsCorrupt) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("corrupt"));
  const std::string path = ledger.Finish(0);
  ASSERT_FALSE(path.empty());

  // Byte 40 sits inside the first (core) frame's payload: the file header
  // is 20 bytes and each frame header 12.
  std::string bytes = ReadBytes(path);
  ASSERT_GT(bytes.size(), 41u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0xff);
  WriteBytes(path, bytes);

  const LedgerLoadResult result = LoadRunLedger(path);
  EXPECT_EQ(result.status, LedgerLoadStatus::kCorrupt);
  EXPECT_FALSE(result.usable());
}

TEST_F(LedgerTest, MissingFileReportsMissing) {
  EXPECT_EQ(LoadRunLedger(dir_ + "/nope.ipinrun").status,
            LedgerLoadStatus::kMissing);
}

TEST_F(LedgerTest, RandomFlipsNeverCrashTheLoader) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("fuzz"));
  ledger.RecordInputFile("/dev/null");
  for (int i = 0; i < 20; ++i) ledger.RecordEvent("e", std::to_string(i));
  const std::string path = ledger.Finish(0);
  ASSERT_FALSE(path.empty());
  const std::string pristine = ReadBytes(path);

  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = pristine;
    const size_t pos = rng.NextBounded(bytes.size());
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 + rng.NextBounded(255)));
    WriteBytes(path, bytes);
    const LedgerLoadResult result = LoadRunLedger(path);
    if (result.usable()) {
      // Whatever survived must still carry the schema tag.
      EXPECT_EQ(result.doc.FindString("schema", ""), "ipin.run.v1");
    }
  }
}

TEST_F(LedgerTest, ListRunLedgersSortsChronologically) {
  RunLedger& ledger = RunLedger::Global();
  ledger.Begin(Options("first"));
  const std::string first = ledger.Finish(0);
  ledger.Begin(Options("second"));
  const std::string second = ledger.Finish(0);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  const std::vector<std::string> listed = ListRunLedgers(dir_);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], first);
  EXPECT_EQ(listed[1], second);
  EXPECT_TRUE(ListRunLedgers(dir_ + "/absent").empty());
}

}  // namespace
}  // namespace ipin::obs
