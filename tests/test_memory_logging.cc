#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/memory.h"

namespace ipin {
namespace {

TEST(FormatBytesTest, PicksHumanUnits) {
  EXPECT_EQ(FormatBytes(0), "0.0 B");
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(FormatBytes(static_cast<size_t>(5) << 30), "5.0 GB");
}

TEST(VectorBytesTest, UsesCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
  v.push_back(1);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
}

TEST(HashMapBytesTest, GrowsWithElementsAndBuckets) {
  const size_t small = HashMapBytes(10, 16, 12);
  const size_t more_elems = HashMapBytes(100, 16, 12);
  const size_t more_buckets = HashMapBytes(10, 256, 12);
  EXPECT_GT(more_elems, small);
  EXPECT_GT(more_buckets, small);
  EXPECT_EQ(HashMapBytes(0, 0, 12), 0u);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash; output is suppressed below the threshold.
  LogDebug("suppressed");
  LogInfo("suppressed");
  LogWarning("suppressed");
  LogError("visible (expected in test output)");
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("loudest", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST(LoggingTest, SinkCapturesRecordsAndRestores) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel level, const std::string& message) {
    (void)level;
    captured.push_back(message);
  });
  LogInfo("captured line");
  LogDebug("below threshold");  // filtered before it reaches the sink
  SetLogSink(nullptr);
  SetLogLevel(original);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "captured line");
}

TEST(LoggingTest, ConcurrentLoggingDropsNoRecords) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::mutex mu;
  size_t count = 0;
  SetLogSink([&mu, &count](LogLevel, const std::string&) {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) LogInfo("concurrent record");
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogSink(nullptr);
  SetLogLevel(original);
  EXPECT_EQ(count, static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ipin
