#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/memory.h"

namespace ipin {
namespace {

TEST(FormatBytesTest, PicksHumanUnits) {
  EXPECT_EQ(FormatBytes(0), "0.0 B");
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(FormatBytes(static_cast<size_t>(5) << 30), "5.0 GB");
}

TEST(VectorBytesTest, UsesCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
  v.push_back(1);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
}

TEST(HashMapBytesTest, GrowsWithElementsAndBuckets) {
  const size_t small = HashMapBytes(10, 16, 12);
  const size_t more_elems = HashMapBytes(100, 16, 12);
  const size_t more_buckets = HashMapBytes(10, 256, 12);
  EXPECT_GT(more_elems, small);
  EXPECT_GT(more_buckets, small);
  EXPECT_EQ(HashMapBytes(0, 0, 12), 0u);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash; output is suppressed below the threshold.
  LogDebug("suppressed");
  LogInfo("suppressed");
  LogWarning("suppressed");
  LogError("visible (expected in test output)");
  SetLogLevel(original);
}

}  // namespace
}  // namespace ipin
