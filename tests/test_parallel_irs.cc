// Cross-validation of every parallel code path against its sequential
// counterpart (DESIGN.md §10): the slab-stitched IRS build must be
// bit-identical to the one-pass scan, greedy/CELF seed selection and the
// TCIC Monte Carlo mean must not depend on the thread count, and the
// chunked graph parser must accept/skip exactly the same lines. Thread
// counts are pinned explicitly so the parallel paths are exercised even on
// single-core CI runners.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/thread_pool.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/graph/graph_io.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

class ParallelIrsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetGlobalThreads(0); }  // restore default
};

IrsApproxOptions Options(int precision) {
  IrsApproxOptions options;
  options.precision = precision;
  return options;
}

// Big enough that ComputeParallel keeps up to 7 slabs (>= 1024 edges each)
// instead of falling back to the sequential scan.
InteractionGraph TestGraph() {
  return GenerateUniformRandomNetwork(/*num_nodes=*/300,
                                      /*num_interactions=*/8000,
                                      /*time_span=*/20000, /*seed=*/19);
}

// Serialized bytes of every per-node sketch plus the allocation pattern;
// two IRS builds are bit-identical iff these strings match.
std::string Fingerprint(const IrsApprox& irs) {
  std::string out;
  for (NodeId u = 0; u < irs.num_nodes(); ++u) {
    const SketchView sketch = irs.Sketch(u);
    out.push_back(sketch ? '1' : '0');
    if (sketch) sketch.Serialize(&out);
  }
  return out;
}

TEST_F(ParallelIrsTest, SlabStitchedBuildIsBitIdentical) {
  const InteractionGraph g = TestGraph();
  const Duration window = 2500;

  SetGlobalThreads(1);
  const IrsApprox sequential = IrsApprox::Compute(g, window, Options(6));
  const std::string expected = Fingerprint(sequential);

  SetGlobalThreads(4);
  for (const size_t slabs : {2u, 4u, 7u}) {
    const IrsApprox parallel =
        IrsApprox::ComputeParallel(g, window, Options(6), slabs);
    EXPECT_EQ(parallel.NumAllocatedSketches(),
              sequential.NumAllocatedSketches())
        << slabs << " slabs";
    EXPECT_EQ(Fingerprint(parallel), expected) << slabs << " slabs";
  }
}

TEST_F(ParallelIrsTest, ComputeDispatchMatchesSequential) {
  // Compute() itself routes large graphs to the parallel build when the
  // global thread count is > 1; the caller must not be able to tell.
  const InteractionGraph g = TestGraph();
  const Duration window = 1200;

  SetGlobalThreads(1);
  const std::string expected =
      Fingerprint(IrsApprox::Compute(g, window, Options(7)));

  SetGlobalThreads(7);
  EXPECT_EQ(Fingerprint(IrsApprox::Compute(g, window, Options(7))), expected);
}

TEST_F(ParallelIrsTest, TinyGraphFallsBackToSequential) {
  const InteractionGraph g = GenerateUniformRandomNetwork(20, 200, 500, 3);
  SetGlobalThreads(1);
  const std::string expected =
      Fingerprint(IrsApprox::Compute(g, 50, Options(6)));
  SetGlobalThreads(4);
  // Too small for even one full slab: ComputeParallel degrades to the
  // one-pass scan rather than over-splitting.
  EXPECT_EQ(Fingerprint(IrsApprox::ComputeParallel(g, 50, Options(6), 4)),
            expected);
}

TEST_F(ParallelIrsTest, GreedySeedSelectionIsThreadCountInvariant) {
  const InteractionGraph g = TestGraph();
  SetGlobalThreads(1);
  const IrsApprox irs = IrsApprox::Compute(g, 2500, Options(6));
  const SketchInfluenceOracle oracle(&irs);

  const SeedSelection sequential = SelectSeedsGreedy(oracle, 8);

  SetGlobalThreads(4);
  const SeedSelection parallel = SelectSeedsGreedy(oracle, 8);

  EXPECT_EQ(parallel.seeds, sequential.seeds);
  ASSERT_EQ(parallel.gains.size(), sequential.gains.size());
  for (size_t i = 0; i < parallel.gains.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.gains[i], sequential.gains[i]) << "pick " << i;
  }
  EXPECT_DOUBLE_EQ(parallel.total_coverage, sequential.total_coverage);
  // Counted (non-speculative) evaluations replay Algorithm 4's early-exit
  // trajectory exactly; extra in-flight batch work is tracked separately
  // under im.greedy.speculative_evaluations.
  EXPECT_EQ(parallel.gain_evaluations, sequential.gain_evaluations);
}

TEST_F(ParallelIrsTest, CelfSeedSelectionIsThreadCountInvariant) {
  const InteractionGraph g = TestGraph();
  SetGlobalThreads(1);
  const IrsApprox irs = IrsApprox::Compute(g, 2500, Options(6));
  const SketchInfluenceOracle oracle(&irs);

  const SeedSelection sequential = SelectSeedsCelf(oracle, 8);

  SetGlobalThreads(4);
  const SeedSelection parallel = SelectSeedsCelf(oracle, 8);

  EXPECT_EQ(parallel.seeds, sequential.seeds);
  ASSERT_EQ(parallel.gains.size(), sequential.gains.size());
  for (size_t i = 0; i < parallel.gains.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.gains[i], sequential.gains[i]) << "pick " << i;
  }
  EXPECT_EQ(parallel.gain_evaluations, sequential.gain_evaluations);
}

TEST_F(ParallelIrsTest, GreedyAndCelfAgreeUnderParallelism) {
  const InteractionGraph g = TestGraph();
  SetGlobalThreads(4);
  const IrsApprox irs = IrsApprox::Compute(g, 2500, Options(6));
  const SketchInfluenceOracle oracle(&irs);
  EXPECT_EQ(SelectSeedsGreedy(oracle, 6).seeds,
            SelectSeedsCelf(oracle, 6).seeds);
}

TEST_F(ParallelIrsTest, TcicMeanIsSeedStableAcrossThreadCounts) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 2000, 5000, 7);
  const std::vector<NodeId> seeds = {1, 5, 9};
  TcicOptions options;
  options.window = 500;
  options.probability = 0.5;

  SetGlobalThreads(1);
  const double sequential = AverageTcicSpread(g, seeds, options, 250, 42);

  for (const size_t threads : {2u, 4u, 7u}) {
    SetGlobalThreads(threads);
    // Per-run RNG streams are derived from (seed, run index), and the means
    // are reduced in run order, so the result is bit-identical.
    EXPECT_DOUBLE_EQ(AverageTcicSpread(g, seeds, options, 250, 42),
                     sequential)
        << threads << " threads";
  }
}

class ParallelGraphIoTest : public ParallelIrsTest {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_parallel_io_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override {
    std::remove(path_.c_str());
    ParallelIrsTest::TearDown();
  }

  // A file large enough to split into several parse chunks (the chunker
  // aims for >= 64 KiB per chunk), with comments and — when `dirty` —
  // malformed lines and a timestamp regression sprinkled in.
  void WriteBigFile(bool dirty) {
    std::ofstream out(path_);
    out << "# header comment\n";
    for (int i = 0; i < 30000; ++i) {
      if (dirty && i % 997 == 0) out << "garbage line " << i << "\n";
      if (dirty && i % 1501 == 0) out << i % 400 << " " << (i + 1) % 400 << "\n";
      if (dirty && i == 15000) out << "5 6 1\n";  // timestamp regression
      out << i % 400 << " " << (i * 7 + 1) % 400 << " " << 1000 + i << "\n";
    }
  }

  std::string path_;
};

void ExpectSameGraph(const InteractionGraph& a, const InteractionGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_interactions(), b.num_interactions());
  for (size_t i = 0; i < a.num_interactions(); ++i) {
    const Interaction& x = a.interaction(i);
    const Interaction& y = b.interaction(i);
    ASSERT_EQ(x.src, y.src) << "interaction " << i;
    ASSERT_EQ(x.dst, y.dst) << "interaction " << i;
    ASSERT_EQ(x.time, y.time) << "interaction " << i;
  }
}

TEST_F(ParallelGraphIoTest, ChunkedStrictParseMatchesSequential) {
  WriteBigFile(/*dirty=*/false);
  SetGlobalThreads(1);
  const auto sequential = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(sequential.has_value());

  SetGlobalThreads(4);
  const auto parallel = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(parallel.has_value());
  ExpectSameGraph(*parallel, *sequential);
}

TEST_F(ParallelGraphIoTest, ChunkedLenientParseSkipsSameLines) {
  WriteBigFile(/*dirty=*/true);
  obs::Counter* skipped =
      obs::MetricsRegistry::Global().GetCounter("graph.io.skipped_lines");

  SetGlobalThreads(1);
  const uint64_t before_seq = skipped->Value();
  const auto sequential = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  const uint64_t skipped_seq = skipped->Value() - before_seq;
  ASSERT_TRUE(sequential.has_value());

  SetGlobalThreads(4);
  const uint64_t before_par = skipped->Value();
  const auto parallel = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  const uint64_t skipped_par = skipped->Value() - before_par;
  ASSERT_TRUE(parallel.has_value());

  ExpectSameGraph(*parallel, *sequential);
  EXPECT_EQ(skipped_par, skipped_seq);
#ifndef IPIN_OBS_DISABLED
  EXPECT_GT(skipped_seq, 0u);
#endif
}

TEST_F(ParallelGraphIoTest, ChunkedStrictParseRejectsSameFile) {
  WriteBigFile(/*dirty=*/true);
  SetGlobalThreads(4);
  EXPECT_FALSE(LoadInteractionsFromFile(path_).has_value());
}

}  // namespace
}  // namespace ipin
