#include "ipin/serve/shard_map.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/core/irs_approx.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/obs/metrics.h"
#include "ipin/sketch/estimators.h"

namespace ipin::serve {
namespace {

std::vector<ShardInfo> MakeShards(size_t n) {
  std::vector<ShardInfo> shards(n);
  for (size_t i = 0; i < n; ++i) {
    shards[i].name = "shard" + std::to_string(i);
    shards[i].endpoint.unix_socket_path =
        "/tmp/ipin-shard" + std::to_string(i) + ".sock";
  }
  return shards;
}

uint64_t RollbackCount() {
  return obs::MetricsRegistry::Global()
      .GetCounter("serve.shard.map.rollback")
      ->Value();
}

TEST(ShardMapTest, OwnershipIsDeterministicAndCoversEveryNode) {
  const ShardMap a(MakeShards(3));
  const ShardMap b(MakeShards(3));
  ASSERT_EQ(a.num_shards(), 3u);
  std::vector<size_t> owned(3, 0);
  for (NodeId u = 0; u < 10000; ++u) {
    const size_t owner = a.OwnerOf(u);
    ASSERT_LT(owner, 3u);
    // Pure function of the map contents: an identically-built map agrees.
    EXPECT_EQ(owner, b.OwnerOf(u));
    ++owned[owner];
  }
  // Consistent hashing with 64 virtual points per shard balances within a
  // loose factor; mostly this guards against all nodes landing on one shard.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(owned[i], 1000u) << "shard " << i;
  }
}

TEST(ShardMapTest, ResizingMovesOnlyPartOfTheNodeSpace) {
  const ShardMap three(MakeShards(3));
  const ShardMap four(MakeShards(4));
  size_t moved = 0;
  const NodeId num_nodes = 10000;
  for (NodeId u = 0; u < num_nodes; ++u) {
    // Shards 0..2 keep their names in the 4-shard map, so any node that
    // changes owner moved because of shard3's ring points.
    if (three.OwnerOf(u) != four.OwnerOf(u)) ++moved;
  }
  EXPECT_GT(moved, 0u);
  // ~1/4 of the space should move to the new shard; well under half is the
  // robust assertion (a full rehash would move ~3/4).
  EXPECT_LT(moved, num_nodes / 2);
}

TEST(ShardMapTest, PartitionSeedsIsADisjointCoverPreservingDuplicates) {
  const ShardMap map(MakeShards(5));
  const std::vector<NodeId> seeds = {1, 7, 7, 23, 42, 99, 1000, 77};
  const auto parts = map.PartitionSeeds(seeds);
  ASSERT_EQ(parts.size(), 5u);
  size_t total = 0;
  for (size_t s = 0; s < parts.size(); ++s) {
    for (const NodeId u : parts[s]) {
      EXPECT_EQ(map.OwnerOf(u), s);
      ++total;
    }
  }
  EXPECT_EQ(total, seeds.size());
}

TEST(ShardMapTest, JsonRoundTripPreservesOwnership) {
  std::vector<ShardInfo> shards = MakeShards(3);
  shards[1].endpoint = ShardEndpoint{};
  shards[1].endpoint.tcp_port = 7101;
  shards[1].mirror.unix_socket_path = "/tmp/ipin-shard1b.sock";
  const ShardMap map(shards, 32);

  std::string error;
  const auto reparsed = ShardMap::Parse(map.ToJson(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->num_shards(), 3u);
  EXPECT_EQ(reparsed->virtual_points(), 32);
  EXPECT_EQ(reparsed->shard(1).endpoint.tcp_port, 7101);
  EXPECT_EQ(reparsed->shard(1).mirror.unix_socket_path,
            "/tmp/ipin-shard1b.sock");
  EXPECT_TRUE(reparsed->shard(1).mirror.valid());
  EXPECT_FALSE(reparsed->shard(0).mirror.valid());
  for (NodeId u = 0; u < 5000; ++u) {
    ASSERT_EQ(map.OwnerOf(u), reparsed->OwnerOf(u)) << "node " << u;
  }
}

TEST(ShardMapTest, ParseRejectsMalformedMaps) {
  std::string error;
  EXPECT_FALSE(ShardMap::Parse("not json", &error).has_value());
  EXPECT_FALSE(ShardMap::Parse("{}", &error).has_value());
  EXPECT_FALSE(
      ShardMap::Parse(R"({"schema":"wrong.v1","shards":[]})", &error)
          .has_value());
  // Empty shard list.
  EXPECT_FALSE(
      ShardMap::Parse(R"({"schema":"ipin.shardmap.v1","shards":[]})", &error)
          .has_value());
  // Duplicate names.
  EXPECT_FALSE(ShardMap::Parse(
                   R"({"schema":"ipin.shardmap.v1","shards":[)"
                   R"({"name":"a","unix_socket":"/tmp/a.sock"},)"
                   R"({"name":"a","unix_socket":"/tmp/b.sock"}]})",
                   &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  // No endpoint.
  EXPECT_FALSE(ShardMap::Parse(R"({"schema":"ipin.shardmap.v1","shards":[)"
                               R"({"name":"a"}]})",
                               &error)
                   .has_value());
}

// --- v2: replicas, index-file bindings, and the transition block ---------

TEST(ShardMapV2Test, SchemaTagTracksTheFeatureSet) {
  // A plain map keeps the v1 tag so old routers can read it; any v2
  // feature upgrades the tag.
  EXPECT_NE(ShardMap(MakeShards(2)).ToJson().find("ipin.shardmap.v1"),
            std::string::npos);
  std::vector<ShardInfo> shards = MakeShards(2);
  shards[0].replicas.push_back(
      ShardEndpoint{.unix_socket_path = "/tmp/ipin-shard0r.sock"});
  EXPECT_NE(ShardMap(shards).ToJson().find("ipin.shardmap.v2"),
            std::string::npos);
}

TEST(ShardMapV2Test, RoundTripPreservesReplicasBindingsAndTransition) {
  std::vector<ShardInfo> shards = MakeShards(3);
  shards[0].replicas.push_back(
      ShardEndpoint{.unix_socket_path = "/tmp/ipin-shard0r.sock"});
  ShardEndpoint tcp_replica;
  tcp_replica.tcp_host = "10.0.0.9";
  tcp_replica.tcp_port = 7109;
  shards[0].replicas.push_back(tcp_replica);
  shards[1].index_file = "shard1.bin";
  shards[1].fingerprint = "crc32c:0badf00d";
  ShardMap map(shards);
  map.BeginTransition(
      std::make_shared<const ShardMap>(ShardMap(MakeShards(2))));

  std::string error;
  const auto reparsed = ShardMap::Parse(map.ToJson(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  ASSERT_EQ(reparsed->shard(0).replicas.size(), 2u);
  EXPECT_EQ(reparsed->shard(0).replicas[0].unix_socket_path,
            "/tmp/ipin-shard0r.sock");
  EXPECT_EQ(reparsed->shard(0).replicas[1].tcp_host, "10.0.0.9");
  EXPECT_EQ(reparsed->shard(0).replicas[1].tcp_port, 7109);
  EXPECT_EQ(reparsed->shard(1).index_file, "shard1.bin");
  EXPECT_EQ(reparsed->shard(1).fingerprint, "crc32c:0badf00d");
  ASSERT_TRUE(reparsed->InTransition());
  EXPECT_EQ(reparsed->previous()->num_shards(), 2u);
  // Serialization is stable: a second round trip is byte-identical.
  EXPECT_EQ(reparsed->ToJson(), map.ToJson());
  for (NodeId u = 0; u < 5000; ++u) {
    ASSERT_EQ(map.OwnerOf(u), reparsed->OwnerOf(u));
    ASSERT_EQ(map.OwnerMoved(u), reparsed->OwnerMoved(u));
  }
}

// The growth invariant the zero-downtime reshard rests on: when shards are
// only ADDED (old names keep their ring points), the nodes whose owner
// moved are exactly the nodes the new shards own — so an old daemon's
// (superset) piece can answer every old-owner fallback leg.
TEST(ShardMapV2Test, GrowthMovesExactlyTheNewShardsOwnership) {
  std::vector<ShardInfo> grown = MakeShards(4);
  for (size_t i = 4; i < 6; ++i) {
    ShardInfo info;
    info.name = "grown" + std::to_string(i);
    info.endpoint.unix_socket_path =
        "/tmp/ipin-grown" + std::to_string(i) + ".sock";
    grown.push_back(info);
  }
  ShardMap map(grown);
  map.BeginTransition(
      std::make_shared<const ShardMap>(ShardMap(MakeShards(4))));

  size_t moved = 0;
  for (NodeId u = 0; u < 20000; ++u) {
    const bool owned_by_new = map.OwnerOf(u) >= 4;
    EXPECT_EQ(map.OwnerMoved(u), owned_by_new) << "node " << u;
    if (owned_by_new) ++moved;
  }
  // ~2/6 of the space should move; anything between a sliver and half
  // passes, a full rehash (~5/6) cannot.
  EXPECT_GT(moved, 2000u);
  EXPECT_LT(moved, 10000u);
}

TEST(ShardMapV2Test, ClearTransitionEndsDoubleDispatch) {
  ShardMap map(MakeShards(3));
  map.BeginTransition(
      std::make_shared<const ShardMap>(ShardMap(MakeShards(2))));
  ASSERT_TRUE(map.InTransition());
  map.ClearTransition();
  EXPECT_FALSE(map.InTransition());
  EXPECT_EQ(map.previous(), nullptr);
  for (NodeId u = 0; u < 1000; ++u) {
    EXPECT_FALSE(map.OwnerMoved(u));
  }
  // And the serialized form is back to v1.
  EXPECT_NE(map.ToJson().find("ipin.shardmap.v1"), std::string::npos);
}

TEST(ShardMapV2Test, ParseRejectsNestedTransitionsAndBadReplicas) {
  ShardMap inner(MakeShards(2));
  inner.BeginTransition(
      std::make_shared<const ShardMap>(ShardMap(MakeShards(2))));
  ShardMap outer(MakeShards(3));
  outer.BeginTransition(std::make_shared<const ShardMap>(inner));
  std::string error;
  // BeginTransition cannot nest in-memory; splice the nested document in by
  // hand to attack the parser.
  const std::string nested = outer.ToJson();
  ASSERT_EQ(outer.previous()->InTransition(), false)
      << "BeginTransition must strip the nested transition";
  EXPECT_TRUE(ShardMap::Parse(nested, &error).has_value());

  // A hand-spliced nested block (which no tool emits) is rejected outright.
  EXPECT_FALSE(
      ShardMap::Parse(
          R"({"schema":"ipin.shardmap.v2","shards":[)"
          R"({"name":"a","unix_socket":"/tmp/a.sock"}],)"
          R"("transition":{"shards":[)"
          R"({"name":"b","unix_socket":"/tmp/b.sock"}],)"
          R"("transition":{"shards":[)"
          R"({"name":"c","unix_socket":"/tmp/c.sock"}]}}})",
          &error)
          .has_value());

  // A replica without a valid endpoint is rejected.
  EXPECT_FALSE(
      ShardMap::Parse(R"({"schema":"ipin.shardmap.v2","shards":[)"
                      R"({"name":"a","unix_socket":"/tmp/a.sock",)"
                      R"("replicas":[{}]}]})",
                      &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

class ShardIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    const InteractionGraph graph =
        GenerateUniformRandomNetwork(60, 600, 1000, 7);
    IrsApproxOptions options;
    options.precision = 5;
    full_ = IrsApprox::Compute(graph, 200, options);
  }

  IrsApprox full_{0, 1, IrsApproxOptions{}};
};

TEST_F(ShardIndexTest, ExtractKeepsFullNodeSpaceAndOnlyOwnedSketches) {
  const ShardMap map(MakeShards(3));
  for (size_t s = 0; s < map.num_shards(); ++s) {
    const IrsApprox piece = ExtractShardIndex(full_, map, s);
    ASSERT_EQ(piece.num_nodes(), full_.num_nodes());
    for (NodeId u = 0; u < full_.num_nodes(); ++u) {
      if (map.OwnerOf(u) == s && full_.Sketch(u)) {
        ASSERT_TRUE(piece.Sketch(u).valid()) << "owned node " << u;
        EXPECT_DOUBLE_EQ(piece.Sketch(u).Estimate(),
                         full_.Sketch(u).Estimate());
      } else {
        EXPECT_FALSE(piece.Sketch(u).valid()) << "unowned node " << u;
      }
    }
  }
}

// The exactness argument of the tentpole, at the library level: cellwise
// max over the per-shard union rank vectors reproduces the full index's
// union estimate bit for bit, for several shard counts.
TEST_F(ShardIndexTest, ShardedRankMergeMatchesFullUnionExactly) {
  const size_t beta = size_t{1} << full_.options().precision;
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {1, 2, 3}, {5, 10, 15, 20, 25, 30}, {59}, {7, 7, 7}};
  for (const size_t num_shards : {2u, 3u, 5u}) {
    const ShardMap map(MakeShards(num_shards));
    std::vector<IrsApprox> pieces;
    for (size_t s = 0; s < num_shards; ++s) {
      pieces.push_back(ExtractShardIndex(full_, map, s));
    }
    for (const auto& seeds : seed_sets) {
      std::vector<uint8_t> merged(beta, 0);
      const auto parts = map.PartitionSeeds(seeds);
      for (size_t s = 0; s < num_shards; ++s) {
        for (const NodeId u : parts[s]) {
          const SketchView sketch = pieces[s].Sketch(u);
          if (!sketch) continue;
          const auto ranks = sketch.max_ranks();
          for (size_t c = 0; c < beta; ++c) {
            if (ranks[c] > merged[c]) merged[c] = ranks[c];
          }
        }
      }
      EXPECT_DOUBLE_EQ(EstimateFromRanks(merged),
                       full_.EstimateUnionSize(seeds))
          << num_shards << " shards, " << seeds.size() << " seeds";
    }
  }
}

class ShardMapManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    path_ = ::testing::TempDir() + "/ipin_shardmap_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".json";
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::remove(path_.c_str());
  }

  void WriteMap(const std::string& content) const {
    std::ofstream out(path_, std::ios::trunc);
    out << content << '\n';
  }

  std::string path_;
};

TEST_F(ShardMapManagerTest, InstallAndReloadAdvanceEpoch) {
  ShardMapManager manager(path_);
  EXPECT_EQ(manager.Epoch(), 0u);
  EXPECT_EQ(manager.Current(), nullptr);

  WriteMap(ShardMap(MakeShards(2)).ToJson());
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 1u);
  ASSERT_NE(manager.Current(), nullptr);
  EXPECT_EQ(manager.Current()->num_shards(), 2u);

  WriteMap(ShardMap(MakeShards(3)).ToJson());
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 2u);
  EXPECT_EQ(manager.Current()->num_shards(), 3u);
}

TEST_F(ShardMapManagerTest, CorruptMapRollsBackAndKeepsServing) {
  ShardMapManager manager(path_);
  WriteMap(ShardMap(MakeShards(2)).ToJson());
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);
  const auto before = manager.Current();

  const uint64_t rollbacks = RollbackCount();
  WriteMap("{\"schema\": \"ipin.shardmap.v1\", \"shards\": garbage");
  EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
  EXPECT_EQ(manager.Epoch(), 1u);
  EXPECT_EQ(manager.Current(), before);
  EXPECT_EQ(RollbackCount(), rollbacks + 1);
}

// The robustness satellite: N consecutive corrupt reloads each roll back,
// each is counted, the old epoch keeps serving throughout, and a good map
// recovers on the first try afterwards.
TEST_F(ShardMapManagerTest, RepeatedCorruptReloadsKeepOldEpochThenRecover) {
  ShardMapManager manager(path_);
  WriteMap(ShardMap(MakeShards(2)).ToJson());
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);
  const auto good = manager.Current();

  const uint64_t rollbacks = RollbackCount();
  constexpr int kAttempts = 5;
  for (int i = 0; i < kAttempts; ++i) {
    WriteMap("corrupt attempt " + std::to_string(i));
    EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
    EXPECT_EQ(manager.Epoch(), 1u);
    EXPECT_EQ(manager.Current(), good);
    EXPECT_EQ(RollbackCount(), rollbacks + static_cast<uint64_t>(i) + 1);
  }

  WriteMap(ShardMap(MakeShards(4)).ToJson());
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 2u);
  EXPECT_EQ(manager.Current()->num_shards(), 4u);
  EXPECT_EQ(RollbackCount(), rollbacks + kAttempts);
}

TEST_F(ShardMapManagerTest, FailpointForcesRollback) {
  ShardMapManager manager(path_);
  WriteMap(ShardMap(MakeShards(2)).ToJson());
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);

  failpoint::Set("serve.shard.map", "error");
  WriteMap(ShardMap(MakeShards(3)).ToJson());
  EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
  EXPECT_EQ(manager.Current()->num_shards(), 2u);

  failpoint::Clear("serve.shard.map");
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Current()->num_shards(), 3u);
}

}  // namespace
}  // namespace ipin::serve
