#ifndef IPIN_TESTS_TEST_UTIL_H_
#define IPIN_TESTS_TEST_UTIL_H_

#include <map>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Shared fixtures for the core-algorithm tests: the paper's running
// examples, with nodes a..f mapped to ids 0..5.

namespace ipin {

inline constexpr NodeId kA = 0;
inline constexpr NodeId kB = 1;
inline constexpr NodeId kC = 2;
inline constexpr NodeId kD = 3;
inline constexpr NodeId kE = 4;
inline constexpr NodeId kF = 5;

/// The interaction network of the paper's Figure 1a:
/// (a,d,1) (e,f,2) (d,e,3) (e,b,4) (a,b,5) (b,e,6) (e,c,7) (b,c,8).
inline InteractionGraph FigureOneGraph() {
  InteractionGraph g(6);
  g.AddInteraction(kA, kD, 1);
  g.AddInteraction(kE, kF, 2);
  g.AddInteraction(kD, kE, 3);
  g.AddInteraction(kE, kB, 4);
  g.AddInteraction(kA, kB, 5);
  g.AddInteraction(kB, kE, 6);
  g.AddInteraction(kE, kC, 7);
  g.AddInteraction(kB, kC, 8);
  return g;
}

/// The expected IRS summaries of Figure 1a at window 3, from the paper's
/// Example 2 (final table state).
inline std::vector<std::map<NodeId, Timestamp>> FigureOneSummariesW3() {
  return {
      /*a=*/{{kB, 5}, {kC, 7}, {kE, 3}, {kD, 1}},
      /*b=*/{{kC, 7}, {kE, 6}},
      /*c=*/{},
      /*d=*/{{kE, 3}, {kB, 4}},
      /*e=*/{{kC, 7}, {kB, 4}, {kF, 2}},
      /*f=*/{},
  };
}

}  // namespace ipin

#endif  // IPIN_TESTS_TEST_UTIL_H_
