#include "ipin/graph/temporal_paths.h"

#include <gtest/gtest.h>

#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(EarliestArrivalTest, FigureOneFromA) {
  const InteractionGraph g = FigureOneGraph();
  const auto result = EarliestArrival(g, kA, 0, 100);
  EXPECT_EQ(result.arrival[kA], 0);
  EXPECT_EQ(result.arrival[kD], 1);  // a->d at 1
  EXPECT_EQ(result.arrival[kE], 3);  // a->d->e
  EXPECT_EQ(result.arrival[kB], 4);  // a->d->e->b beats a->b at 5
  EXPECT_EQ(result.arrival[kC], 7);
  EXPECT_EQ(result.arrival[kF], kNoTimestamp);  // e->f at 2 is too early
  EXPECT_EQ(result.num_reachable, 4u);
}

TEST(EarliestArrivalTest, StartTimeCutsOffEarlyEdges) {
  const InteractionGraph g = FigureOneGraph();
  // Starting at t=4, a's only usable edge is a->b at 5.
  const auto result = EarliestArrival(g, kA, 4, 100);
  EXPECT_EQ(result.arrival[kD], kNoTimestamp);
  EXPECT_EQ(result.arrival[kB], 5);
  EXPECT_EQ(result.arrival[kE], 6);
  EXPECT_EQ(result.arrival[kC], 7);
}

TEST(EarliestArrivalTest, EndTimeTruncates) {
  const InteractionGraph g = FigureOneGraph();
  const auto result = EarliestArrival(g, kA, 0, 3);
  EXPECT_EQ(result.arrival[kD], 1);
  EXPECT_EQ(result.arrival[kE], 3);
  EXPECT_EQ(result.arrival[kB], kNoTimestamp);
  EXPECT_EQ(result.num_reachable, 2u);
}

TEST(LatestDepartureTest, FigureOneToC) {
  const InteractionGraph g = FigureOneGraph();
  const auto result = LatestDeparture(g, kC, 0, 100);
  EXPECT_EQ(result.departure[kC], 100);
  EXPECT_EQ(result.departure[kB], 8);  // b->c at 8
  EXPECT_EQ(result.departure[kE], 7);  // e->c at 7
  EXPECT_EQ(result.departure[kA], 5);  // a->b at 5, b->e... a->b(5),b->c(8)
  EXPECT_EQ(result.departure[kD], 3);  // d->e(3), e->c(7)
  EXPECT_EQ(result.departure[kF], kNoTimestamp);
  EXPECT_EQ(result.num_sources, 4u);
}

TEST(LatestDepartureTest, AgreesWithEarliestArrivalOnReachability) {
  // u can reach v (within [0, horizon]) iff u appears in v's latest-
  // departure set.
  const InteractionGraph g = GenerateUniformRandomNetwork(25, 200, 500, 3);
  const Timestamp horizon = 500;
  for (NodeId v = 0; v < 10; ++v) {
    const auto departures = LatestDeparture(g, v, 0, horizon);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == v) continue;
      const auto arrivals = EarliestArrival(g, u, 0, horizon);
      const bool reaches = arrivals.arrival[v] != kNoTimestamp;
      const bool listed = departures.departure[u] != kNoTimestamp;
      EXPECT_EQ(reaches, listed) << "u=" << u << " v=" << v;
    }
  }
}

TEST(FastestPathsTest, FigureOneFromA) {
  const InteractionGraph g = FigureOneGraph();
  const auto result = FastestPaths(g, kA);
  EXPECT_EQ(result.duration[kA], 0);
  EXPECT_EQ(result.duration[kD], 1);  // single edge
  EXPECT_EQ(result.duration[kB], 1);  // a->b at 5
  EXPECT_EQ(result.duration[kE], 2);  // a->b(5), b->e(6)
  EXPECT_EQ(result.duration[kC], 3);  // a->b(5), b->e(6), e->c(7)
  EXPECT_EQ(result.duration[kF], -1);
  EXPECT_EQ(result.num_reachable, 4u);
}

TEST(FastestPathsTest, MatchesIrsMembershipForEveryWindow) {
  // The defining correspondence: fastest duration(u -> v) <= omega iff
  // v in sigma_omega(u). Cross-validate the two independent algorithms.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const InteractionGraph g = GenerateUniformRandomNetwork(20, 150, 400, seed);
    std::vector<FastestPathResult> fastest;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      fastest.push_back(FastestPaths(g, u));
    }
    for (const Duration w : {1, 5, 30, 100, 400}) {
      const IrsExact irs = IrsExact::Compute(g, w);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (u == v) continue;
          const bool fast_in = fastest[u].duration[v] >= 0 &&
                               fastest[u].duration[v] <= w;
          const bool irs_in = irs.Summary(u).count(v) > 0;
          EXPECT_EQ(fast_in, irs_in)
              << "u=" << u << " v=" << v << " w=" << w << " seed=" << seed;
        }
      }
    }
  }
}

TEST(ShortestTemporalPathsTest, CountsHops) {
  const InteractionGraph g = FigureOneGraph();
  const auto result = ShortestTemporalPaths(g, kA, 0, 100);
  EXPECT_EQ(result.hops[kA], 0);
  EXPECT_EQ(result.hops[kD], 1);
  EXPECT_EQ(result.hops[kB], 1);  // direct a->b at 5
  EXPECT_EQ(result.hops[kE], 2);  // a->d->e
  EXPECT_EQ(result.hops[kC], 2);  // a->b(5), b->c(8)
  EXPECT_EQ(result.hops[kF], -1);
}

TEST(ShortestTemporalPathsTest, LaterCheaperPathIsFound) {
  // First reach of target is via 3 hops (times 1,2,3); a direct edge at
  // time 10 later gives 1 hop. Min hops must be 1.
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 2);
  g.AddInteraction(2, 3, 3);
  g.AddInteraction(0, 3, 10);
  const auto result = ShortestTemporalPaths(g, 0, 0, 100);
  EXPECT_EQ(result.hops[3], 1);
  EXPECT_EQ(result.hops[2], 2);
}

TEST(ShortestTemporalPathsTest, WindowRestrictsEdges) {
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 2);
  g.AddInteraction(0, 2, 50);
  const auto within = ShortestTemporalPaths(g, 0, 0, 10);
  EXPECT_EQ(within.hops[2], 2);
  const auto all = ShortestTemporalPaths(g, 0, 0, 100);
  EXPECT_EQ(all.hops[2], 1);
  const auto late = ShortestTemporalPaths(g, 0, 40, 100);
  EXPECT_EQ(late.hops[1], -1);
  EXPECT_EQ(late.hops[2], 1);
}

TEST(TemporalPathsTest, EmptyGraph) {
  const InteractionGraph g(3);
  EXPECT_EQ(EarliestArrival(g, 0, 0, 10).num_reachable, 0u);
  EXPECT_EQ(LatestDeparture(g, 0, 0, 10).num_sources, 0u);
  EXPECT_EQ(FastestPaths(g, 0).num_reachable, 0u);
  EXPECT_EQ(ShortestTemporalPaths(g, 0, 0, 10).num_reachable, 0u);
}

TEST(FastestPathsTest, SelfLoopIgnoredForSource) {
  InteractionGraph g(2);
  g.AddInteraction(0, 0, 1);
  const auto result = FastestPaths(g, 0);
  EXPECT_EQ(result.duration[0], 0);
  EXPECT_EQ(result.num_reachable, 0u);
}

TEST(EarliestArrivalTest, StrictTimeIncreaseEnforced) {
  // Two interactions with equal timestamps cannot chain.
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 5);
  g.AddInteraction(1, 2, 5);
  const auto result = EarliestArrival(g, 0, 0, 10);
  EXPECT_EQ(result.arrival[1], 5);
  EXPECT_EQ(result.arrival[2], kNoTimestamp);
}

}  // namespace
}  // namespace ipin
