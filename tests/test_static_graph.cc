#include "ipin/graph/static_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(StaticGraphTest, EmptyGraph) {
  const StaticGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(StaticGraphTest, FromEdgesDeduplicates) {
  const StaticGraph g =
      StaticGraph::FromEdges(3, {{0, 1}, {0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(StaticGraphTest, NeighborsAreSortedAscending) {
  const StaticGraph g =
      StaticGraph::FromEdges(5, {{0, 4}, {0, 1}, {0, 3}, {0, 2}});
  const auto nbrs = g.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(StaticGraphTest, HasEdge) {
  const StaticGraph g = StaticGraph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(StaticGraphTest, TransposeReversesEdges) {
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  const StaticGraph t = g.Transpose();
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(2, 0));
  EXPECT_TRUE(t.HasEdge(2, 1));
  EXPECT_FALSE(t.HasEdge(0, 1));
}

TEST(StaticGraphTest, DoubleTransposeIsIdentity) {
  const StaticGraph g =
      StaticGraph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 5}, {4, 4}});
  const StaticGraph tt = g.Transpose().Transpose();
  EXPECT_EQ(tt.num_edges(), g.num_edges());
  for (NodeId u = 0; u < 6; ++u) {
    const auto a = g.Neighbors(u);
    const auto b = tt.Neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(StaticGraphTest, FromInteractionsFlattens) {
  InteractionGraph ig;
  ig.AddInteraction(0, 1, 1);
  ig.AddInteraction(0, 1, 2);  // repeat collapses
  ig.AddInteraction(1, 2, 3);
  const StaticGraph g = StaticGraph::FromInteractions(ig);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(StaticGraphTest, FromInteractionsReversed) {
  InteractionGraph ig;
  ig.AddInteraction(0, 1, 1);
  const StaticGraph g =
      StaticGraph::FromInteractions(ig, /*reversed=*/true);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(StaticGraphTest, SelfLoopsKept) {
  const StaticGraph g = StaticGraph::FromEdges(2, {{0, 0}, {0, 1}});
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(WeightedStaticGraphTest, KeepsSmallestWeightPerEdge) {
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(
      3, {{0, 1, 5.0}, {0, 1, 2.0}, {0, 1, 9.0}, {1, 2, 1.0}});
  EXPECT_EQ(g.num_edges(), 2u);
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].target, 1u);
  EXPECT_DOUBLE_EQ(nbrs[0].weight, 2.0);
}

TEST(WeightedStaticGraphTest, DegreeAndSizes) {
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(
      4, {{0, 1, 1.0}, {0, 2, 1.0}, {3, 0, 4.0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  EXPECT_EQ(g.OutDegree(1), 0u);
}

TEST(StaticGraphTest, MemoryUsageNonZero) {
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}});
  EXPECT_GT(g.MemoryUsageBytes(), 0u);
}

}  // namespace
}  // namespace ipin
