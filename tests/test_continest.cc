#include "ipin/baselines/continest.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

ContinestOptions Options(double horizon, size_t samples = 16) {
  ContinestOptions options;
  options.time_horizon = horizon;
  options.num_samples = samples;
  return options;
}

TEST(BuildContinestGraphTest, WeightsAreTimeSinceFirstSend) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 10);  // first send of 0 at 10 -> weight 0
  g.AddInteraction(0, 2, 25);  // weight 15
  g.AddInteraction(1, 2, 30);  // first send of 1 at 30 -> weight 0
  const WeightedStaticGraph wg = BuildContinestGraph(g);
  EXPECT_EQ(wg.num_edges(), 3u);
  for (const auto& e : wg.Neighbors(0)) {
    if (e.target == 1) {
      EXPECT_DOUBLE_EQ(e.weight, 0.0);
    }
    if (e.target == 2) {
      EXPECT_DOUBLE_EQ(e.weight, 15.0);
    }
  }
  ASSERT_EQ(wg.Neighbors(1).size(), 1u);
  EXPECT_DOUBLE_EQ(wg.Neighbors(1)[0].weight, 0.0);
}

TEST(BuildContinestGraphTest, RepeatedEdgeKeepsSmallestWeight) {
  InteractionGraph g(2);
  g.AddInteraction(0, 1, 5);   // weight 0
  g.AddInteraction(0, 1, 50);  // weight 45, dropped
  const WeightedStaticGraph wg = BuildContinestGraph(g);
  ASSERT_EQ(wg.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(wg.Neighbors(0)[0].weight, 0.0);
}

TEST(ContinestTest, StarCenterSelectedFirst) {
  // Node 0 points to many leaves; with a generous horizon its ball is the
  // largest, so it must be the first seed.
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId v = 1; v <= 10; ++v) edges.emplace_back(0, v, 1.0);
  edges.emplace_back(11, 0, 1.0);
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(12, edges);
  const ContinestResult result = SelectSeedsContinest(g, 1, Options(50.0, 32));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_TRUE(result.seeds[0] == 0u || result.seeds[0] == 11u);
}

TEST(ContinestTest, InfluenceEstimateGrowsWithPicks) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId u = 0; u < 30; ++u) {
    edges.emplace_back(u, (u * 7 + 1) % 30, 1.0);
    edges.emplace_back(u, (u * 11 + 3) % 30, 2.0);
  }
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(30, edges);
  const ContinestResult result = SelectSeedsContinest(g, 6, Options(5.0));
  ASSERT_EQ(result.seeds.size(), 6u);
  for (size_t i = 1; i < result.influence_after_pick.size(); ++i) {
    EXPECT_GE(result.influence_after_pick[i],
              result.influence_after_pick[i - 1] - 1e-9);
  }
}

TEST(ContinestTest, DeterministicGivenSeed) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId u = 0; u < 25; ++u) edges.emplace_back(u, (u * 3 + 1) % 25, 1.0);
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(25, edges);
  const ContinestResult a = SelectSeedsContinest(g, 4, Options(3.0));
  const ContinestResult b = SelectSeedsContinest(g, 4, Options(3.0));
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(ContinestTest, SeedsAreDistinct) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId u = 0; u < 40; ++u) {
    edges.emplace_back(u, (u * 13 + 2) % 40, 1.0);
    edges.emplace_back(u, (u * 17 + 5) % 40, 3.0);
  }
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(40, edges);
  const ContinestResult result = SelectSeedsContinest(g, 8, Options(4.0));
  const std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), result.seeds.size());
}

TEST(ContinestTest, LargerHorizonGivesLargerInfluence) {
  // Longer diffusion time -> bigger balls -> higher top-1 influence.
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (NodeId u = 0; u + 1 < 50; ++u) edges.emplace_back(u, u + 1, 1.0);
  const WeightedStaticGraph g = WeightedStaticGraph::FromEdges(50, edges);
  const ContinestResult narrow = SelectSeedsContinest(g, 1, Options(1.0, 32));
  const ContinestResult wide = SelectSeedsContinest(g, 1, Options(30.0, 32));
  ASSERT_FALSE(narrow.influence_after_pick.empty());
  ASSERT_FALSE(wide.influence_after_pick.empty());
  EXPECT_GT(wide.influence_after_pick[0], narrow.influence_after_pick[0]);
}

TEST(ContinestTest, EmptyGraphAndZeroK) {
  EXPECT_TRUE(SelectSeedsContinest(WeightedStaticGraph(), 3, Options(5.0))
                  .seeds.empty());
  const WeightedStaticGraph g =
      WeightedStaticGraph::FromEdges(2, {{0, 1, 1.0}});
  EXPECT_TRUE(SelectSeedsContinest(g, 0, Options(5.0)).seeds.empty());
}

TEST(ContinestTest, InteractionOverloadRuns) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 200, 500, 15);
  const ContinestResult result =
      SelectSeedsContinest(g, 5, Options(5.0, 8));
  EXPECT_EQ(result.seeds.size(), 5u);
}

}  // namespace
}  // namespace ipin
