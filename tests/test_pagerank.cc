#include "ipin/baselines/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(PageRankTest, ScoresSumToOne) {
  const StaticGraph g =
      StaticGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 0}, {4, 2}});
  const auto scores = ComputePageRank(g);
  const double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  const StaticGraph g =
      StaticGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto scores = ComputePageRank(g);
  for (const double s : scores) EXPECT_NEAR(s, 0.25, 1e-6);
}

TEST(PageRankTest, StarCenterDominates) {
  // All leaves point to node 0.
  const StaticGraph g =
      StaticGraph::FromEdges(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto scores = ComputePageRank(g);
  for (NodeId u = 1; u < 5; ++u) EXPECT_GT(scores[0], scores[u]);
}

TEST(PageRankTest, DanglingNodesHandled) {
  // Node 1 has no out-edges; ranks must still sum to 1.
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}, {2, 1}});
  const auto scores = ComputePageRank(g);
  const double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(scores[1], scores[0]);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(ComputePageRank(StaticGraph()).empty());
}

TEST(TopKByScoreTest, OrdersDescendingWithIdTieBreak) {
  const std::vector<double> scores = {0.1, 0.5, 0.5, 0.9};
  const auto top = TopKByScore(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);  // tie with 2, smaller id first
  EXPECT_EQ(top[2], 2u);
}

TEST(TopKByScoreTest, KLargerThanN) {
  const std::vector<double> scores = {0.2, 0.8};
  EXPECT_EQ(TopKByScore(scores, 10).size(), 2u);
}

TEST(SelectSeedsPageRankTest, ReversesEdgesForOutgoingInfluence) {
  // In the interaction graph, node 0 sends to everyone (influencer);
  // standard PageRank would rank receivers highest, the seed selector must
  // rank node 0 highest.
  InteractionGraph g(5);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(0, 2, 2);
  g.AddInteraction(0, 3, 3);
  g.AddInteraction(0, 4, 4);
  const auto seeds = SelectSeedsPageRank(g, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(PageRankTest, ConvergesOnLargerRandomGraph) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 200; ++u) {
    edges.emplace_back(u, (u * 7 + 1) % 200);
    edges.emplace_back(u, (u * 13 + 5) % 200);
  }
  const StaticGraph g = StaticGraph::FromEdges(200, edges);
  const auto scores = ComputePageRank(g);
  const double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-4);
  for (const double s : scores) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace ipin
