#include "ipin/common/safe_io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"

namespace ipin {
namespace {

constexpr uint32_t kType = 0x54534554;  // "TEST"
constexpr uint32_t kOtherType = 0x52485430;

class SafeIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_safeio_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::remove(path_.c_str());
  }

  void WriteFrames(const std::vector<std::string>& payloads,
                   uint32_t version = 1) {
    SafeFileWriter writer(path_, kType, version);
    for (const auto& p : payloads) ASSERT_TRUE(writer.AppendFrame(p));
    ASSERT_TRUE(writer.Commit());
  }
  std::string ReadFileBytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void WriteFileBytes(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::string path_;
};

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: crc32c of 32 zero bytes.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // Standard check value: crc32c("123456789").
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32c(data);
  const uint32_t chained =
      Crc32c(data.substr(7), Crc32c(data.substr(0, 7)));
  EXPECT_EQ(whole, chained);
}

TEST_F(SafeIoTest, RoundtripMultipleFrames) {
  WriteFrames({"alpha", std::string(10000, 'x'), "", "omega"}, 7);
  SafeFileReader reader;
  ASSERT_EQ(reader.Open(path_, kType), SafeOpenStatus::kOk);
  EXPECT_EQ(reader.version(), 7u);
  std::string payload;
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "alpha");
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, std::string(10000, 'x'));
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "omega");
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kEndOfFile);
}

TEST_F(SafeIoTest, MissingFile) {
  SafeFileReader reader;
  EXPECT_EQ(reader.Open(path_ + ".nope", kType), SafeOpenStatus::kMissing);
}

TEST_F(SafeIoTest, WrongFileTypeRejected) {
  WriteFrames({"data"});
  SafeFileReader reader;
  EXPECT_EQ(reader.Open(path_, kOtherType), SafeOpenStatus::kCorrupt);
}

TEST_F(SafeIoTest, TruncatedHeaderDetected) {
  WriteFrames({"data"});
  WriteFileBytes(ReadFileBytes().substr(0, 10));
  SafeFileReader reader;
  EXPECT_EQ(reader.Open(path_, kType), SafeOpenStatus::kTruncated);
}

TEST_F(SafeIoTest, CorruptHeaderDetected) {
  WriteFrames({"data"});
  std::string bytes = ReadFileBytes();
  bytes[9] ^= 0xff;  // inside file_type
  WriteFileBytes(bytes);
  SafeFileReader reader;
  EXPECT_EQ(reader.Open(path_, kType), SafeOpenStatus::kCorrupt);
}

// Payload corruption is contained: the damaged frame reports kCorrupt and
// the reader continues with the following frames.
TEST_F(SafeIoTest, CorruptPayloadSkippedReaderContinues) {
  WriteFrames({"first", "second", "third"});
  std::string bytes = ReadFileBytes();
  // Header is 20 bytes, each frame header 12; flip a byte of "second"'s
  // payload: 20 + (12 + 5) + 12 = 49.
  bytes[49] ^= 0x01;
  WriteFileBytes(bytes);

  SafeFileReader reader;
  ASSERT_EQ(reader.Open(path_, kType), SafeOpenStatus::kOk);
  std::string payload;
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "first");
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kCorrupt);
  EXPECT_TRUE(reader.CanContinue());
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "third");
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kEndOfFile);
}

// A corrupted frame *header* cannot be trusted for resync: the reader stops.
TEST_F(SafeIoTest, CorruptFrameHeaderEndsFile) {
  WriteFrames({"first", "second", "third"});
  std::string bytes = ReadFileBytes();
  bytes[20 + 17 + 1] ^= 0xff;  // length field of the second frame header
  WriteFileBytes(bytes);

  SafeFileReader reader;
  ASSERT_EQ(reader.Open(path_, kType), SafeOpenStatus::kOk);
  std::string payload;
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kCorrupt);
  EXPECT_FALSE(reader.CanContinue());
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kEndOfFile);
}

TEST_F(SafeIoTest, TruncationMidFrameDetected) {
  WriteFrames({"first", "second"});
  const std::string bytes = ReadFileBytes();
  WriteFileBytes(bytes.substr(0, bytes.size() - 3));

  SafeFileReader reader;
  ASSERT_EQ(reader.Open(path_, kType), SafeOpenStatus::kOk);
  std::string payload;
  ASSERT_EQ(reader.ReadFrame(&payload), FrameStatus::kOk);
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kTruncated);
  EXPECT_FALSE(reader.CanContinue());
}

// Abandoning a writer (destruction without Commit) must leave the previous
// destination untouched and no temp litter.
TEST_F(SafeIoTest, AbandonedWriterLeavesDestinationIntact) {
  WriteFrames({"original"});
  const std::string before = ReadFileBytes();
  {
    SafeFileWriter writer(path_, kType, 1);
    ASSERT_TRUE(writer.AppendFrame("replacement"));
    // no Commit
  }
  EXPECT_EQ(ReadFileBytes(), before);
}

TEST_F(SafeIoTest, FailedCommitLeavesDestinationIntact) {
  WriteFrames({"original"});
  const std::string before = ReadFileBytes();
  ASSERT_TRUE(failpoint::Set("safe_io.rename", "error"));
  SafeFileWriter writer(path_, kType, 1);
  ASSERT_TRUE(writer.AppendFrame("replacement"));
  EXPECT_FALSE(writer.Commit());
  failpoint::ClearAll();
  EXPECT_EQ(ReadFileBytes(), before);
}

// The safe_io.write.short failpoint simulates a torn write: the file ends
// mid-frame and the reader reports truncation instead of garbage.
TEST_F(SafeIoTest, ShortWriteFailpointYieldsTruncatedFile) {
  {
    SafeFileWriter writer(path_, kType, 1);  // header written whole
    ASSERT_TRUE(failpoint::Set("safe_io.write.short", "short_write(6)"));
    ASSERT_TRUE(writer.AppendFrame("this payload will be cut"));
    failpoint::ClearAll();
    ASSERT_TRUE(writer.Commit());
  }

  SafeFileReader reader;
  ASSERT_EQ(reader.Open(path_, kType), SafeOpenStatus::kOk);
  std::string payload;
  EXPECT_EQ(reader.ReadFrame(&payload), FrameStatus::kTruncated);
}

TEST_F(SafeIoTest, WriteErrorFailpointFailsAppend) {
  ASSERT_TRUE(failpoint::Set("safe_io.write", "error"));
  SafeFileWriter writer(path_, kType, 1);
  EXPECT_FALSE(writer.AppendFrame("doomed"));
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.Commit());
}

TEST_F(SafeIoTest, LooksLikeSafeFileDetectsFormat) {
  WriteFrames({"x"});
  EXPECT_TRUE(LooksLikeSafeFile(path_));
  WriteFileBytes("IPINIDX1 something legacy");
  EXPECT_FALSE(LooksLikeSafeFile(path_));
  EXPECT_FALSE(LooksLikeSafeFile(path_ + ".absent"));
}

TEST_F(SafeIoTest, EmptyFileIsTruncated) {
  WriteFileBytes("");
  SafeFileReader reader;
  EXPECT_EQ(reader.Open(path_, kType), SafeOpenStatus::kTruncated);
}

}  // namespace
}  // namespace ipin
