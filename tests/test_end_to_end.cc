// Integration tests: run the full pipeline the paper's evaluation uses
// (dataset -> IRS -> oracle -> greedy seeds -> TCIC simulation) and check
// the qualitative relationships the paper reports.

#include <algorithm>

#include <gtest/gtest.h>

#include "ipin/baselines/degree.h"
#include "ipin/baselines/pagerank.h"
#include "ipin/baselines/skim.h"
#include "ipin/common/random.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/registry.h"
#include "ipin/eval/metrics.h"
#include "ipin/eval/spread_eval.h"

namespace ipin {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new InteractionGraph(LoadSyntheticDataset("slashdot", 0.01));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static InteractionGraph* graph_;
};

InteractionGraph* EndToEndTest::graph_ = nullptr;

TEST_F(EndToEndTest, PipelineProducesSeedsAndSpread) {
  const InteractionGraph& g = *graph_;
  const Duration window = g.WindowFromPercent(10.0);
  const IrsExact irs = IrsExact::Compute(g, window);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection selection = SelectSeedsCelf(oracle, 10);
  ASSERT_EQ(selection.seeds.size(), 10u);

  TcicOptions tcic;
  tcic.window = window;
  tcic.probability = 0.5;
  const double spread =
      AverageTcicSpread(g, selection.seeds, tcic, 20, 123);
  EXPECT_GT(spread, 10.0);  // seeds at least activate themselves + spread
}

TEST_F(EndToEndTest, IrsSeedsBeatRandomSeeds) {
  const InteractionGraph& g = *graph_;
  const Duration window = g.WindowFromPercent(10.0);
  const IrsExact irs = IrsExact::Compute(g, window);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection irs_seeds = SelectSeedsCelf(oracle, 10);

  Rng rng(55);
  std::vector<NodeId> random_seeds;
  for (const uint64_t x : rng.SampleWithoutReplacement(g.num_nodes(), 10)) {
    random_seeds.push_back(static_cast<NodeId>(x));
  }

  TcicOptions tcic;
  tcic.window = window;
  tcic.probability = 0.5;
  const double irs_spread =
      AverageTcicSpread(g, irs_seeds.seeds, tcic, 30, 7);
  const double random_spread =
      AverageTcicSpread(g, random_seeds, tcic, 30, 7);
  EXPECT_GT(irs_spread, random_spread);
}

TEST_F(EndToEndTest, ApproxSeedsCloseToExactSeeds) {
  const InteractionGraph& g = *graph_;
  const Duration window = g.WindowFromPercent(10.0);
  const IrsExact exact = IrsExact::Compute(g, window);
  IrsApproxOptions options;
  options.precision = 9;
  const IrsApprox approx = IrsApprox::Compute(g, window, options);

  const ExactInfluenceOracle exact_oracle(&exact);
  const SketchInfluenceOracle sketch_oracle(&approx);
  const SeedSelection exact_seeds = SelectSeedsCelf(exact_oracle, 10);
  const SeedSelection approx_seeds = SelectSeedsCelf(sketch_oracle, 10);

  TcicOptions tcic;
  tcic.window = window;
  tcic.probability = 0.5;
  const double spread_exact =
      AverageTcicSpread(g, exact_seeds.seeds, tcic, 30, 11);
  const double spread_approx =
      AverageTcicSpread(g, approx_seeds.seeds, tcic, 30, 11);
  // The sketch-driven seeds must achieve most of the exact seeds' spread.
  EXPECT_GT(spread_approx, 0.6 * spread_exact);
}

TEST_F(EndToEndTest, ExactIrsCoverageBeatsDegreeHeuristicCoverage) {
  // Under the IRS objective itself, greedy-IRS is optimal-ish by
  // construction and must dominate degree-based seed sets.
  const InteractionGraph& g = *graph_;
  const Duration window = g.WindowFromPercent(10.0);
  const IrsExact irs = IrsExact::Compute(g, window);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection irs_seeds = SelectSeedsCelf(oracle, 10);
  const std::vector<NodeId> hd = SelectSeedsHighDegree(g, 10);
  EXPECT_GE(oracle.InfluenceOfSet(irs_seeds.seeds),
            oracle.InfluenceOfSet(hd));
}

TEST_F(EndToEndTest, WindowChangesTopSeeds) {
  // Table 5's qualitative finding: small vs large windows select different
  // influencers.
  const InteractionGraph& g = *graph_;
  const IrsExact narrow = IrsExact::Compute(g, g.WindowFromPercent(1.0));
  const IrsExact wide = IrsExact::Compute(g, g.WindowFromPercent(20.0));
  const ExactInfluenceOracle narrow_oracle(&narrow);
  const ExactInfluenceOracle wide_oracle(&wide);
  const auto narrow_seeds = SelectSeedsCelf(narrow_oracle, 10).seeds;
  const auto wide_seeds = SelectSeedsCelf(wide_oracle, 10).seeds;
  EXPECT_LT(SeedOverlap(narrow_seeds, wide_seeds), 10u);
}

TEST_F(EndToEndTest, BaselinesProduceValidSeedSets) {
  const InteractionGraph& g = *graph_;
  const auto pr = SelectSeedsPageRank(g, 10);
  const auto hd = SelectSeedsHighDegree(g, 10);
  const auto shd = SelectSeedsSmartHighDegree(g, 10);
  SkimOptions skim_options;
  skim_options.probability = 0.5;
  skim_options.num_instances = 8;
  const auto skim = SelectSeedsSkim(g, 10, skim_options).seeds;
  for (const auto& seeds : {pr, hd, shd, skim}) {
    EXPECT_EQ(seeds.size(), 10u);
    for (const NodeId s : seeds) EXPECT_LT(s, g.num_nodes());
  }
}

}  // namespace
}  // namespace ipin
