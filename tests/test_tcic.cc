#include "ipin/core/tcic.h"

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TcicOptions Options(Duration window, double p) {
  TcicOptions options;
  options.window = window;
  options.probability = p;
  return options;
}

TEST(TcicTest, NoSeedsNoSpread) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(1);
  EXPECT_EQ(SimulateTcic(g, {}, Options(3, 1.0), &rng), 0u);
}

TEST(TcicTest, SeedWithoutOutgoingInteractionNeverActivates) {
  // Node f never appears as a source in Figure 1a.
  const InteractionGraph g = FigureOneGraph();
  Rng rng(1);
  const std::vector<NodeId> seeds = {kF};
  EXPECT_EQ(SimulateTcic(g, seeds, Options(3, 1.0), &rng), 0u);
}

TEST(TcicTest, ProbabilityZeroActivatesOnlySeeds) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(1);
  const std::vector<NodeId> seeds = {kA, kE};
  // Both a and e appear as sources, so both activate; nothing spreads.
  EXPECT_EQ(SimulateTcic(g, seeds, Options(3, 0.0), &rng), 2u);
}

TEST(TcicTest, FullProbabilityDeterministicCascade) {
  // Seed a in Figure 1a, window 3, p=1. a activates at t=1 (a->d).
  // Chain budget: interactions up to t = 1 + 3 = 4.
  //   (a,d,1): d infected (inherits 1).
  //   (d,e,3): 3-1 <= 3 -> e infected (inherits 1).
  //   (e,b,4): 4-1 <= 3 -> b infected (inherits 1).
  //   (a,b,5): 5-1 > 3 -> no; (b,e,6), (e,c,7), (b,c,8): > budget.
  // Active: {a, d, e, b} = 4.
  const InteractionGraph g = FigureOneGraph();
  Rng rng(7);
  const std::vector<NodeId> seeds = {kA};
  const TcicTrace trace = SimulateTcicTrace(g, seeds, Options(3, 1.0), &rng);
  EXPECT_EQ(trace.num_active, 4u);
  EXPECT_TRUE(trace.active[kA]);
  EXPECT_TRUE(trace.active[kB]);
  EXPECT_TRUE(trace.active[kD]);
  EXPECT_TRUE(trace.active[kE]);
  EXPECT_FALSE(trace.active[kC]);
  EXPECT_FALSE(trace.active[kF]);
  EXPECT_EQ(trace.activate_time[kA], 1);
  EXPECT_EQ(trace.activate_time[kE], 1);  // inherited chain start
}

TEST(TcicTest, WiderWindowSpreadsFurther) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(7);
  const std::vector<NodeId> seeds = {kA};
  // Window 7: budget through t=8; e->c(7) and b->c(8) now fire.
  const size_t spread = SimulateTcic(g, seeds, Options(7, 1.0), &rng);
  EXPECT_EQ(spread, 5u);  // a,b,c,d,e (f needs e active before t=2)
}

TEST(TcicTest, WindowZeroOnlyInfectsAtActivationInstant) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 5);
  g.AddInteraction(0, 2, 6);
  Rng rng(3);
  const std::vector<NodeId> seeds = {0};
  // Seed activates at t=5 and infects 1 (t - at == 0); t=6 is out of budget.
  EXPECT_EQ(SimulateTcic(g, seeds, Options(0, 1.0), &rng), 2u);
}

TEST(TcicTest, LaterSeedActivationRefreshesChain) {
  // Algorithm 1: a child inherits max(parent, own) activation time, so a
  // second seed with a later activation extends reach.
  InteractionGraph g(4);
  g.AddInteraction(0, 2, 1);   // seed 0 activates at 1, infects 2
  g.AddInteraction(1, 2, 10);  // seed 1 activates at 10, re-infects 2
  g.AddInteraction(2, 3, 12);  // within window of chain started at 10
  Rng rng(5);
  const std::vector<NodeId> both = {0, 1};
  EXPECT_EQ(SimulateTcic(g, both, Options(3, 1.0), &rng), 4u);
  const std::vector<NodeId> only_first = {0};
  // Chain from t=1 expires before t=12.
  EXPECT_EQ(SimulateTcic(g, only_first, Options(3, 1.0), &rng), 2u);
}

TEST(TcicTest, ProbabilityHalfSpreadBetweenExtremes) {
  SyntheticConfig config;
  config.num_nodes = 200;
  config.num_interactions = 3000;
  config.time_span = 5000;
  config.seed = 11;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  const Duration w = 1000;
  const double p0 = AverageTcicSpread(g, seeds, Options(w, 0.0), 10, 1);
  const double p50 = AverageTcicSpread(g, seeds, Options(w, 0.5), 10, 1);
  const double p100 = AverageTcicSpread(g, seeds, Options(w, 1.0), 10, 1);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p100);
}

TEST(TcicTest, AverageSpreadIsDeterministicGivenSeed) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 400, 1000, 2);
  const std::vector<NodeId> seeds = {0, 1};
  const double a = AverageTcicSpread(g, seeds, Options(200, 0.5), 20, 99);
  const double b = AverageTcicSpread(g, seeds, Options(200, 0.5), 20, 99);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(TcicTest, SpreadMonotoneInSeedSetOnAverage) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 1000, 2000, 4);
  const std::vector<NodeId> small = {0, 1, 2};
  const std::vector<NodeId> large = {0, 1, 2, 3, 4, 5, 6, 7};
  const double s = AverageTcicSpread(g, small, Options(400, 0.5), 30, 7);
  const double l = AverageTcicSpread(g, large, Options(400, 0.5), 30, 7);
  EXPECT_LE(s, l + 1.0);  // allow tiny Monte-Carlo noise
}

TEST(TcicTest, TraceCountsMatchActiveFlags) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 300, 800, 6);
  Rng rng(8);
  const std::vector<NodeId> seeds = {0, 5, 9};
  const TcicTrace trace = SimulateTcicTrace(g, seeds, Options(100, 0.7), &rng);
  size_t count = 0;
  for (size_t u = 0; u < trace.active.size(); ++u) {
    if (trace.active[u]) {
      ++count;
      EXPECT_NE(trace.activate_time[u], kNoTimestamp);
    }
  }
  EXPECT_EQ(count, trace.num_active);
}

}  // namespace
}  // namespace ipin
