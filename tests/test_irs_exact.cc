#include "ipin/core/irs_exact.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "ipin/core/information_channel.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(IrsExactTest, FigureOneMatchesPaperExampleTwo) {
  const InteractionGraph g = FigureOneGraph();
  const IrsExact irs = IrsExact::Compute(g, 3);
  const auto expected = FigureOneSummariesW3();
  for (NodeId u = 0; u < 6; ++u) {
    const auto& summary = irs.Summary(u);
    EXPECT_EQ(summary.size(), expected[u].size()) << "node " << u;
    for (const auto& [v, t] : expected[u]) {
      const auto it = summary.find(v);
      ASSERT_NE(it, summary.end()) << "node " << u << " missing " << v;
      EXPECT_EQ(it->second, t) << "lambda(" << u << "," << v << ")";
    }
  }
}

TEST(IrsExactTest, IntermediateStatesMatchPaperTrace) {
  // Example 2 shows the summary table after each reverse step; check the
  // first three steps: (b,c,8), (e,c,7), (b,e,6).
  IrsExact irs(6, 3);
  irs.ProcessInteraction({kB, kC, 8});
  EXPECT_EQ(irs.Summary(kB).at(kC), 8);
  EXPECT_EQ(irs.Summary(kB).size(), 1u);

  irs.ProcessInteraction({kE, kC, 7});
  EXPECT_EQ(irs.Summary(kE).at(kC), 7);

  irs.ProcessInteraction({kB, kE, 6});
  // (c,8) in phi(b) is improved to (c,7) via phi(e); (e,6) is added.
  EXPECT_EQ(irs.Summary(kB).at(kC), 7);
  EXPECT_EQ(irs.Summary(kB).at(kE), 6);
  EXPECT_EQ(irs.Summary(kB).size(), 2u);
}

TEST(IrsExactTest, MergeRespectsWindowBoundary) {
  // Example 2: while processing (a,b,5), (e,8)... the entry (e,6) of phi(b)
  // has duration 6-5+1 = 2 <= 3 so it IS taken; but at (a,d,1), (b,4) of
  // phi(d) has duration 4-1+1 = 4 > 3 and is skipped.
  const InteractionGraph g = FigureOneGraph();
  const IrsExact irs = IrsExact::Compute(g, 3);
  EXPECT_FALSE(irs.Summary(kA).count(kF));   // f never reachable within 3
  EXPECT_EQ(irs.Summary(kA).at(kB), 5);      // direct, not via d (dur 4)
}

struct RandomCase {
  size_t num_nodes;
  size_t num_interactions;
  Duration time_span;
  Duration window;
};

class IrsExactRandomTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(IrsExactRandomTest, MatchesBruteForce) {
  const RandomCase c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const InteractionGraph g = GenerateUniformRandomNetwork(
        c.num_nodes, c.num_interactions, c.time_span, seed);
    const IrsExact irs = IrsExact::Compute(g, c.window);
    const auto brute = BruteForceAllIrsSummaries(g, c.window);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto& fast = irs.Summary(u);
      ASSERT_EQ(fast.size(), brute[u].size())
          << "node " << u << " seed " << seed;
      for (const auto& [v, t] : brute[u]) {
        const auto it = fast.find(v);
        ASSERT_NE(it, fast.end()) << "node " << u << " missing " << v;
        EXPECT_EQ(it->second, t)
            << "lambda(" << u << "," << v << ") seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IrsExactRandomTest,
    ::testing::Values(RandomCase{8, 30, 50, 5}, RandomCase{8, 30, 50, 25},
                      RandomCase{15, 80, 200, 20}, RandomCase{15, 80, 200, 200},
                      RandomCase{25, 150, 400, 40},
                      RandomCase{25, 150, 150, 1},
                      RandomCase{40, 200, 1000, 100},
                      RandomCase{10, 120, 60, 10},
                      RandomCase{30, 60, 2000, 500},
                      RandomCase{50, 250, 250, 3},
                      RandomCase{6, 100, 100, 50}));

TEST(IrsExactTest, IrsSizeMonotoneInWindow) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 200, 500, 9);
  std::vector<size_t> prev(30, 0);
  for (const Duration w : {1, 5, 20, 100, 500}) {
    const IrsExact irs = IrsExact::Compute(g, w);
    for (NodeId u = 0; u < 30; ++u) {
      EXPECT_GE(irs.IrsSize(u), prev[u]) << "node " << u << " window " << w;
      prev[u] = irs.IrsSize(u);
    }
  }
}

TEST(IrsExactTest, UnionSizeMatchesManualUnion) {
  const InteractionGraph g = GenerateUniformRandomNetwork(20, 120, 300, 4);
  const IrsExact irs = IrsExact::Compute(g, 50);
  const std::vector<NodeId> seeds = {0, 3, 7, 12};
  std::set<NodeId> manual;
  for (const NodeId s : seeds) {
    const auto set = irs.IrsSet(s);
    manual.insert(set.begin(), set.end());
  }
  EXPECT_EQ(irs.UnionSize(seeds), manual.size());
}

TEST(IrsExactTest, UnionOfAllSeedsBoundedByN) {
  const InteractionGraph g = GenerateUniformRandomNetwork(15, 100, 200, 5);
  const IrsExact irs = IrsExact::Compute(g, 100);
  std::vector<NodeId> all(15);
  for (NodeId u = 0; u < 15; ++u) all[u] = u;
  EXPECT_LE(irs.UnionSize(all), 15u);
}

TEST(IrsExactTest, IrsSetIsSortedAndDeduplicated) {
  const InteractionGraph g = GenerateUniformRandomNetwork(20, 100, 300, 6);
  const IrsExact irs = IrsExact::Compute(g, 100);
  for (NodeId u = 0; u < 20; ++u) {
    const auto set = irs.IrsSet(u);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
    EXPECT_EQ(set.size(), irs.IrsSize(u));
  }
}

TEST(IrsExactTest, EmptyGraph) {
  const InteractionGraph g(4);
  const IrsExact irs = IrsExact::Compute(g, 10);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(irs.IrsSize(u), 0u);
  EXPECT_EQ(irs.TotalSummaryEntries(), 0u);
}

TEST(IrsExactTest, SelfLoopContributesNothing) {
  InteractionGraph g(3);
  g.AddInteraction(1, 1, 5);
  const IrsExact irs = IrsExact::Compute(g, 10);
  EXPECT_EQ(irs.IrsSize(0), 0u);
  EXPECT_EQ(irs.IrsSize(1), 0u);  // self is never part of sigma(u)
}

TEST(IrsExactTest, TemporalCycleAllowsTransitThroughSource) {
  // 1 -> 0 -> 2 is a valid channel for node 1 even though 0 also cycles
  // back to itself through 1.
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 0, 2);
  g.AddInteraction(0, 2, 3);
  const IrsExact irs = IrsExact::Compute(g, 5);
  EXPECT_FALSE(irs.Summary(0).count(0));
  EXPECT_TRUE(irs.Summary(1).count(2));
  EXPECT_TRUE(irs.Summary(0).count(2));
}

TEST(IrsExactTest, DuplicateTimestampsHandledByScanOrder) {
  // Ties are legal input; the algorithm resolves them by scan order (a path
  // needs strictly increasing times in the brute force; the reverse scan
  // with t_x - t < window on equal times gives t_x - t = 0 < window, so
  // equal-time entries CAN merge — matching a "non-strict at merge"
  // interpretation. We only verify no crash and sane output here; the
  // distinct-timestamp contract is the documented assumption.
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 5);
  g.AddInteraction(1, 2, 5);
  const IrsExact irs = IrsExact::Compute(g, 10);
  EXPECT_GE(irs.IrsSize(0), 1u);
  EXPECT_TRUE(irs.Summary(0).count(1));
}

TEST(IrsExactTest, WindowCoveringWholeSpanEqualsUnconstrainedReachability) {
  const InteractionGraph g = FigureOneGraph();
  const IrsExact irs = IrsExact::Compute(g, 1000);
  // With an unconstrained window, a reaches b, c, d, e (never f).
  EXPECT_EQ(irs.IrsSize(kA), 4u);
  EXPECT_FALSE(irs.Summary(kA).count(kF));
}

TEST(IrsExactTest, TotalSummaryEntriesAndMemory) {
  const InteractionGraph g = FigureOneGraph();
  const IrsExact irs = IrsExact::Compute(g, 3);
  EXPECT_EQ(irs.TotalSummaryEntries(), 4u + 2u + 0u + 2u + 3u + 0u);
  EXPECT_GT(irs.MemoryUsageBytes(), 0u);
}

TEST(IrsExactDeathTest, RejectsOutOfOrderInteractions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IrsExact irs(3, 5);
  irs.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(irs.ProcessInteraction({1, 2, 20}), "CHECK failed");
}

}  // namespace
}  // namespace ipin
