#include "ipin/sketch/vhll.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/random.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/hll.h"

namespace ipin {
namespace {

// Reference model: remembers every (cell, rank, time) triple ever inserted
// and answers per-cell max-rank queries exactly. The vHLL with domination
// pruning must agree with this model for EVERY time bound — that is the
// losslessness property the paper's pruning rule guarantees.
class VhllModel {
 public:
  explicit VhllModel(size_t num_cells) : cells_(num_cells) {}

  void Add(size_t cell, uint8_t rank, Timestamp t) {
    cells_[cell].push_back({rank, t});
  }

  uint8_t MaxRankBefore(size_t cell, Timestamp bound) const {
    uint8_t best = 0;
    for (const auto& [rank, t] : cells_[cell]) {
      if (t < bound && rank > best) best = rank;
    }
    return best;
  }

  uint8_t MaxRank(size_t cell) const {
    uint8_t best = 0;
    for (const auto& [rank, t] : cells_[cell]) {
      (void)t;
      if (rank > best) best = rank;
    }
    return best;
  }

  size_t num_cells() const { return cells_.size(); }

 private:
  struct Pair {
    uint8_t rank;
    Timestamp t;
  };
  std::vector<std::vector<Pair>> cells_;
};

void ExpectAgreesWithModel(const VersionedHll& vhll, const VhllModel& model,
                           std::vector<Timestamp> bounds) {
  for (size_t c = 0; c < model.num_cells(); ++c) {
    const auto& list = vhll.cell(c);
    const uint8_t max_rank = list.empty() ? 0 : list.back().rank;
    EXPECT_EQ(max_rank, model.MaxRank(c)) << "cell " << c;
    for (const Timestamp bound : bounds) {
      uint8_t got = 0;
      for (const auto& e : list) {
        if (e.time >= bound) break;
        got = std::max(got, e.rank);
      }
      EXPECT_EQ(got, model.MaxRankBefore(c, bound))
          << "cell " << c << " bound " << bound;
    }
  }
}

TEST(VhllTest, EmptySketch) {
  const VersionedHll vhll(6);
  EXPECT_DOUBLE_EQ(vhll.Estimate(), 0.0);
  EXPECT_EQ(vhll.NumEntries(), 0u);
  EXPECT_TRUE(vhll.CheckInvariants());
}

TEST(VhllTest, PaperExample3Evolution) {
  // Section 3.2.2, Example 3: items with fixed (cell iota, rank rho) arrive
  // in reverse time order. We drive AddEntry directly with the paper's
  // values and check each intermediate sketch state. Cells are 0..3.
  VersionedHll vhll(4);  // 16 cells; we only use 0..3
  const auto cell_is = [&vhll](size_t c,
                               std::vector<std::pair<int, Timestamp>> want) {
    const auto& list = vhll.cell(c);
    ASSERT_EQ(list.size(), want.size());
    // The paper prints lists newest-first; our storage is ascending time.
    std::sort(want.begin(), want.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(static_cast<int>(list[i].rank), want[i].first);
      EXPECT_EQ(list[i].time, want[i].second);
    }
  };

  vhll.AddEntry(1, 3, 6);  // (a, t6)
  cell_is(1, {{3, 6}});
  vhll.AddEntry(3, 1, 5);  // (b, t5)
  cell_is(3, {{1, 5}});
  vhll.AddEntry(1, 3, 4);  // (a, t4): same rank, earlier time replaces
  cell_is(1, {{3, 4}});
  vhll.AddEntry(3, 2, 3);  // (c, t3): dominates (1, t5)
  cell_is(3, {{2, 3}});
  vhll.AddEntry(2, 2, 2);  // (d, t2)
  cell_is(2, {{2, 2}});
  vhll.AddEntry(2, 1, 1);  // (e, t1): kept alongside (2, t2)
  cell_is(2, {{2, 2}, {1, 1}});
  EXPECT_TRUE(vhll.CheckInvariants());
}

TEST(VhllTest, DominatedEntryIgnored) {
  VersionedHll vhll(4);
  vhll.AddEntry(0, 5, 10);
  vhll.AddEntry(0, 3, 20);  // (5,10) dominates: earlier and higher rank
  EXPECT_EQ(vhll.cell(0).size(), 1u);
  EXPECT_EQ(vhll.cell(0)[0].rank, 5);
}

TEST(VhllTest, NewEntryRemovesDominatedRun) {
  VersionedHll vhll(4);
  vhll.AddEntry(0, 1, 10);
  vhll.AddEntry(0, 2, 20);
  vhll.AddEntry(0, 3, 30);
  ASSERT_EQ(vhll.cell(0).size(), 3u);
  vhll.AddEntry(0, 2, 5);  // dominates (1,10) and (2,20) but not (3,30)
  ASSERT_EQ(vhll.cell(0).size(), 2u);
  EXPECT_EQ(vhll.cell(0)[0].rank, 2);
  EXPECT_EQ(vhll.cell(0)[0].time, 5);
  EXPECT_EQ(vhll.cell(0)[1].rank, 3);
  EXPECT_TRUE(vhll.CheckInvariants());
}

TEST(VhllTest, EqualTimestampKeepsOnlyMaxRank) {
  VersionedHll vhll(4);
  vhll.AddEntry(0, 2, 10);
  vhll.AddEntry(0, 4, 10);  // same time, higher rank dominates
  ASSERT_EQ(vhll.cell(0).size(), 1u);
  EXPECT_EQ(vhll.cell(0)[0].rank, 4);
  vhll.AddEntry(0, 3, 10);  // dominated by (4, 10)
  ASSERT_EQ(vhll.cell(0).size(), 1u);
  EXPECT_TRUE(vhll.CheckInvariants());
}

TEST(VhllTest, RandomOperationsAgreeWithModelForEveryBound) {
  // Property test: arbitrary (cell, rank, time) insertion order (as produced
  // by merges) must preserve per-cell max rank for every time bound.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    VersionedHll vhll(4);
    VhllModel model(16);
    std::vector<Timestamp> bounds = {0, 1, 5, 10, 25, 50, 100, 1000};
    for (int op = 0; op < 300; ++op) {
      const size_t cell = rng.NextBounded(16);
      const uint8_t rank = static_cast<uint8_t>(1 + rng.NextBounded(20));
      const Timestamp t = static_cast<Timestamp>(rng.NextBounded(100));
      vhll.AddEntry(cell, rank, t);
      model.Add(cell, rank, t);
    }
    ASSERT_TRUE(vhll.CheckInvariants());
    ExpectAgreesWithModel(vhll, model, bounds);
  }
}

TEST(VhllTest, EstimateMatchesPlainHllOnSameItems) {
  // With timestamps ignored, vHLL's overall estimate must equal the classic
  // HLL built from the same items (same precision and salt).
  HyperLogLog hll(8, 5);
  VersionedHll vhll(8, 5);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t item = rng.NextBounded(2000);
    const Timestamp t = static_cast<Timestamp>(rng.NextBounded(1000));
    hll.Add(item);
    vhll.Add(item, t);
  }
  EXPECT_DOUBLE_EQ(vhll.Estimate(), hll.Estimate());
}

TEST(VhllTest, EstimateBeforeCountsOnlyEarlyItems) {
  VersionedHll vhll(10);
  // 1000 items at time 10, 1000 different items at time 1000.
  for (uint64_t i = 0; i < 1000; ++i) vhll.Add(i, 10);
  for (uint64_t i = 10000; i < 11000; ++i) vhll.Add(i, 1000);
  const double early = vhll.EstimateBefore(500);
  const double all = vhll.Estimate();
  EXPECT_NEAR(early, 1000.0, 150.0);
  EXPECT_NEAR(all, 2000.0, 300.0);
}

TEST(VhllTest, MergeWindowRespectsBound) {
  VersionedHll source(8);
  for (uint64_t i = 0; i < 500; ++i) source.Add(i, 100);        // in window
  for (uint64_t i = 1000; i < 1500; ++i) source.Add(i, 900);    // outside
  VersionedHll target(8);
  // merge_time 50, window 100 -> keep entries with t < 150.
  target.MergeWindow(source, 50, 100);
  EXPECT_NEAR(target.Estimate(), 500.0, 120.0);
  EXPECT_TRUE(target.CheckInvariants());
}

TEST(VhllTest, MergeAllTakesEverything) {
  VersionedHll a(8);
  VersionedHll b(8);
  for (uint64_t i = 0; i < 800; ++i) a.Add(i, 1);
  for (uint64_t i = 400; i < 1200; ++i) b.Add(i, 2);
  a.MergeAll(b);
  EXPECT_NEAR(a.Estimate(), 1200.0, 200.0);
  EXPECT_TRUE(a.CheckInvariants());
}

TEST(VhllTest, MergePreservesPerBoundMaxRanks) {
  // Merged sketch must agree with a model containing the union of entries.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    VersionedHll a(4);
    VersionedHll b(4);
    VhllModel model(16);
    for (int op = 0; op < 150; ++op) {
      const size_t cell = rng.NextBounded(16);
      const uint8_t rank = static_cast<uint8_t>(1 + rng.NextBounded(15));
      const Timestamp t = static_cast<Timestamp>(rng.NextBounded(80));
      if (op % 2 == 0) {
        a.AddEntry(cell, rank, t);
      } else {
        b.AddEntry(cell, rank, t);
      }
      model.Add(cell, rank, t);
    }
    a.MergeAll(b);
    ASSERT_TRUE(a.CheckInvariants());
    ExpectAgreesWithModel(a, model, {0, 10, 20, 40, 79, 80, 200});
  }
}

TEST(VhllTest, CompactExpiredKeepsWindowedQueriesIntact) {
  VersionedHll vhll(8);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    vhll.Add(rng.NextBounded(5000), static_cast<Timestamp>(rng.NextBounded(1000)));
  }
  const Timestamp frontier = 200;
  const Duration window = 300;
  const double before = vhll.EstimateBefore(frontier + window);
  const size_t entries_before = vhll.NumEntries();
  vhll.CompactExpired(frontier, window);
  EXPECT_LT(vhll.NumEntries(), entries_before);
  EXPECT_DOUBLE_EQ(vhll.EstimateBefore(frontier + window), before);
  EXPECT_TRUE(vhll.CheckInvariants());
}

TEST(VhllTest, CellListsStayLogarithmic) {
  // Lemma 4: expected undominated pairs per cell is O(log inserts). Insert
  // many items in reverse time order and check the max list length is far
  // below the insert count.
  VersionedHll vhll(4);
  Rng rng(21);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(n - i));
  }
  size_t max_len = 0;
  for (size_t c = 0; c < vhll.num_cells(); ++c) {
    max_len = std::max(max_len, vhll.cell(c).size());
  }
  // ~ln(20000/16 per cell) ~ 7.1 expected; allow generous slack.
  EXPECT_LE(max_len, 40u);
}

TEST(VhllTest, ClearResets) {
  VersionedHll vhll(6);
  vhll.Add(1, 1);
  vhll.Add(2, 2);
  vhll.Clear();
  EXPECT_EQ(vhll.NumEntries(), 0u);
  EXPECT_DOUBLE_EQ(vhll.Estimate(), 0.0);
}

TEST(VhllTest, MemoryGrowsWithEntries) {
  VersionedHll vhll(6);
  const size_t empty_bytes = vhll.MemoryUsageBytes();
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(i));
  }
  EXPECT_GT(vhll.MemoryUsageBytes(), empty_bytes);
}


TEST(VhllTest, MergeWithFloorClampsTimestamps) {
  VersionedHll source(4);
  source.AddEntry(0, 3, 10);
  source.AddEntry(1, 2, 50);
  source.AddEntry(2, 4, 90);
  VersionedHll target(4);
  // floor 40, bound 80: entry (0,3,10) clamps to time 40; (1,2,50) stays;
  // (2,4,90) is filtered by the bound.
  EXPECT_TRUE(target.MergeWithFloor(source, 40, 80));
  ASSERT_EQ(target.cell(0).size(), 1u);
  EXPECT_EQ(target.cell(0)[0].time, 40);
  EXPECT_EQ(target.cell(0)[0].rank, 3);
  ASSERT_EQ(target.cell(1).size(), 1u);
  EXPECT_EQ(target.cell(1)[0].time, 50);
  EXPECT_TRUE(target.cell(2).empty());
  EXPECT_TRUE(target.CheckInvariants());
}

TEST(VhllTest, MergeWithFloorReportsNoChangeWhenDominated) {
  VersionedHll source(4);
  source.AddEntry(0, 2, 30);
  VersionedHll target(4);
  target.AddEntry(0, 5, 10);  // dominates anything with rank <= 5, t >= 10
  EXPECT_FALSE(target.MergeWithFloor(source, 20, 100));
  EXPECT_EQ(target.NumEntries(), 1u);
}

TEST(VhllTest, MergeWithFloorPreservesInvariantsUnderFuzz) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    VersionedHll a(4);
    VersionedHll b(4);
    for (int i = 0; i < 150; ++i) {
      a.AddEntry(rng.NextBounded(16), static_cast<uint8_t>(1 + rng.NextBounded(12)),
                 static_cast<Timestamp>(rng.NextBounded(200)));
      b.AddEntry(rng.NextBounded(16), static_cast<uint8_t>(1 + rng.NextBounded(12)),
                 static_cast<Timestamp>(rng.NextBounded(200)));
    }
    const Timestamp floor = static_cast<Timestamp>(rng.NextBounded(100));
    const Timestamp bound = floor + static_cast<Timestamp>(rng.NextBounded(150));
    a.MergeWithFloor(b, floor, bound);
    EXPECT_TRUE(a.CheckInvariants()) << "trial " << trial;
  }
}

TEST(VhllTest, AddReturnsWhetherSketchChanged) {
  VersionedHll vhll(6);
  EXPECT_TRUE(vhll.Add(42, 10));
  EXPECT_FALSE(vhll.Add(42, 10));  // identical insert is a no-op
  EXPECT_TRUE(vhll.Add(42, 5));    // earlier sighting improves the entry
}

class VhllAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(VhllAccuracyTest, EstimateWithinTolerance) {
  const int precision = GetParam();
  VersionedHll vhll(precision);
  const double n = 20000.0;
  Rng rng(precision);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
    vhll.Add(i, static_cast<Timestamp>(rng.NextBounded(500)));
  }
  const double err = std::abs(vhll.Estimate() - n) / n;
  EXPECT_LT(err, 4.0 * HllStandardError(vhll.num_cells()));
}

INSTANTIATE_TEST_SUITE_P(Precisions, VhllAccuracyTest,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace ipin
