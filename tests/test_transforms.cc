#include "ipin/graph/transforms.h"

#include <gtest/gtest.h>

#include "ipin/core/irs_exact.h"
#include "ipin/core/source_sets.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(TimeSliceTest, KeepsOnlyRange) {
  const InteractionGraph g = FigureOneGraph();
  const InteractionGraph sliced = TimeSlice(g, 3, 6);
  EXPECT_EQ(sliced.num_interactions(), 4u);  // times 3,4,5,6
  for (const Interaction& e : sliced.interactions()) {
    EXPECT_GE(e.time, 3);
    EXPECT_LE(e.time, 6);
  }
  EXPECT_EQ(sliced.num_nodes(), g.num_nodes());
}

TEST(TimeSliceTest, EmptyRange) {
  const InteractionGraph g = FigureOneGraph();
  EXPECT_TRUE(TimeSlice(g, 100, 200).empty());
}

TEST(SampleInteractionsTest, ExtremesAndExpectation) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 2000, 5000, 1);
  Rng rng(2);
  EXPECT_EQ(SampleInteractions(g, 1.0, &rng).num_interactions(), 2000u);
  EXPECT_EQ(SampleInteractions(g, 0.0, &rng).num_interactions(), 0u);
  const size_t half = SampleInteractions(g, 0.5, &rng).num_interactions();
  EXPECT_NEAR(static_cast<double>(half), 1000.0, 100.0);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  const InteractionGraph g = FigureOneGraph();
  // Keep {a, b, d, e}: drops e->f(2), e->c(7), b->c(8).
  const InteractionGraph sub = InducedSubgraph(g, {kA, kB, kD, kE});
  EXPECT_EQ(sub.num_interactions(), 5u);
  for (const Interaction& e : sub.interactions()) {
    EXPECT_NE(e.src, kC);
    EXPECT_NE(e.dst, kC);
    EXPECT_NE(e.dst, kF);
  }
}

TEST(RelabelDenseTest, CompactsIdSpace) {
  InteractionGraph g(100);
  g.AddInteraction(90, 10, 1);
  g.AddInteraction(10, 50, 2);
  std::vector<NodeId> old_to_new;
  const InteractionGraph dense = RelabelDense(g, &old_to_new);
  EXPECT_EQ(dense.num_nodes(), 3u);
  EXPECT_EQ(old_to_new[90], 0u);
  EXPECT_EQ(old_to_new[10], 1u);
  EXPECT_EQ(old_to_new[50], 2u);
  EXPECT_EQ(old_to_new[5], kInvalidNode);
  EXPECT_EQ(dense.interaction(0).src, 0u);
  EXPECT_EQ(dense.interaction(1).dst, 2u);
}

TEST(MergeNetworksTest, ConcatenatesAndResorts) {
  InteractionGraph a(3);
  a.AddInteraction(0, 1, 5);
  InteractionGraph b(5);
  b.AddInteraction(3, 4, 2);
  const InteractionGraph merged = MergeNetworks(a, b);
  EXPECT_EQ(merged.num_nodes(), 5u);
  EXPECT_EQ(merged.num_interactions(), 2u);
  EXPECT_EQ(merged.interaction(0).time, 2);
  EXPECT_TRUE(merged.is_sorted());
}

TEST(ReverseDirectionsTest, FlipsEndpoints) {
  const InteractionGraph g = FigureOneGraph();
  const InteractionGraph rev = ReverseDirections(g);
  EXPECT_EQ(rev.interaction(0).src, kD);
  EXPECT_EQ(rev.interaction(0).dst, kA);
  EXPECT_EQ(rev.interaction(0).time, 1);
}

TEST(TemporalTransposeTest, SigmaOfTransposeEqualsTauOfOriginal) {
  // The defining identity: reachability sets of the temporal transpose are
  // the source sets of the original, for every window.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const InteractionGraph g =
        GenerateUniformRandomNetwork(20, 150, 400, seed);
    const InteractionGraph t = TemporalTranspose(g);
    for (const Duration w : {1, 10, 60, 400}) {
      const SourceSetExact sources = SourceSetExact::Compute(g, w);
      const IrsExact irs = IrsExact::Compute(t, w);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(irs.IrsSize(v), sources.SourceSetSize(v))
            << "v=" << v << " w=" << w << " seed=" << seed;
      }
    }
  }
}

TEST(TemporalTransposeTest, IsAnInvolution) {
  const InteractionGraph g = FigureOneGraph();
  const InteractionGraph twice = TemporalTranspose(TemporalTranspose(g));
  ASSERT_EQ(twice.num_interactions(), g.num_interactions());
  for (size_t i = 0; i < g.num_interactions(); ++i) {
    EXPECT_EQ(twice.interaction(i), g.interaction(i));
  }
}

TEST(TransformsTest, EmptyGraphsSurvive) {
  const InteractionGraph g(4);
  Rng rng(1);
  EXPECT_TRUE(TimeSlice(g, 0, 10).empty());
  EXPECT_TRUE(SampleInteractions(g, 0.5, &rng).empty());
  EXPECT_TRUE(InducedSubgraph(g, {0, 1}).empty());
  EXPECT_TRUE(TemporalTranspose(g).empty());
  EXPECT_EQ(RelabelDense(g, nullptr).num_nodes(), 0u);
}

}  // namespace
}  // namespace ipin
