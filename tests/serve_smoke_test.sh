#!/usr/bin/env bash
# Fault drill for the oracle serving layer, end to end through the real
# binaries: ipin_cli builds an index, ipin_oracled serves it, and the
# retrying ipin_oracle_client drives it. The drill asserts the four
# robustness guarantees of the serving layer:
#   (a) under overload the server sheds (OVERLOADED + retry hint) instead
#       of growing the queue without bound,
#   (b) when exact evaluation is too slow it degrades to sketch answers
#       within the deadline (degraded=true), and hopeless deadlines get
#       DEADLINE_EXCEEDED instead of a late answer,
#   (c) a corrupted index file rolls back on reload — the old epoch keeps
#       serving, zero crashes — and recovers once the file is fixed,
#   (d) SIGTERM drains in-flight work and exits 0; SIGKILL mid-reload
#       leaves the on-disk index intact for the next start.
#
# A fifth phase drills the observability surface: wire-propagated trace
# context (explicit trace ids echoed and recorded), the "metrics" and
# "debug" verbs, the slow-query flight recorder (a failpoint-delayed query
# must show up with per-stage timings), the SIGUSR1 dump, and — in
# obs-enabled builds — the Chrome trace written by --trace_out, which must
# contain the request's async span lane.
#
# Invoked by ctest: $1=ipin_cli $2=ipin_oracled $3=ipin_oracle_client
# $4=obs mode ("obs-enabled"/"obs-disabled"; metric assertions only hold in
# obs-enabled builds). Optional: $5=ipin_top (dashboard smoke),
# $6=artifact dir (falls back to $IPIN_SMOKE_ARTIFACTS; the Chrome trace
# and flight-recorder dump are copied there for CI upload).
set -euo pipefail

CLI="$1"
DAEMON="$2"
CLIENT="$3"
OBS_MODE="${4:-obs-enabled}"
IPIN_TOP="${5:-}"
ARTIFACTS="${6:-${IPIN_SMOKE_ARTIFACTS:-}}"
WORK="$(mktemp -d)"
SOCK="${WORK}/ipin.sock"
# Phases 2-5 bind --port=0 (kernel-assigned) and publish the endpoint via
# --port_file: nothing in this script names a fixed TCP port, so parallel
# ctest runs cannot collide. wait_ready reads the file back pid-matched.
PORT_FILE="${WORK}/daemon.port"
PORT=""
DAEMON_PID=""

PIDFILE_DIR="${WORK}/pids"
mkdir -p "${PIDFILE_DIR}"

# Every daemon start drops a PID file; cleanup kills them ALL. Tracking only
# the "current" daemon leaks the previous phase's process when a later phase
# fails between stop_daemon and the next start, and leaves the backgrounded
# reload client of phase 4 running. ctest then hangs on the orphan holding
# the log pipe open.
register_daemon() {
  DAEMON_PID=$!
  echo "${DAEMON_PID}" > "${PIDFILE_DIR}/daemon.${DAEMON_PID}.pid"
}

cleanup() {
  local pidfile pid
  for pidfile in "${PIDFILE_DIR}"/*.pid; do
    [ -e "${pidfile}" ] || continue
    pid="$(cat "${pidfile}")"
    kill -KILL "${pid}" 2>/dev/null || true
  done
  # Stray background jobs (e.g. the phase-4 reload client).
  local job
  for job in $(jobs -p); do kill -KILL "${job}" 2>/dev/null || true; done
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "serve smoke FAILED: $*" >&2; exit 1; }

# Waits for the daemon's port file to report the freshly started pid ($1 is
# the log file, for diagnostics). The daemon writes the file only once its
# socket is accepting, and matching the pid defeats stale files left by a
# previous incarnation. Exports PORT (the bound TCP port, or -1 for a
# unix-socket daemon).
wait_ready() {
  PORT=""
  for _ in $(seq 1 150); do
    if [ -f "${PORT_FILE}" ] \
        && grep -q "pid=${DAEMON_PID} " "${PORT_FILE}"; then
      PORT="$(sed -n 's/.*port=\(-\{0,1\}[0-9]*\).*/\1/p' "${PORT_FILE}")"
      return 0
    fi
    if [ -n "${DAEMON_PID}" ] && ! kill -0 "${DAEMON_PID}" 2>/dev/null; then
      cat "$1" >&2
      fail "daemon died before becoming ready"
    fi
    sleep 0.1
  done
  cat "$1" >&2
  fail "daemon did not publish its port file"
}

# SIGTERMs the daemon and asserts a clean drain (exit 0 + drain line).
stop_daemon() {
  local log="$1"
  kill -TERM "${DAEMON_PID}"
  local rc=0
  wait "${DAEMON_PID}" || rc=$?
  DAEMON_PID=""
  [ "${rc}" -eq 0 ] || { cat "${log}" >&2; fail "drain exited ${rc}"; }
  grep -q "ipin_oracled: drained, exiting" "${log}" \
    || { cat "${log}" >&2; fail "missing drain line"; }
}

# Extracts "key=value" from client output.
field() { sed -n "s/.*$2=\([^ ]*\).*/\1/p" "$1" | head -1; }

# --- Build a small dataset and index -------------------------------------
"${CLI}" generate --dataset=slashdot --scale=0.01 --out="${WORK}/net.txt" \
  > /dev/null
"${CLI}" build-index --in="${WORK}/net.txt" --window-pct=10 \
  --out="${WORK}/index.bin" > /dev/null
cp "${WORK}/index.bin" "${WORK}/index.good"

# --- Phase 1: basic serving + clean SIGTERM drain ------------------------
"${DAEMON}" --index="${WORK}/index.bin" --socket="${SOCK}" \
  --port_file="${PORT_FILE}" --graph="${WORK}/net.txt" --workers=2 \
  --metrics_out="${WORK}/m1.json" > "${WORK}/d1.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d1.log"

"${CLIENT}" --socket="${SOCK}" --seeds=0,1,2 --mode=sketch \
  > "${WORK}/q_sketch.txt"
grep -q "status=OK" "${WORK}/q_sketch.txt"
[ "$(field "${WORK}/q_sketch.txt" degraded)" = "0" ] \
  || fail "sketch query must not be degraded"
"${CLIENT}" --socket="${SOCK}" --seeds=0,1,2 --mode=exact \
  > "${WORK}/q_exact.txt"
[ "$(field "${WORK}/q_exact.txt" degraded)" = "0" ] \
  || fail "exact query with a loaded map must not degrade"
"${CLIENT}" --socket="${SOCK}" --method=health | grep -q "status=OK"
"${CLIENT}" --socket="${SOCK}" --method=stats > "${WORK}/stats.txt"
grep -q "queue_capacity=" "${WORK}/stats.txt" || fail "stats missing queue"

stop_daemon "${WORK}/d1.log"
test ! -e "${SOCK}" || fail "socket not unlinked after drain"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"serve.requests.ok"' "${WORK}/m1.json" \
    || fail "metrics report missing serve.requests.ok"
fi

# --- Phase 2: overload + degradation under a slow-eval failpoint ---------
# serve.eval=delay(30) makes every exact attempt burn 30 ms against a 10 ms
# exact budget: auto queries must fall back to sketch (degraded=true), and a
# 16-way closed loop against 2 workers and a 4-deep queue must shed.
IPIN_FAILPOINTS="serve.eval=delay(30)" \
  "${DAEMON}" --index="${WORK}/index.bin" --port=0 \
  --port_file="${PORT_FILE}" \
  --graph="${WORK}/net.txt" --workers=2 --queue_capacity=4 \
  --exact_budget_ms=10 --retry_after_ms=20 \
  --metrics_out="${WORK}/m2.json" > "${WORK}/d2.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d2.log"

"${CLIENT}" --port="${PORT}" --seeds=0,1,2 --mode=auto \
  --requests=200 --concurrency=16 > "${WORK}/burst.txt" || true
cat "${WORK}/burst.txt"
ok="$(field "${WORK}/burst.txt" ok)"
degraded="$(field "${WORK}/burst.txt" degraded)"
overloaded="$(field "${WORK}/burst.txt" overloaded)"
bad="$(field "${WORK}/burst.txt" bad)"
transport="$(field "${WORK}/burst.txt" transport_errors)"
[ "${ok}" -ge 1 ] || fail "overloaded server answered nothing"
[ "${degraded}" -ge 1 ] || fail "slow exact eval did not degrade to sketch"
[ "${overloaded}" -ge 1 ] || fail "no load shedding under overload"
[ "${bad}" -eq 0 ] || fail "unexpected BAD_REQUEST during burst"
[ "${transport}" -eq 0 ] || fail "connections broke during burst"
[ "${ok}" -eq "${degraded}" ] \
  || fail "every OK under the slow-eval fault should be degraded"

# A hopeless deadline gets DEADLINE_EXCEEDED, not a late answer.
"${CLIENT}" --port="${PORT}" --seeds=0,1,2 --mode=auto --deadline_ms=1 \
  > "${WORK}/q_deadline.txt" || true
grep -q "status=DEADLINE_EXCEEDED" "${WORK}/q_deadline.txt" \
  || fail "1ms deadline should be exceeded under the slow-eval fault"

# A retrying client eventually gets through the overload.
"${CLIENT}" --port="${PORT}" --seeds=0,1 --mode=sketch \
  --requests=40 --concurrency=12 --retry_overloaded --max_attempts=6 \
  > "${WORK}/burst_retry.txt" || true
retry_ok="$(field "${WORK}/burst_retry.txt" ok)"
[ "${retry_ok}" -ge 30 ] \
  || fail "retry_overloaded client only got ${retry_ok}/40 through"

stop_daemon "${WORK}/d2.log"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"serve.requests.shed"' "${WORK}/m2.json" \
    || fail "metrics report missing serve.requests.shed"
  grep -q '"serve.requests.degraded"' "${WORK}/m2.json" \
    || fail "metrics report missing serve.requests.degraded"
fi

# --- Phase 3: corrupt reload rolls back; fixed file recovers -------------
"${DAEMON}" --index="${WORK}/index.bin" --port=0 \
  --port_file="${PORT_FILE}" \
  --metrics_out="${WORK}/m3.json" > "${WORK}/d3.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d3.log"

"${CLIENT}" --port="${PORT}" --seeds=0,1,2 > "${WORK}/q_pre.txt"
epoch_pre="$(field "${WORK}/q_pre.txt" epoch)"

# Flip one byte inside a section payload: the reload must verify, reject,
# and keep the old index serving on the old epoch.
printf '\x41' | dd of="${WORK}/index.bin" bs=1 seek=200 conv=notrunc \
  status=none
"${CLIENT}" --port="${PORT}" --method=reload > "${WORK}/r_bad.txt" || true
grep -q "rolled_back=1" "${WORK}/r_bad.txt" \
  || fail "corrupt reload did not report rollback"
"${CLIENT}" --port="${PORT}" --seeds=0,1,2 > "${WORK}/q_post.txt"
grep -q "status=OK" "${WORK}/q_post.txt" \
  || fail "old index stopped serving after corrupt reload"
[ "$(field "${WORK}/q_post.txt" epoch)" = "${epoch_pre}" ] \
  || fail "epoch moved on a rolled-back reload"

# Restore the good bytes: the next reload must swap and advance the epoch.
cp "${WORK}/index.good" "${WORK}/index.bin"
"${CLIENT}" --port="${PORT}" --method=reload > "${WORK}/r_good.txt"
grep -q "rolled_back=0" "${WORK}/r_good.txt" \
  || fail "reload of the restored file rolled back"
epoch_post="$(field "${WORK}/r_good.txt" epoch)"
[ "${epoch_post}" -gt "${epoch_pre}" ] \
  || fail "epoch did not advance after a good reload"

stop_daemon "${WORK}/d3.log"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"serve.reload.rollback"' "${WORK}/m3.json" \
    || fail "metrics report missing serve.reload.rollback"
fi

# --- Phase 4: SIGKILL mid-reload leaves the index servable ---------------
# serve.reload=delay(1000) holds every reload (including the startup one)
# for a second; killing the daemon in the middle of a client-triggered
# reload must not hurt the on-disk index.
IPIN_FAILPOINTS="serve.reload=delay(1000)" \
  "${DAEMON}" --index="${WORK}/index.bin" --port=0 \
  --port_file="${PORT_FILE}" > "${WORK}/d4.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d4.log"
"${CLIENT}" --port="${PORT}" --method=reload > /dev/null 2>&1 || true &
sleep 0.3
kill -KILL "${DAEMON_PID}"
wait "${DAEMON_PID}" 2>/dev/null || true
DAEMON_PID=""
wait || true  # reap the backgrounded client

"${DAEMON}" --index="${WORK}/index.bin" --port=0 \
  --port_file="${PORT_FILE}" > "${WORK}/d5.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d5.log"
"${CLIENT}" --port="${PORT}" --seeds=0,1,2 \
  | grep -q "status=OK" || fail "index unusable after SIGKILL mid-reload"
stop_daemon "${WORK}/d5.log"

# --- Phase 5: observability — trace context, metrics/debug, flight recorder
# serve.eval=delay(30) slows every exact evaluation past the 5 ms slow-query
# threshold, so the traced query below must land in the slow ring with its
# eval stage blamed. audit_rate=1 audits every sketch-served answer.
IPIN_FAILPOINTS="serve.eval=delay(30)" \
  "${DAEMON}" --index="${WORK}/index.bin" --port=0 \
  --port_file="${PORT_FILE}" \
  --graph="${WORK}/net.txt" --workers=2 --slow_query_us=5000 \
  --audit_rate=1 --trace_out="${WORK}/trace.json" \
  --metrics_out="${WORK}/m6.json" > "${WORK}/d6.log" 2>&1 &
register_daemon
wait_ready "${WORK}/d6.log"

# An explicit trace id rides the wire and comes back padded to 16 hex chars.
"${CLIENT}" --port="${PORT}" --seeds=0,1,2 --mode=exact \
  --trace_id=c0ffee > "${WORK}/q_traced.txt"
grep -q "trace_id=0000000000c0ffee" "${WORK}/q_traced.txt" \
  || fail "explicit trace id not echoed"
# A query without one still prints the (client-generated) trace id.
"${CLIENT}" --port="${PORT}" --seeds=0,1,2 --mode=sketch \
  > "${WORK}/q_gen.txt"
grep -q "trace_id=" "${WORK}/q_gen.txt" || fail "no trace id on plain query"

# The metrics verb scrapes inline; Prometheus text only in obs-enabled
# builds (the obs-disabled registry is empty, but the verb must still
# answer OK).
"${CLIENT}" --port="${PORT}" --method=metrics > "${WORK}/metrics.txt"
grep -q "status=OK" "${WORK}/metrics.txt" || fail "metrics verb not OK"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q "# TYPE" "${WORK}/metrics.txt" \
    || fail "metrics payload is not Prometheus text"
  grep -q "serve_requests_accepted_total" "${WORK}/metrics.txt" \
    || fail "metrics payload missing serve counters"
fi

# The debug verb dumps the flight recorder: the delayed query is in there,
# identified by its trace id, with per-stage timings.
"${CLIENT}" --port="${PORT}" --method=debug > "${WORK}/debug.txt"
grep -q "ipin.debug.v1" "${WORK}/debug.txt" || fail "debug verb missing schema"
grep -q "eval_us" "${WORK}/debug.txt" || fail "debug dump missing timings"
grep -q "0000000000c0ffee" "${WORK}/debug.txt" \
  || fail "slow traced query not in the flight recorder"

# SIGUSR1 logs the same dump without interrupting service.
kill -USR1 "${DAEMON_PID}"
for _ in $(seq 1 50); do
  if grep -q "flight recorder dump" "${WORK}/d6.log"; then break; fi
  sleep 0.1
done
grep -q "flight recorder dump" "${WORK}/d6.log" \
  || fail "SIGUSR1 did not log the flight recorder dump"
"${CLIENT}" --port="${PORT}" --method=health | grep -q "status=OK" \
  || fail "server unhealthy after SIGUSR1 dump"

# The live dashboard renders one sample when its binary was handed to us.
if [ -n "${IPIN_TOP}" ]; then
  "${IPIN_TOP}" --port="${PORT}" --once > "${WORK}/top.txt"
  grep -q "epoch" "${WORK}/top.txt" || fail "ipin_top rendered nothing"
fi

stop_daemon "${WORK}/d6.log"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  [ -s "${WORK}/trace.json" ] || fail "--trace_out wrote no Chrome trace"
  grep -q '"serve.request"' "${WORK}/trace.json" \
    || fail "trace missing serve.request span"
  grep -q '"serve.eval"' "${WORK}/trace.json" \
    || fail "trace missing serve.eval span"
  grep -q '"id":"0xc0ffee"' "${WORK}/trace.json" \
    || fail "trace missing the propagated trace id lane"
  grep -q '"serve.audit.sampled"' "${WORK}/m6.json" \
    || fail "metrics report missing serve.audit.sampled"
fi
if [ -n "${ARTIFACTS}" ]; then
  mkdir -p "${ARTIFACTS}"
  cp -f "${WORK}/trace.json" "${ARTIFACTS}/" 2>/dev/null || true
  cp -f "${WORK}/debug.txt" "${ARTIFACTS}/flight_recorder_dump.txt" \
    2>/dev/null || true
fi

echo "serve smoke test OK"
