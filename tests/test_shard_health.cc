#include "ipin/serve/health.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"

namespace ipin::serve {
namespace {

ShardHealthOptions FastProbeOptions(int suspect_after, int down_after,
                                    int64_t probe_interval_ms = 20) {
  ShardHealthOptions options;
  options.suspect_after = suspect_after;
  options.down_after = down_after;
  options.probe_interval_ms = probe_interval_ms;
  return options;
}

class ShardHealthTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kError); }
};

TEST_F(ShardHealthTest, StartsHealthyAndAllowsTraffic) {
  ShardHealthTracker tracker(3, FastProbeOptions(1, 3));
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(tracker.state(s), ShardState::kHealthy);
    EXPECT_TRUE(tracker.AllowRequest(s));
    EXPECT_FALSE(tracker.ProbeDue(s)) << "healthy shards are not probed";
  }
  EXPECT_EQ(tracker.DownCount(), 0u);
}

TEST_F(ShardHealthTest, FailuresEscalateHealthySuspectDown) {
  ShardHealthTracker tracker(1, FastProbeOptions(2, 4));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
  tracker.OnFailure(0);
  // suspect_after=2 consecutive failures: suspect, but traffic still flows
  // (one flaky RPC must not black-hole a shard's seeds).
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  EXPECT_TRUE(tracker.AllowRequest(0));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  tracker.OnFailure(0);
  // down_after=4: circuit opens.
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
  EXPECT_FALSE(tracker.AllowRequest(0));
  EXPECT_EQ(tracker.consecutive_failures(0), 4);
  EXPECT_EQ(tracker.DownCount(), 1u);
}

TEST_F(ShardHealthTest, SuccessResetsFromSuspect) {
  ShardHealthTracker tracker(1, FastProbeOptions(1, 3));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  tracker.OnSuccess(0);
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(0), 0);
  // The streak restarts: it again takes down_after consecutive failures to
  // open the circuit.
  tracker.OnFailure(0);
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
}

TEST_F(ShardHealthTest, DownShardIsProbedAndRecovers) {
  ShardHealthTracker tracker(2, FastProbeOptions(1, 2, /*probe_interval_ms=*/
                                                 30));
  tracker.OnFailure(1);
  tracker.OnFailure(1);
  ASSERT_EQ(tracker.state(1), ShardState::kDown);

  // The first probe slot is available immediately...
  EXPECT_TRUE(tracker.ProbeDue(1));
  // ...and claimed: a second prober asking right away is rate-limited.
  EXPECT_FALSE(tracker.ProbeDue(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(tracker.ProbeDue(1));

  // A successful probe recovers the shard completely.
  tracker.OnSuccess(1);
  EXPECT_EQ(tracker.state(1), ShardState::kHealthy);
  EXPECT_TRUE(tracker.AllowRequest(1));
  EXPECT_FALSE(tracker.ProbeDue(1));
  EXPECT_EQ(tracker.DownCount(), 0u);
  // The untouched shard never left healthy.
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
}

TEST_F(ShardHealthTest, FailedProbeKeepsShardDown) {
  ShardHealthTracker tracker(1, FastProbeOptions(1, 1, 10));
  tracker.OnFailure(0);
  ASSERT_EQ(tracker.state(0), ShardState::kDown);
  ASSERT_TRUE(tracker.ProbeDue(0));
  tracker.OnFailure(0);  // the probe itself failed
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
  EXPECT_FALSE(tracker.AllowRequest(0));
}

TEST_F(ShardHealthTest, SnapshotReportsPerShardStates) {
  ShardHealthTracker tracker(3, FastProbeOptions(1, 2));
  tracker.OnFailure(1);
  tracker.OnFailure(2);
  tracker.OnFailure(2);
  const auto snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0], ShardState::kHealthy);
  EXPECT_EQ(snapshot[1], ShardState::kSuspect);
  EXPECT_EQ(snapshot[2], ShardState::kDown);
  EXPECT_STREQ(ShardStateName(snapshot[0]), "healthy");
  EXPECT_STREQ(ShardStateName(snapshot[1]), "suspect");
  EXPECT_STREQ(ShardStateName(snapshot[2]), "down");
}

TEST_F(ShardHealthTest, OptionsAreClampedToSaneValues) {
  ShardHealthOptions bogus;
  bogus.suspect_after = 0;
  bogus.down_after = -5;
  bogus.probe_interval_ms = 0;
  ShardHealthTracker tracker(1, bogus);
  EXPECT_GE(tracker.options().suspect_after, 1);
  EXPECT_GE(tracker.options().down_after, tracker.options().suspect_after);
  EXPECT_GE(tracker.options().probe_interval_ms, 1);
  // One failure must now take the shard down (both thresholds clamp to 1).
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
}

// --- Replica failover: the per-endpoint state machine ---------------------

TEST_F(ShardHealthTest, PrimaryDownPromotesTheFirstLiveReplica) {
  // Shard 0 has a primary + two replicas; shard 1 is primary-only.
  ShardHealthTracker tracker({3, 1}, FastProbeOptions(1, 2));
  EXPECT_EQ(tracker.NumEndpoints(0), 3u);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 0u);

  tracker.OnFailure(0);  // addressed to the active endpoint (the primary)
  tracker.OnFailure(0);
  // The primary's circuit opened; traffic moves to replica 1 and the shard
  // as a whole keeps accepting requests.
  EXPECT_EQ(tracker.endpoint_state(0, 0), ShardState::kDown);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 1u);
  EXPECT_TRUE(tracker.AllowRequest(0));
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy) << "active endpoint";
  EXPECT_EQ(tracker.DownCount(), 0u);

  // The replica failing too moves traffic to replica 2...
  tracker.OnFailure(0);
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 2u);
  EXPECT_TRUE(tracker.AllowRequest(0));
  // ...and only when EVERY endpoint is down does the circuit open.
  tracker.OnFailure(0);
  tracker.OnFailure(0);
  EXPECT_FALSE(tracker.AllowRequest(0));
  EXPECT_EQ(tracker.DownCount(), 1u);
}

TEST_F(ShardHealthTest, PrimaryRecoveryDemotesTheReplica) {
  ShardHealthTracker tracker(std::vector<size_t>{2}, FastProbeOptions(1, 2, 10));
  tracker.OnFailure(0);
  tracker.OnFailure(0);
  ASSERT_EQ(tracker.ActiveEndpoint(0), 1u);

  // The prober offers the PRIMARY first so demotion happens the moment it
  // heals.
  size_t endpoint = 99;
  ASSERT_TRUE(tracker.ProbeDueEndpoint(0, &endpoint));
  EXPECT_EQ(endpoint, 0u);
  tracker.OnEndpointSuccess(0, 0);
  EXPECT_EQ(tracker.endpoint_state(0, 0), ShardState::kHealthy);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 0u) << "traffic returns home";
}

TEST_F(ShardHealthTest, ReplicaRecoveryDoesNotStealTraffic) {
  ShardHealthTracker tracker(std::vector<size_t>{2}, FastProbeOptions(1, 1, 10));
  // Kill the replica while the primary serves: nothing should move.
  tracker.OnEndpointFailure(0, 1);
  ASSERT_EQ(tracker.endpoint_state(0, 1), ShardState::kDown);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 0u);

  // The down replica is probe-eligible; its recovery restores its circuit
  // but the primary keeps the traffic.
  size_t endpoint = 99;
  ASSERT_TRUE(tracker.ProbeDueEndpoint(0, &endpoint));
  EXPECT_EQ(endpoint, 1u);
  tracker.OnEndpointSuccess(0, 1);
  EXPECT_EQ(tracker.endpoint_state(0, 1), ShardState::kHealthy);
  EXPECT_EQ(tracker.ActiveEndpoint(0), 0u);
}

TEST_F(ShardHealthTest, FailoverStateSurvivesProbeRateLimiting) {
  // With primary AND replica down, probe slots alternate per endpoint and
  // are individually rate-limited — the pattern the router's prober relies
  // on during a reshard (it probes both epochs' fleets on one clock).
  ShardHealthTracker tracker(std::vector<size_t>{2}, FastProbeOptions(1, 1, 30));
  tracker.OnEndpointFailure(0, 0);
  tracker.OnEndpointFailure(0, 1);
  ASSERT_FALSE(tracker.AllowRequest(0));

  size_t first = 99;
  size_t second = 99;
  ASSERT_TRUE(tracker.ProbeDueEndpoint(0, &first));
  ASSERT_TRUE(tracker.ProbeDueEndpoint(0, &second));
  EXPECT_NE(first, second) << "both down endpoints get a probe slot";
  EXPECT_FALSE(tracker.ProbeDue(0)) << "then the interval gates";
  std::this_thread::sleep_for(std::chrono::milliseconds(45));
  EXPECT_TRUE(tracker.ProbeDue(0));
}

}  // namespace
}  // namespace ipin::serve
