#include "ipin/serve/health.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"

namespace ipin::serve {
namespace {

ShardHealthOptions FastProbeOptions(int suspect_after, int down_after,
                                    int64_t probe_interval_ms = 20) {
  ShardHealthOptions options;
  options.suspect_after = suspect_after;
  options.down_after = down_after;
  options.probe_interval_ms = probe_interval_ms;
  return options;
}

class ShardHealthTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kError); }
};

TEST_F(ShardHealthTest, StartsHealthyAndAllowsTraffic) {
  ShardHealthTracker tracker(3, FastProbeOptions(1, 3));
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(tracker.state(s), ShardState::kHealthy);
    EXPECT_TRUE(tracker.AllowRequest(s));
    EXPECT_FALSE(tracker.ProbeDue(s)) << "healthy shards are not probed";
  }
  EXPECT_EQ(tracker.DownCount(), 0u);
}

TEST_F(ShardHealthTest, FailuresEscalateHealthySuspectDown) {
  ShardHealthTracker tracker(1, FastProbeOptions(2, 4));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
  tracker.OnFailure(0);
  // suspect_after=2 consecutive failures: suspect, but traffic still flows
  // (one flaky RPC must not black-hole a shard's seeds).
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  EXPECT_TRUE(tracker.AllowRequest(0));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  tracker.OnFailure(0);
  // down_after=4: circuit opens.
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
  EXPECT_FALSE(tracker.AllowRequest(0));
  EXPECT_EQ(tracker.consecutive_failures(0), 4);
  EXPECT_EQ(tracker.DownCount(), 1u);
}

TEST_F(ShardHealthTest, SuccessResetsFromSuspect) {
  ShardHealthTracker tracker(1, FastProbeOptions(1, 3));
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
  tracker.OnSuccess(0);
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(0), 0);
  // The streak restarts: it again takes down_after consecutive failures to
  // open the circuit.
  tracker.OnFailure(0);
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kSuspect);
}

TEST_F(ShardHealthTest, DownShardIsProbedAndRecovers) {
  ShardHealthTracker tracker(2, FastProbeOptions(1, 2, /*probe_interval_ms=*/
                                                 30));
  tracker.OnFailure(1);
  tracker.OnFailure(1);
  ASSERT_EQ(tracker.state(1), ShardState::kDown);

  // The first probe slot is available immediately...
  EXPECT_TRUE(tracker.ProbeDue(1));
  // ...and claimed: a second prober asking right away is rate-limited.
  EXPECT_FALSE(tracker.ProbeDue(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(tracker.ProbeDue(1));

  // A successful probe recovers the shard completely.
  tracker.OnSuccess(1);
  EXPECT_EQ(tracker.state(1), ShardState::kHealthy);
  EXPECT_TRUE(tracker.AllowRequest(1));
  EXPECT_FALSE(tracker.ProbeDue(1));
  EXPECT_EQ(tracker.DownCount(), 0u);
  // The untouched shard never left healthy.
  EXPECT_EQ(tracker.state(0), ShardState::kHealthy);
}

TEST_F(ShardHealthTest, FailedProbeKeepsShardDown) {
  ShardHealthTracker tracker(1, FastProbeOptions(1, 1, 10));
  tracker.OnFailure(0);
  ASSERT_EQ(tracker.state(0), ShardState::kDown);
  ASSERT_TRUE(tracker.ProbeDue(0));
  tracker.OnFailure(0);  // the probe itself failed
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
  EXPECT_FALSE(tracker.AllowRequest(0));
}

TEST_F(ShardHealthTest, SnapshotReportsPerShardStates) {
  ShardHealthTracker tracker(3, FastProbeOptions(1, 2));
  tracker.OnFailure(1);
  tracker.OnFailure(2);
  tracker.OnFailure(2);
  const auto snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0], ShardState::kHealthy);
  EXPECT_EQ(snapshot[1], ShardState::kSuspect);
  EXPECT_EQ(snapshot[2], ShardState::kDown);
  EXPECT_STREQ(ShardStateName(snapshot[0]), "healthy");
  EXPECT_STREQ(ShardStateName(snapshot[1]), "suspect");
  EXPECT_STREQ(ShardStateName(snapshot[2]), "down");
}

TEST_F(ShardHealthTest, OptionsAreClampedToSaneValues) {
  ShardHealthOptions bogus;
  bogus.suspect_after = 0;
  bogus.down_after = -5;
  bogus.probe_interval_ms = 0;
  ShardHealthTracker tracker(1, bogus);
  EXPECT_GE(tracker.options().suspect_after, 1);
  EXPECT_GE(tracker.options().down_after, tracker.options().suspect_after);
  EXPECT_GE(tracker.options().probe_interval_ms, 1);
  // One failure must now take the shard down (both thresholds clamp to 1).
  tracker.OnFailure(0);
  EXPECT_EQ(tracker.state(0), ShardState::kDown);
}

}  // namespace
}  // namespace ipin::serve
