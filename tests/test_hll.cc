#include "ipin/sketch/hll.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/sketch/estimators.h"

namespace ipin {
namespace {

TEST(HllTest, EmptySketchEstimatesZero) {
  const HyperLogLog hll(8);
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, DuplicatesDoNotChangeEstimate) {
  HyperLogLog hll(8);
  for (int i = 0; i < 100; ++i) hll.Add(42);
  const double single = hll.Estimate();
  hll.Add(42);
  EXPECT_DOUBLE_EQ(hll.Estimate(), single);
  EXPECT_NEAR(single, 1.0, 0.5);
}

TEST(HllTest, SmallCardinalitiesUseLinearCounting) {
  HyperLogLog hll(10);
  for (uint64_t i = 0; i < 50; ++i) hll.Add(i);
  EXPECT_NEAR(hll.Estimate(), 50.0, 5.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HllAccuracyTest, ErrorWithinFourStandardErrors) {
  const int precision = GetParam();
  HyperLogLog hll(precision);
  const double n = 100000.0;
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) hll.Add(i);
  const double err = std::abs(hll.Estimate() - n) / n;
  EXPECT_LT(err, 4.0 * HllStandardError(hll.num_cells()))
      << "precision=" << precision << " estimate=" << hll.Estimate();
}

INSTANTIATE_TEST_SUITE_P(Precisions, HllAccuracyTest,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 12, 14));

TEST(HllTest, AccuracyImprovesWithPrecision) {
  // Average error over several salts must shrink as beta grows.
  const double n = 50000.0;
  double err_small = 0.0;
  double err_large = 0.0;
  for (uint64_t salt = 0; salt < 5; ++salt) {
    HyperLogLog small(4, salt);
    HyperLogLog large(12, salt);
    for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
      small.Add(i);
      large.Add(i);
    }
    err_small += std::abs(small.Estimate() - n) / n;
    err_large += std::abs(large.Estimate() - n) / n;
  }
  EXPECT_LT(err_large, err_small);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(9);
  HyperLogLog b(9);
  HyperLogLog combined(9);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (uint64_t i = 500; i < 1500; ++i) {
    b.Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), combined.Estimate());
  EXPECT_EQ(a.cells(), combined.cells());
}

TEST(HllTest, MergeWithEmptyIsNoop) {
  HyperLogLog a(8);
  for (uint64_t i = 0; i < 100; ++i) a.Add(i);
  const double before = a.Estimate();
  const HyperLogLog empty(8);
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Estimate(), before);
}

TEST(HllTest, ClearResets) {
  HyperLogLog hll(8);
  for (uint64_t i = 0; i < 1000; ++i) hll.Add(i);
  hll.Clear();
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, SaltsGiveIndependentEstimators) {
  HyperLogLog a(6, 1);
  HyperLogLog b(6, 2);
  for (uint64_t i = 0; i < 10000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_NE(a.cells(), b.cells());
}

TEST(HllTest, HashToCellIsConsistentWithAdd) {
  HyperLogLog hll(8);
  const uint64_t h = 0xdeadbeefcafef00dULL;
  size_t cell;
  uint8_t rank;
  hll.HashToCell(h, &cell, &rank);
  hll.AddHash(h);
  EXPECT_EQ(hll.cells()[cell], rank);
  EXPECT_LT(cell, hll.num_cells());
  EXPECT_GE(rank, 1);
}

TEST(HllTest, MemoryIsBetaBytes) {
  const HyperLogLog hll(10);
  EXPECT_EQ(hll.MemoryUsageBytes(), 1024u);
}

TEST(EstimatorsTest, AlphaMatchesPublishedConstants) {
  EXPECT_DOUBLE_EQ(HllAlpha(16), 0.673);
  EXPECT_DOUBLE_EQ(HllAlpha(32), 0.697);
  EXPECT_DOUBLE_EQ(HllAlpha(64), 0.709);
  EXPECT_NEAR(HllAlpha(512), 0.7213 / (1.0 + 1.079 / 512.0), 1e-12);
}

TEST(EstimatorsTest, StandardErrorFormula) {
  EXPECT_NEAR(HllStandardError(1024), 1.04 / 32.0, 1e-12);
}

TEST(EstimatorsTest, AllZeroRanksEstimateZero) {
  const std::vector<uint8_t> ranks(64, 0);
  EXPECT_DOUBLE_EQ(EstimateFromRanks(ranks), 0.0);
}

}  // namespace
}  // namespace ipin
