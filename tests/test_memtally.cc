#include "ipin/obs/memtally.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/core/irs_exact.h"
#include "ipin/core/source_sets.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/obs/metrics.h"
#include "ipin/sketch/versioned_bottom_k.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

using obs::GetMemoryTally;
using obs::MemoryTally;
using obs::ScopedMemoryCharge;
using obs::TallyAllocator;

// Tallies are process-global and other tests in this binary allocate into
// them, so every assertion here works on DELTAS around a local workload.

TEST(MemoryTallyTest, AddSubAndPeak) {
  MemoryTally tally("test");
  EXPECT_EQ(tally.CurrentBytes(), 0);
  tally.Add(100);
  tally.Add(50);
  EXPECT_EQ(tally.CurrentBytes(), 150);
  EXPECT_EQ(tally.PeakBytes(), 150);
  tally.Sub(120);
  EXPECT_EQ(tally.CurrentBytes(), 30);
  EXPECT_EQ(tally.PeakBytes(), 150);  // peak sticks
  tally.ResetPeak();
  EXPECT_EQ(tally.PeakBytes(), 30);
  tally.Add(10);
  EXPECT_EQ(tally.PeakBytes(), 40);
}

TEST(MemoryTallyTest, RegistryReturnsSameTallyForSameName) {
  MemoryTally& a = GetMemoryTally("test_registry_same");
  MemoryTally& b = GetMemoryTally("test_registry_same");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test_registry_same");
  bool found = false;
  for (const MemoryTally* t : obs::AllMemoryTallies()) {
    found = found || t == &a;
  }
  EXPECT_TRUE(found);
}

MemoryTally& VectorTestTally() {
  static MemoryTally& tally = GetMemoryTally("test_vector_alloc");
  return tally;
}

TEST(TallyAllocatorTest, VectorChargesExactCapacityBytes) {
  MemoryTally& tally = VectorTestTally();
  const int64_t before = tally.CurrentBytes();
  {
    std::vector<uint64_t, TallyAllocator<uint64_t, &VectorTestTally>> v;
    v.reserve(1000);
    EXPECT_EQ(tally.CurrentBytes() - before,
              static_cast<int64_t>(1000 * sizeof(uint64_t)));
    for (int i = 0; i < 5000; ++i) v.push_back(static_cast<uint64_t>(i));
    // Whatever growth policy ran, the tally must equal capacity * width.
    EXPECT_EQ(tally.CurrentBytes() - before,
              static_cast<int64_t>(v.capacity() * sizeof(uint64_t)));
  }
  EXPECT_EQ(tally.CurrentBytes(), before);  // destructor returned everything
}

TEST(TallyAllocatorTest, ScopedChargeResizesAndReleases) {
  MemoryTally& tally = GetMemoryTally("test_scoped");
  const int64_t before = tally.CurrentBytes();
  {
    ScopedMemoryCharge charge(tally, 4096);
    EXPECT_EQ(tally.CurrentBytes() - before, 4096);
    charge.Resize(10000);
    EXPECT_EQ(tally.CurrentBytes() - before, 10000);
    charge.Resize(2000);
    EXPECT_EQ(tally.CurrentBytes() - before, 2000);
  }
  EXPECT_EQ(tally.CurrentBytes(), before);
}

// Builds a deterministic dense-ish interaction graph for workload tests.
InteractionGraph TestGraph(size_t num_nodes, size_t num_interactions) {
  std::vector<Interaction> edges;
  uint64_t state = 12345;
  for (size_t i = 0; i < num_interactions; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const NodeId u = static_cast<NodeId>((state >> 33) % num_nodes);
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const NodeId v = static_cast<NodeId>((state >> 33) % num_nodes);
    edges.push_back({u, v, static_cast<Timestamp>(i)});
  }
  return InteractionGraph(num_nodes, std::move(edges));
}

// Acceptance criterion: mem.irs_exact.bytes agrees with independently
// computed allocator-request bytes within +/-10%. The independent number
// sums, per live summary map, node allocations (one per element) and the
// bucket array — exactly what libstdc++'s unordered_map requests, computed
// from container shape rather than from the allocator hooks under test.
TEST(TallyAllocatorTest, IrsExactTallyMatchesContainerAccounting) {
  obs::MemoryTally& tally = IrsExactMemTally();
  const int64_t before = tally.CurrentBytes();

  const InteractionGraph graph = TestGraph(400, 4000);
  const IrsExact irs = IrsExact::Compute(graph, 64);
  const int64_t measured = tally.CurrentBytes() - before;

  // Per element one node: {next pointer, pair<const NodeId, Timestamp>},
  // padded to pointer alignment. Per map one bucket array of pointers
  // (except the static single-bucket state some implementations start with,
  // whose bucket_count is tiny — counting it anyway stays within the band).
  int64_t expected = 0;
  const size_t node_bytes =
      sizeof(void*) +
      ((sizeof(std::pair<const NodeId, Timestamp>) + sizeof(void*) - 1) /
       sizeof(void*)) * sizeof(void*);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto& summary = irs.Summary(u);
    expected += static_cast<int64_t>(summary.size() * node_bytes);
    if (summary.bucket_count() > 1) {
      expected +=
          static_cast<int64_t>(summary.bucket_count() * sizeof(void*));
    }
  }

  ASSERT_GT(measured, 0);
  ASSERT_GT(expected, 0);
  EXPECT_NEAR(static_cast<double>(measured), static_cast<double>(expected),
              0.10 * static_cast<double>(expected))
      << "measured=" << measured << " expected=" << expected;
}

// Same criterion for mem.vhll.bytes: cell-list vectors charge the tally;
// the independent number is the sum of capacity * sizeof(Entry) over all
// cell lists plus each sketch's cells_ vector itself.
TEST(TallyAllocatorTest, VhllTallyMatchesContainerAccounting) {
  obs::MemoryTally& tally = obs::GetMemoryTally("vhll");
  const int64_t before = tally.CurrentBytes();

  std::vector<VersionedHll> sketches;
  uint64_t state = 999;
  for (int s = 0; s < 8; ++s) {
    sketches.emplace_back(/*precision=*/6, /*salt=*/7);
    for (int i = 0; i < 2000; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      sketches.back().Add(state >> 8, static_cast<Timestamp>(i % 97));
    }
  }
  const int64_t measured = tally.CurrentBytes() - before;

  int64_t expected = 0;
  for (const VersionedHll& sketch : sketches) {
    const size_t beta = static_cast<size_t>(1) << sketch.precision();
    expected += static_cast<int64_t>(
        beta * sizeof(VersionedHll::CellList));  // cells_ vector
    for (size_t c = 0; c < beta; ++c) {
      expected += static_cast<int64_t>(sketch.cell(c).capacity() *
                                       sizeof(VersionedHll::Entry));
    }
  }

  ASSERT_GT(measured, 0);
  ASSERT_GT(expected, 0);
  EXPECT_NEAR(static_cast<double>(measured), static_cast<double>(expected),
              0.10 * static_cast<double>(expected))
      << "measured=" << measured << " expected=" << expected;
}

TEST(TallyAllocatorTest, BottomKChargesAndReleases) {
  obs::MemoryTally& tally = obs::GetMemoryTally("bottom_k");
  const int64_t before = tally.CurrentBytes();
  {
    VersionedBottomK sketch(16);
    for (uint64_t i = 0; i < 500; ++i) {
      sketch.Add(i * 2654435761ULL, static_cast<Timestamp>(i % 31));
    }
    const int64_t during = tally.CurrentBytes() - before;
    EXPECT_EQ(during,
              static_cast<int64_t>(sketch.entries().capacity() *
                                   sizeof(VersionedBottomK::Entry)));
  }
  EXPECT_EQ(tally.CurrentBytes(), before);
}

TEST(MemoryTallyTest, SourceSetsShareIrsExactTally) {
  obs::MemoryTally& tally = IrsExactMemTally();
  const int64_t before = tally.CurrentBytes();
  const InteractionGraph graph = TestGraph(100, 800);
  const SourceSetExact sets = SourceSetExact::Compute(graph, 32);
  EXPECT_GT(tally.CurrentBytes(), before);
  EXPECT_GT(sets.TotalSummaryEntries(), 0u);
}

TEST(MemoryTallyTest, PublishMemoryGaugesMirrorsTallies) {
  obs::MemoryTally& tally = GetMemoryTally("test_publish");
  tally.Add(12345);
  obs::PublishMemoryGauges();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  double bytes = -1.0, peak = -1.0;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "mem.test_publish.bytes") bytes = value;
    if (name == "mem.test_publish.peak_bytes") peak = value;
  }
  EXPECT_EQ(bytes, static_cast<double>(tally.CurrentBytes()));
  EXPECT_EQ(peak, static_cast<double>(tally.PeakBytes()));
  tally.Sub(12345);
}

#ifdef __unix__
TEST(MemoryTallyTest, RssIsNonZeroOnLinux) {
  EXPECT_GT(obs::CurrentRssBytes(), 0u);
}
#endif

}  // namespace
}  // namespace ipin
