#include "ipin/core/irs_approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/eval/metrics.h"
#include "ipin/sketch/estimators.h"
#include "test_util.h"

namespace ipin {
namespace {

IrsApproxOptions Options(int precision, uint64_t salt = 0) {
  IrsApproxOptions options;
  options.precision = precision;
  options.salt = salt;
  return options;
}

TEST(IrsApproxTest, SmallGraphEstimatesAreNearExact) {
  // On Figure 1a the IRS sizes are tiny; with a large beta the HLL
  // linear-counting regime is essentially exact. The sketch cannot filter a
  // node's own hash arriving via a temporal cycle (here e -> b -> e), so
  // estimates may exceed the exact size by up to one.
  const InteractionGraph g = FigureOneGraph();
  const IrsExact exact = IrsExact::Compute(g, 3);
  const IrsApprox approx = IrsApprox::Compute(g, 3, Options(10));
  for (NodeId u = 0; u < 6; ++u) {
    const double est = approx.EstimateIrsSize(u);
    const double truth = static_cast<double>(exact.IrsSize(u));
    EXPECT_GE(est, truth - 0.5) << "node " << u;
    EXPECT_LE(est, truth + 1.5) << "node " << u;
  }
}

TEST(IrsApproxTest, SketchesKeepInvariantsDuringScan) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 600, 2000, 17);
  const IrsApprox approx = IrsApprox::Compute(g, 400, Options(6));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (approx.Sketch(u)) {
      EXPECT_TRUE(approx.Sketch(u).CheckInvariants()) << "node " << u;
    }
  }
}

TEST(IrsApproxTest, LazyAllocationOnlyForSources) {
  InteractionGraph g(5);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(0, 2, 2);
  const IrsApprox approx = IrsApprox::Compute(g, 10, Options(6));
  EXPECT_TRUE(approx.Sketch(0).valid());
  EXPECT_FALSE(approx.Sketch(1).valid());  // pure receiver
  EXPECT_FALSE(approx.Sketch(3).valid());  // isolated
  EXPECT_EQ(approx.NumAllocatedSketches(), 1u);
  EXPECT_DOUBLE_EQ(approx.EstimateIrsSize(1), 0.0);
}

struct AccuracyCase {
  int precision;
  Duration window;
};

class IrsApproxAccuracyTest : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(IrsApproxAccuracyTest, MeanRelativeErrorWithinTolerance) {
  const AccuracyCase c = GetParam();
  // A denser random network so IRS sizes are large enough for relative
  // error to be meaningful.
  SyntheticConfig config;
  config.num_nodes = 400;
  config.num_interactions = 6000;
  config.time_span = 20000;
  config.seed = 77;
  const InteractionGraph g = GenerateInteractionNetwork(config);

  const IrsExact exact = IrsExact::Compute(g, c.window);
  const IrsApprox approx = IrsApprox::Compute(g, c.window, Options(c.precision));

  std::vector<double> truth;
  std::vector<double> est;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (exact.IrsSize(u) < 10) continue;  // relative error needs mass
    truth.push_back(static_cast<double>(exact.IrsSize(u)));
    est.push_back(approx.EstimateIrsSize(u));
  }
  ASSERT_GT(truth.size(), 20u);
  const double mre = MeanRelativeError(truth, est);
  // Mean relative error concentrates near the sketch standard error; allow
  // 3x slack for the small-cardinality bias.
  const double tolerance =
      3.0 * HllStandardError(static_cast<size_t>(1) << c.precision) + 0.05;
  EXPECT_LT(mre, tolerance) << "precision " << c.precision;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IrsApproxAccuracyTest,
    ::testing::Values(AccuracyCase{4, 2000}, AccuracyCase{6, 2000},
                      AccuracyCase{8, 2000}, AccuracyCase{9, 2000},
                      AccuracyCase{8, 500}, AccuracyCase{8, 10000}));

TEST(IrsApproxTest, AccuracyImprovesWithPrecision) {
  SyntheticConfig config;
  config.num_nodes = 300;
  config.num_interactions = 5000;
  config.time_span = 10000;
  config.seed = 31;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  const IrsExact exact = IrsExact::Compute(g, window);

  const auto mean_error = [&](int precision) {
    double total = 0.0;
    int count = 0;
    for (uint64_t salt = 0; salt < 3; ++salt) {
      const IrsApprox approx =
          IrsApprox::Compute(g, window, Options(precision, salt));
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (exact.IrsSize(u) < 20) continue;
        const double t = static_cast<double>(exact.IrsSize(u));
        total += std::abs(approx.EstimateIrsSize(u) - t) / t;
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(mean_error(9), mean_error(4));
}

TEST(IrsApproxTest, UnionEstimateTracksExactUnion) {
  SyntheticConfig config;
  config.num_nodes = 300;
  config.num_interactions = 5000;
  config.time_span = 10000;
  config.seed = 41;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  const IrsExact exact = IrsExact::Compute(g, window);
  const IrsApprox approx = IrsApprox::Compute(g, window, Options(9));

  const std::vector<NodeId> seeds = {1, 5, 9, 42, 77, 130, 200};
  const double truth = static_cast<double>(exact.UnionSize(seeds));
  const double est = approx.EstimateUnionSize(seeds);
  ASSERT_GT(truth, 20.0);
  EXPECT_NEAR(est / truth, 1.0, 0.25);
}

TEST(IrsApproxTest, UnionOfEmptySeedsIsZero) {
  const InteractionGraph g = FigureOneGraph();
  const IrsApprox approx = IrsApprox::Compute(g, 3, Options(6));
  EXPECT_DOUBLE_EQ(approx.EstimateUnionSize({}), 0.0);
}

TEST(IrsApproxTest, UnionIsAtLeastMaxIndividual) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 1500, 5000, 3);
  const IrsApprox approx = IrsApprox::Compute(g, 1000, Options(8));
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  double max_individual = 0.0;
  for (const NodeId s : seeds) {
    max_individual = std::max(max_individual, approx.EstimateIrsSize(s));
  }
  EXPECT_GE(approx.EstimateUnionSize(seeds) + 1e-9, max_individual);
}

TEST(IrsApproxTest, EstimateMonotoneInWindowOnAverage) {
  const InteractionGraph g = GenerateUniformRandomNetwork(200, 3000, 9000, 8);
  double prev_total = -1.0;
  for (const Duration w : {10, 300, 3000, 9000}) {
    const IrsApprox approx = IrsApprox::Compute(g, w, Options(8));
    double total = 0.0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      total += approx.EstimateIrsSize(u);
    }
    EXPECT_GE(total, prev_total * 0.95) << "window " << w;
    prev_total = total;
  }
}

TEST(IrsApproxTest, MemoryGrowsWithWindow) {
  const InteractionGraph g =
      GenerateUniformRandomNetwork(200, 4000, 10000, 12);
  const IrsApprox narrow = IrsApprox::Compute(g, 10, Options(6));
  const IrsApprox wide = IrsApprox::Compute(g, 10000, Options(6));
  EXPECT_GE(wide.TotalSketchEntries(), narrow.TotalSketchEntries());
  EXPECT_GT(wide.MemoryUsageBytes(), 0u);
}

TEST(IrsApproxTest, EmptyGraphBehaves) {
  const InteractionGraph g(3);
  const IrsApprox approx = IrsApprox::Compute(g, 5, Options(6));
  EXPECT_EQ(approx.NumAllocatedSketches(), 0u);
  EXPECT_DOUBLE_EQ(approx.EstimateIrsSize(0), 0.0);
}

TEST(IrsApproxDeathTest, RejectsOutOfOrderInteractions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IrsApprox approx(3, 5, Options(6));
  approx.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(approx.ProcessInteraction({1, 2, 20}), "CHECK failed");
}

TEST(IrsApproxTest, DifferentSaltsGiveDifferentButCloseEstimates) {
  const InteractionGraph g = GenerateUniformRandomNetwork(200, 3000, 8000, 5);
  const IrsApprox a = IrsApprox::Compute(g, 2000, Options(8, 1));
  const IrsApprox b = IrsApprox::Compute(g, 2000, Options(8, 2));
  bool any_different = false;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (a.EstimateIrsSize(u) != b.EstimateIrsSize(u)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace ipin
