#include "ipin/obs/window.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "ipin/obs/metrics.h"

namespace ipin::obs {
namespace {

// The aggregator snapshots the process-global registry; every test uses
// metric names under a test-unique prefix so tests cannot interfere.
// SampleNow() drives the ring manually — no background thread, no sleeps
// needed for delta/histogram assertions (Rate needs real elapsed time
// between samples and so tolerates only coarse bounds).

TEST(WindowedAggregatorTest, NoAnswersWithFewerThanTwoSamples) {
  WindowedAggregator window;
  EXPECT_EQ(window.Rate("test_window.none", 10.0), 0.0);
  EXPECT_EQ(window.DeltaCount("test_window.none", 10.0), 0u);
  EXPECT_EQ(window.WindowedHistogram("test_window.none", 10.0).count, 0u);
  window.SampleNow();
  EXPECT_EQ(window.sample_count(), 1u);
  EXPECT_EQ(window.DeltaCount("test_window.none", 10.0), 0u);
}

TEST(WindowedAggregatorTest, DeltaCountSubtractsWindowEdge) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_window.delta.counter");
  WindowedAggregator window;
  counter->Add(5);
  window.SampleNow();
  counter->Add(37);
  window.SampleNow();
  EXPECT_EQ(window.DeltaCount("test_window.delta.counter", 60.0), 37u);
  // Unknown counters read as idle, not as an error.
  EXPECT_EQ(window.DeltaCount("test_window.delta.unknown", 60.0), 0u);
}

TEST(WindowedAggregatorTest, RateIsDeltaOverElapsedTime) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_window.rate.counter");
  WindowedAggregator window;
  window.SampleNow();
  counter->Add(100);
  // Real elapsed time between the samples keeps the computed rate finite
  // and bounded: 100 events over >= 50 ms is at most 2000/s.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  window.SampleNow();
  const double rate = window.Rate("test_window.rate.counter", 60.0);
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 100.0 / 0.05 + 1.0);
}

TEST(WindowedAggregatorTest, WindowedHistogramCoversOnlyTheWindow) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test_window.hist.latency");
  hist->Record(1000);  // before the first sample: outside every window
  WindowedAggregator window;
  window.SampleNow();
  hist->Record(3);
  hist->Record(3);
  hist->Record(100);
  window.SampleNow();

  const HistogramSnapshot delta =
      window.WindowedHistogram("test_window.hist.latency", 60.0);
  EXPECT_EQ(delta.count, 3u);
  EXPECT_EQ(delta.sum, 106u);
  // Bucket-resolution bounds of the windowed samples, not the cumulative
  // extremes (1000 was recorded before the window).
  EXPECT_LE(delta.min, 3u);
  EXPECT_GE(delta.max, 100u);
  EXPECT_LT(delta.max, 1000u);
  const double p50 = delta.P50();
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 3.0);
}

TEST(WindowedAggregatorTest, RingEvictsOldestSamples) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_window.ring.counter");
  WindowedAggregatorOptions options;
  options.num_buckets = 3;
  WindowedAggregator window(options);
  for (int i = 0; i < 10; ++i) {
    counter->Add(1);
    window.SampleNow();
  }
  EXPECT_EQ(window.sample_count(), 3u);
  // Only the increments between the three retained samples are visible:
  // counts 8, 9, 10 -> a delta of at most 2 however wide the window.
  EXPECT_LE(window.DeltaCount("test_window.ring.counter", 1e6), 2u);
}

TEST(WindowedAggregatorTest, StartStopSamplerIsIdempotent) {
  WindowedAggregatorOptions options;
  options.sample_period_ms = 10;
  WindowedAggregator window(options);
  window.Start();
  window.Start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  window.Stop();
  window.Stop();  // idempotent
  const size_t after_stop = window.sample_count();
  EXPECT_GE(after_stop, 2u);  // t0 sample + at least one periodic tick
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(window.sample_count(), after_stop);  // sampler really stopped
  // Restart works after a Stop.
  window.Start();
  window.Stop();
}

TEST(WindowedAggregatorTest, CounterResetReadsAsIdleNotUnderflow) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_window.reset.counter");
  WindowedAggregator window;
  counter->Add(50);
  window.SampleNow();
  counter->Reset();
  window.SampleNow();
  EXPECT_EQ(window.DeltaCount("test_window.reset.counter", 60.0), 0u);
  EXPECT_EQ(window.Rate("test_window.reset.counter", 60.0), 0.0);
}

}  // namespace
}  // namespace ipin::obs
