#include "ipin/core/tclt.h"

#include <gtest/gtest.h>

#include "ipin/core/tcic.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TcltOptions Options(Duration window, double scale = 1.0) {
  TcltOptions options;
  options.window = window;
  options.weight_scale = scale;
  return options;
}

TEST(TcltTest, NoSeedsNoSpread) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(1);
  EXPECT_EQ(SimulateTclt(g, {}, Options(3), &rng), 0u);
}

TEST(TcltTest, HugeWeightScaleEqualsDeterministicTcic) {
  // With weights clamped to 1 every contact activates, which is exactly
  // TCIC at p = 1.
  const InteractionGraph g = FigureOneGraph();
  for (const Duration w : {0, 3, 7, 100}) {
    Rng rng_lt(5);
    const size_t lt = SimulateTclt(g, std::vector<NodeId>{kA},
                                   Options(w, 1e9), &rng_lt);
    TcicOptions tcic;
    tcic.window = w;
    tcic.probability = 1.0;
    Rng rng_ic(5);
    const size_t ic =
        SimulateTcic(g, std::vector<NodeId>{kA}, tcic, &rng_ic);
    EXPECT_EQ(lt, ic) << "window " << w;
  }
}

TEST(TcltTest, ZeroWeightActivatesOnlySeeds) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(3);
  const std::vector<NodeId> seeds = {kA, kE};
  EXPECT_EQ(SimulateTclt(g, seeds, Options(100, 0.0), &rng), 2u);
}

TEST(TcltTest, SeedWithoutOutgoingInteractionStaysInactive) {
  const InteractionGraph g = FigureOneGraph();
  Rng rng(3);
  const std::vector<NodeId> seeds = {kF};
  EXPECT_EQ(SimulateTclt(g, seeds, Options(100, 1e9), &rng), 0u);
}

TEST(TcltTest, RepeatedInteractionsContributeOnce) {
  // Node 2 has two in-neighbours (weights 1/2). A single active neighbour
  // spamming cannot push the accumulated weight past 1/2.
  InteractionGraph g(3);
  for (int i = 0; i < 20; ++i) g.AddInteraction(0, 2, i + 1);
  g.AddInteraction(1, 2, 100);
  Rng rng(9);
  // With threshold forced above 1/2 via many trials: count activations of
  // node 2 when only seed 0 is active within window; should be ~50% (the
  // probability threshold <= 1/2), never ~100%.
  size_t active_count = 0;
  const size_t trials = 400;
  for (size_t t = 0; t < trials; ++t) {
    Rng trial_rng(t);
    const size_t spread =
        SimulateTclt(g, std::vector<NodeId>{0}, Options(1000), &trial_rng);
    if (spread == 2) ++active_count;
  }
  const double rate = static_cast<double>(active_count) / trials;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(TcltTest, SpreadMonotoneInWeightScale) {
  SyntheticConfig config;
  config.num_nodes = 200;
  config.num_interactions = 3000;
  config.time_span = 5000;
  config.seed = 17;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  const double low = AverageTcltSpread(g, seeds, Options(1000, 0.5), 20, 3);
  const double mid = AverageTcltSpread(g, seeds, Options(1000, 1.0), 20, 3);
  const double high = AverageTcltSpread(g, seeds, Options(1000, 4.0), 20, 3);
  EXPECT_LE(low, mid + 1.0);
  EXPECT_LE(mid, high + 1.0);
}

TEST(TcltTest, WiderWindowSpreadsAtLeastAsFar) {
  SyntheticConfig config;
  config.num_nodes = 150;
  config.num_interactions = 2500;
  config.time_span = 4000;
  config.seed = 29;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const std::vector<NodeId> seeds = {0, 1, 2};
  const double narrow = AverageTcltSpread(g, seeds, Options(100), 20, 5);
  const double wide = AverageTcltSpread(g, seeds, Options(4000), 20, 5);
  EXPECT_LE(narrow, wide + 1.0);
}

TEST(TcltTest, DeterministicGivenSeed) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 400, 1000, 2);
  const std::vector<NodeId> seeds = {0, 1};
  const double a = AverageTcltSpread(g, seeds, Options(200), 10, 42);
  const double b = AverageTcltSpread(g, seeds, Options(200), 10, 42);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ipin
