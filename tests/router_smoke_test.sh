#!/usr/bin/env bash
# Fault drill for the sharded scatter-gather serving tier, end to end
# through the real binaries: ipin_cli builds a full index, ipin_shard
# splits it into per-shard indexes plus a shard map, one ipin_oracled per
# shard serves its piece, and ipin_routerd fans queries out and merges the
# partials. The drill asserts the tier's four headline guarantees:
#   (a) EXACTNESS — the router's merged answer over all-healthy shards is
#       bit-identical (same printed digits) to the single-process daemon's
#       answer, for group-influence queries and the top-k ranking alike,
#   (b) DEGRADATION — SIGKILLing one shard mid-burst yields degraded
#       partial answers (degraded=1, shards_answered=N-1, coverage<1),
#       never errors, while seeds owned by live shards keep exact answers,
#   (c) RECOVERY — restarting the dead shard closes the circuit via the
#       router's probes and answers go back to exact and undegraded,
#   (d) RESHARD SAFETY — a corrupt shard-map reload rolls back (old epoch
#       keeps routing), and a SIGTERM drains cleanly.
#
# Invoked by ctest: $1=ipin_cli $2=ipin_oracled $3=ipin_oracle_client
# $4=ipin_routerd $5=ipin_shard $6=obs mode ("obs-enabled"/"obs-disabled").
# Optional: $7=artifact dir (falls back to $IPIN_SMOKE_ARTIFACTS; the
# router's metrics report, flight-recorder dump, and run ledger are copied
# there for CI upload).
set -euo pipefail

CLI="$1"
DAEMON="$2"
CLIENT="$3"
ROUTER="$4"
SHARD_TOOL="$5"
OBS_MODE="${6:-obs-enabled}"
ARTIFACTS="${7:-${IPIN_SMOKE_ARTIFACTS:-}}"
WORK="$(mktemp -d)"
ROUTER_SOCK="${WORK}/router.sock"
SINGLE_SOCK="${WORK}/single.sock"
NUM_SHARDS=3
PIDFILE_DIR="${WORK}/pids"
mkdir -p "${PIDFILE_DIR}"

# Every daemon start drops a PID file so cleanup can kill them ALL on any
# exit path — a mid-drill failure must not leak router or shard processes.
register_pid() {
  echo "$1" > "${PIDFILE_DIR}/$2.pid"
}

cleanup() {
  local pidfile pid
  for pidfile in "${PIDFILE_DIR}"/*.pid; do
    [ -e "${pidfile}" ] || continue
    pid="$(cat "${pidfile}")"
    kill -KILL "${pid}" 2>/dev/null || true
  done
  local job
  for job in $(jobs -p); do kill -KILL "${job}" 2>/dev/null || true; done
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "router smoke FAILED: $*" >&2; exit 1; }

# Waits for a daemon's port file ($1) to report the freshly started pid
# ($2); $3 is the log file for diagnostics. Daemons write the file (via
# rename) only once their socket is accepting, so a pid match means ready —
# and a stale file from a previous incarnation can never satisfy it.
wait_ready() {
  for _ in $(seq 1 150); do
    if [ -f "$1" ] && grep -q "pid=$2 " "$1"; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then
      cat "$3" >&2
      fail "daemon (pid $2) died before publishing $1"
    fi
    sleep 0.1
  done
  cat "$3" >&2
  fail "no port file $1 from pid $2"
}

# Extracts "key=value" from client output.
field() { sed -n "s/.*$2=\([^ ]*\).*/\1/p" "$1" | head -1; }

start_shard() {
  local i="$1"
  "${DAEMON}" --index="${WORK}/piece${i}.bin" --socket="${WORK}/shard${i}.sock" \
    --port_file="${WORK}/shard${i}.port" \
    --shard_id="${i}" --shard_count="${NUM_SHARDS}" --workers=2 \
    > "${WORK}/shard${i}.log" 2>&1 &
  register_pid $! "shard${i}"
  wait_ready "${WORK}/shard${i}.port" "$!" "${WORK}/shard${i}.log"
}

# --- Build the dataset, the full index, and the shard split ---------------
"${CLI}" generate --dataset=slashdot --scale=0.01 --out="${WORK}/net.txt" \
  > /dev/null
"${CLI}" build-index --in="${WORK}/net.txt" --window-pct=10 \
  --out="${WORK}/index.bin" > /dev/null

"${SHARD_TOOL}" split --index="${WORK}/index.bin" --shards="${NUM_SHARDS}" \
  --out_prefix="${WORK}/piece" --map_out="${WORK}/map.json" \
  --socket_prefix="${WORK}/shard" > "${WORK}/split.txt"
grep -q "wrote map" "${WORK}/split.txt" || fail "split did not write the map"
cp "${WORK}/map.json" "${WORK}/map.good"
"${SHARD_TOOL}" show --map="${WORK}/map.json" --nodes=1000 \
  | grep -q "shard0" || fail "show does not list shard0"

# --- Start the fleet: N shards, the reference daemon, and the router ------
for i in $(seq 0 $((NUM_SHARDS - 1))); do start_shard "${i}"; done

"${DAEMON}" --index="${WORK}/index.bin" --socket="${SINGLE_SOCK}" \
  --port_file="${WORK}/single.port" \
  --workers=2 > "${WORK}/single.log" 2>&1 &
register_pid $! "single"
wait_ready "${WORK}/single.port" "$!" "${WORK}/single.log"

"${ROUTER}" --map="${WORK}/map.json" --socket="${ROUTER_SOCK}" --workers=2 \
  --port_file="${WORK}/router.port" \
  --suspect_after=1 --down_after=2 --probe_interval_ms=100 \
  --ledger_dir="${WORK}/ledger" --metrics_out="${WORK}/router_metrics.json" \
  > "${WORK}/router.log" 2>&1 &
ROUTER_PID=$!
register_pid "${ROUTER_PID}" "router"
wait_ready "${WORK}/router.port" "${ROUTER_PID}" "${WORK}/router.log"

# --- Phase 1: merged answers are exactly the single-process answers -------
for seeds in "0" "0,1,2" "3,7,11,15" "0,1,2,3,4,5,6,7,8,9"; do
  "${CLIENT}" --socket="${ROUTER_SOCK}" --seeds="${seeds}" --mode=sketch \
    > "${WORK}/q_router.txt"
  "${CLIENT}" --socket="${SINGLE_SOCK}" --seeds="${seeds}" --mode=sketch \
    > "${WORK}/q_single.txt"
  grep -q "status=OK" "${WORK}/q_router.txt" \
    || fail "router query {${seeds}} not OK"
  routed="$(field "${WORK}/q_router.txt" estimate)"
  direct="$(field "${WORK}/q_single.txt" estimate)"
  [ "${routed}" = "${direct}" ] \
    || fail "merge not exact for {${seeds}}: router=${routed} single=${direct}"
  [ "$(field "${WORK}/q_router.txt" degraded)" = "0" ] \
    || fail "healthy-fleet answer marked degraded"
  # shards_total counts the shards that OWN part of this query (a 1-seed
  # query has one leg); with a healthy fleet every owner must answer.
  [ "$(field "${WORK}/q_router.txt" shards_answered)" = \
    "$(field "${WORK}/q_router.txt" shards_total)" ] \
    || fail "healthy fleet answered with missing shards"
  [ "$(field "${WORK}/q_router.txt" coverage)" = "1.000" ] \
    || fail "healthy-fleet coverage is not 1.000"
done

# The merged top-k ranking (ids AND estimates, in order) matches too.
"${CLIENT}" --socket="${ROUTER_SOCK}" --method=topk --k=5 \
  > "${WORK}/topk_router.txt"
"${CLIENT}" --socket="${SINGLE_SOCK}" --method=topk --k=5 \
  > "${WORK}/topk_single.txt"
routed="$(field "${WORK}/topk_router.txt" topk)"
direct="$(field "${WORK}/topk_single.txt" topk)"
[ -n "${routed}" ] || fail "router topk printed nothing"
[ "${routed}" = "${direct}" ] \
  || fail "topk merge mismatch: router=${routed} single=${direct}"

# --- Phase 2: SIGKILL one shard mid-burst; partials, never errors ---------
# The victim is the owner of seed 0, so the post-kill query for seed 0 is
# guaranteed to be a degraded partial rather than a lucky full answer.
VICTIM="$("${SHARD_TOOL}" owner --map="${WORK}/map.json" --node=0 \
  | sed -n 's/.*shard=\([0-9]*\).*/\1/p')"
[ -n "${VICTIM}" ] || fail "cannot resolve the owner of seed 0"

"${CLIENT}" --socket="${ROUTER_SOCK}" --seeds=0,1,2,3,4,5,6,7 --mode=sketch \
  --requests=2000 --concurrency=8 > "${WORK}/burst.txt" || true &
BURST_JOB=$!
sleep 0.1
kill -KILL "$(cat "${PIDFILE_DIR}/shard${VICTIM}.pid")"
wait "${BURST_JOB}" || true
cat "${WORK}/burst.txt"
ok="$(field "${WORK}/burst.txt" ok)"
bad="$(field "${WORK}/burst.txt" bad)"
unavailable="$(field "${WORK}/burst.txt" unavailable)"
transport="$(field "${WORK}/burst.txt" transport_errors)"
[ "${ok}" -ge 1500 ] || fail "burst mostly failed after shard kill (ok=${ok})"
[ "${bad}" -eq 0 ] || fail "BAD_REQUEST during shard-kill burst"
[ "${unavailable}" -eq 0 ] \
  || fail "router answered UNAVAILABLE with ${NUM_SHARDS}-1 shards healthy"
[ "${transport}" -eq 0 ] || fail "router connections broke during the kill"

# The burst's timing vs the kill is racy by design; deterministically feed
# the health tracker enough failures to open the circuit (down_after=2)
# before asserting on steady state.
for _ in 1 2 3; do
  "${CLIENT}" --socket="${ROUTER_SOCK}" --seeds=0 --mode=sketch \
    > /dev/null 2>&1 || true
done

# Steady state with the victim down: a seed it owned gets a degraded
# partial with the conservative coverage accounting; seeds wholly owned by
# the survivors still get exact undegraded answers.
"${CLIENT}" --socket="${ROUTER_SOCK}" --seeds=0,1,2,3,4,5,6,7 --mode=sketch \
  > "${WORK}/q_partial.txt"
grep -q "status=OK" "${WORK}/q_partial.txt" \
  || fail "query with a dead shard must still answer OK"
[ "$(field "${WORK}/q_partial.txt" degraded)" = "1" ] \
  || fail "dead-shard answer not marked degraded"
total="$(field "${WORK}/q_partial.txt" shards_total)"
[ "$(field "${WORK}/q_partial.txt" shards_answered)" = "$((total - 1))" ] \
  || fail "expected all but the dead shard to answer"
coverage="$(field "${WORK}/q_partial.txt" coverage)"
[ "${coverage}" != "1.000" ] || fail "partial answer claims full coverage"

"${CLIENT}" --socket="${ROUTER_SOCK}" --method=stats > "${WORK}/stats.txt"
[ "$(field "${WORK}/stats.txt" shards_total)" = "${NUM_SHARDS}" ] \
  || fail "stats shards_total wrong"
down="$(field "${WORK}/stats.txt" shards_down)"
[ "${down}" -ge 1 ] || fail "stats does not report the dead shard as down"

# --- Phase 3: restart the victim; probes close the circuit ----------------
start_shard "${VICTIM}"
recovered=0
for _ in $(seq 1 100); do
  "${CLIENT}" --socket="${ROUTER_SOCK}" --seeds=0,1,2 --mode=sketch \
    > "${WORK}/q_rec.txt" || true
  if grep -q "status=OK" "${WORK}/q_rec.txt" \
     && [ "$(field "${WORK}/q_rec.txt" degraded)" = "0" ]; then
    recovered=1
    break
  fi
  sleep 0.1
done
[ "${recovered}" -eq 1 ] || fail "router did not recover the restarted shard"
"${CLIENT}" --socket="${SINGLE_SOCK}" --seeds=0,1,2 --mode=sketch \
  > "${WORK}/q_single2.txt"
[ "$(field "${WORK}/q_rec.txt" estimate)" = \
  "$(field "${WORK}/q_single2.txt" estimate)" ] \
  || fail "post-recovery answer is not exact again"

# --- Phase 4: corrupt shard-map reload rolls back -------------------------
echo '{"schema": "ipin.shardmap.v1", "shards": [' > "${WORK}/map.json"
"${CLIENT}" --socket="${ROUTER_SOCK}" --method=reload > "${WORK}/r_bad.txt" \
  || true
grep -q "rolled_back=1" "${WORK}/r_bad.txt" \
  || fail "corrupt map reload did not report rollback"
"${CLIENT}" --socket="${ROUTER_SOCK}" --seeds=0,1,2 --mode=sketch \
  > "${WORK}/q_after_bad.txt"
grep -q "status=OK" "${WORK}/q_after_bad.txt" \
  || fail "router stopped serving after a rolled-back map reload"
[ "$(field "${WORK}/q_after_bad.txt" degraded)" = "0" ] \
  || fail "rolled-back map degraded the answer"

cp "${WORK}/map.good" "${WORK}/map.json"
"${CLIENT}" --socket="${ROUTER_SOCK}" --method=reload > "${WORK}/r_good.txt"
grep -q "rolled_back=0" "${WORK}/r_good.txt" \
  || fail "reload of the restored map rolled back"

# --- Phase 5: clean drain -------------------------------------------------
# Grab the flight recorder for the artifact bundle before draining.
"${CLIENT}" --socket="${ROUTER_SOCK}" --method=debug > "${WORK}/debug.txt" \
  || true

kill -TERM "${ROUTER_PID}"
rc=0
wait "${ROUTER_PID}" || rc=$?
rm -f "${PIDFILE_DIR}/router.pid"
[ "${rc}" -eq 0 ] || { cat "${WORK}/router.log" >&2; \
  fail "router drain exited ${rc}"; }
grep -q "ipin_routerd: drained, exiting" "${WORK}/router.log" \
  || fail "router missing drain line"
test ! -e "${ROUTER_SOCK}" || fail "router socket not unlinked after drain"

if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"serve.shard.legs"' "${WORK}/router_metrics.json" \
    || fail "router metrics missing serve.shard.legs"
  grep -q '"serve.requests.partial"' "${WORK}/router_metrics.json" \
    || fail "router metrics missing serve.requests.partial"
fi

if [ -n "${ARTIFACTS}" ]; then
  mkdir -p "${ARTIFACTS}"
  cp -f "${WORK}/router_metrics.json" "${ARTIFACTS}/" 2>/dev/null || true
  cp -f "${WORK}/debug.txt" "${ARTIFACTS}/router_flight_recorder.txt" \
    2>/dev/null || true
  cp -rf "${WORK}/ledger" "${ARTIFACTS}/router_ledger" 2>/dev/null || true
fi

echo "router smoke test OK"
