// Robustness fuzzing of the text/binary parsers: random byte soup must
// never crash the loaders — they either parse or cleanly return nullopt.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/core/oracle_io.h"
#include "ipin/graph/graph_io.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_fuzz_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

std::string RandomBytes(Rng* rng, size_t length, bool printable) {
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      // Digits, whitespace, minus signs, newlines — parser-adjacent soup.
      static const char kAlphabet[] = "0123456789 -\t\n#%abcxyz.";
      s.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
    } else {
      s.push_back(static_cast<char>(rng->NextUint64() & 0xff));
    }
  }
  return s;
}

TEST_F(IoFuzzTest, EdgeListLoaderSurvivesTextSoup) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    WriteBytes(RandomBytes(&rng, 1 + rng.NextBounded(2000), true));
    const auto result = LoadInteractionsFromFile(path_);
    if (result.has_value()) {
      EXPECT_TRUE(result->is_sorted());  // contract holds when it parses
    }
  }
}

TEST_F(IoFuzzTest, EdgeListLoaderSurvivesBinarySoup) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    WriteBytes(RandomBytes(&rng, 1 + rng.NextBounded(4000), false));
    (void)LoadInteractionsFromFile(path_);  // must not crash
  }
}

TEST_F(IoFuzzTest, DimacsLoaderSurvivesSoup) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup = "p sp 5 3\n";  // sometimes give it a valid header
    if (trial % 2 == 0) soup.clear();
    soup += RandomBytes(&rng, 1 + rng.NextBounded(1000), true);
    WriteBytes(soup);
    (void)LoadDimacs(path_);  // must not crash
  }
}

TEST_F(IoFuzzTest, IndexLoaderSurvivesBinarySoup) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::string soup;
    if (trial % 3 == 0) soup += "IPINIDX1";  // valid magic, garbage body
    soup += RandomBytes(&rng, 1 + rng.NextBounded(3000), false);
    WriteBytes(soup);
    EXPECT_FALSE(LoadInfluenceIndex(path_).has_value());
  }
}

TEST(VhllFuzzTest, DeserializeSurvivesBitFlips) {
  // A valid blob with one flipped byte must either fail cleanly or yield a
  // sketch that still satisfies its invariants.
  VersionedHll sketch(5, 3);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    sketch.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(50)));
  }
  std::string blob;
  sketch.Serialize(&blob);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = blob;
    const size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    size_t offset = 0;
    const auto result = VersionedHll::Deserialize(corrupted, &offset);
    if (result.has_value()) {
      EXPECT_TRUE(result->CheckInvariants());
    }
  }
}

}  // namespace
}  // namespace ipin
