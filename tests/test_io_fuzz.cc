// Robustness fuzzing of the text/binary parsers: random byte soup must
// never crash the loaders — they either parse or cleanly return nullopt.

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/core/checkpoint.h"
#include "ipin/core/oracle_io.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/graph/graph_io.h"
#include "ipin/sketch/versioned_bottom_k.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_fuzz_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

std::string RandomBytes(Rng* rng, size_t length, bool printable) {
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      // Digits, whitespace, minus signs, newlines — parser-adjacent soup.
      static const char kAlphabet[] = "0123456789 -\t\n#%abcxyz.";
      s.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
    } else {
      s.push_back(static_cast<char>(rng->NextUint64() & 0xff));
    }
  }
  return s;
}

TEST_F(IoFuzzTest, EdgeListLoaderSurvivesTextSoup) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    WriteBytes(RandomBytes(&rng, 1 + rng.NextBounded(2000), true));
    const auto result = LoadInteractionsFromFile(path_);
    if (result.has_value()) {
      EXPECT_TRUE(result->is_sorted());  // contract holds when it parses
    }
  }
}

TEST_F(IoFuzzTest, EdgeListLoaderSurvivesBinarySoup) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    WriteBytes(RandomBytes(&rng, 1 + rng.NextBounded(4000), false));
    (void)LoadInteractionsFromFile(path_);  // must not crash
  }
}

TEST_F(IoFuzzTest, DimacsLoaderSurvivesSoup) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup = "p sp 5 3\n";  // sometimes give it a valid header
    if (trial % 2 == 0) soup.clear();
    soup += RandomBytes(&rng, 1 + rng.NextBounded(1000), true);
    WriteBytes(soup);
    (void)LoadDimacs(path_);  // must not crash
  }
}

TEST_F(IoFuzzTest, IndexLoaderSurvivesBinarySoup) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::string soup;
    if (trial % 3 == 0) soup += "IPINIDX1";  // valid magic, garbage body
    soup += RandomBytes(&rng, 1 + rng.NextBounded(3000), false);
    WriteBytes(soup);
    EXPECT_FALSE(LoadInfluenceIndex(path_).has_value());
  }
}

// Randomized corruption of a *valid* saved index: for every bit flip or
// truncation, the load must either reject the file or serve only sections
// whose checksums verify — a node estimate is the saved value or 0 (its
// section was dropped), never silently-wrong data.
TEST_F(IoFuzzTest, SavedIndexSurvivesRandomCorruption) {
  const InteractionGraph g = GenerateUniformRandomNetwork(300, 900, 2000, 21);
  const IrsApprox index = IrsApprox::Compute(g, 100, {/*precision=*/4});
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  std::string pristine;
  {
    std::ifstream in(path_, std::ios::binary);
    pristine.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }

  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = pristine;
    if (trial % 2 == 0) {
      corrupted[rng.NextBounded(corrupted.size())] ^=
          static_cast<char>(1u << rng.NextBounded(8));
    } else {
      corrupted.resize(rng.NextBounded(corrupted.size()));
    }
    WriteBytes(corrupted);

    const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
    if (!result.usable()) continue;  // clean rejection is always fine
    ASSERT_EQ(result.index->num_nodes(), index.num_nodes()) << trial;
    for (NodeId u = 0; u < index.num_nodes(); ++u) {
      const double got = result.index->EstimateIrsSize(u);
      const double want = index.EstimateIrsSize(u);
      EXPECT_TRUE(got == want || got == 0.0)
          << "trial " << trial << " node " << u << ": silently-wrong estimate "
          << got << " (saved " << want << ")";
    }
  }
}

// Randomized corruption of checkpoint files: a resumed build must never
// crash and must always end bit-identical to an uninterrupted run (a
// damaged checkpoint is skipped, worst case falling back to a fresh scan).
TEST_F(IoFuzzTest, CheckpointResumeSurvivesRandomCorruption) {
  namespace fs = std::filesystem;
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 160, 400, 22);
  const IrsExact want = IrsExact::Compute(g, 60);

  const std::string dir = path_ + ".ckpt";
  const CheckpointOptions options{dir, /*every_edges=*/32, /*keep=*/3};
  (void)ComputeIrsExactCheckpointed(g, 60, options);
  std::vector<std::pair<std::string, std::string>> pristine;  // path, bytes
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    pristine.emplace_back(entry.path().string(),
                          std::string((std::istreambuf_iterator<char>(in)),
                                      std::istreambuf_iterator<char>()));
  }
  ASSERT_FALSE(pristine.empty());

  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    // Restore all files, then damage a random subset.
    for (const auto& [p, bytes] : pristine) {
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    for (const auto& [p, bytes] : pristine) {
      if (rng.NextBounded(2) == 0) continue;
      std::string corrupted = bytes;
      if (rng.NextBounded(2) == 0) {
        corrupted[rng.NextBounded(corrupted.size())] ^=
            static_cast<char>(1u << rng.NextBounded(8));
      } else {
        corrupted.resize(rng.NextBounded(corrupted.size()));
      }
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    const IrsExact got = ComputeIrsExactCheckpointed(g, 60, options);
    for (NodeId u = 0; u < want.num_nodes(); ++u) {
      ASSERT_EQ(got.Summary(u).size(), want.Summary(u).size())
          << "trial " << trial << " node " << u;
      for (const auto& [v, t] : want.Summary(u)) {
        const auto it = got.Summary(u).find(v);
        ASSERT_NE(it, got.Summary(u).end()) << trial;
        ASSERT_EQ(it->second, t) << trial;
      }
    }
    // The rerun may have rewritten checkpoints; re-list for the next round.
    pristine.clear();
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::ifstream in(entry.path(), std::ios::binary);
      pristine.emplace_back(entry.path().string(),
                            std::string((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>()));
    }
  }
  fs::remove_all(dir);
}

TEST(VhllFuzzTest, DeserializeSurvivesBitFlips) {
  // A valid blob with one flipped byte must either fail cleanly or yield a
  // sketch that still satisfies its invariants.
  VersionedHll sketch(5, 3);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    sketch.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(50)));
  }
  std::string blob;
  sketch.Serialize(&blob);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = blob;
    const size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    size_t offset = 0;
    const auto result = VersionedHll::Deserialize(corrupted, &offset);
    if (result.has_value()) {
      EXPECT_TRUE(result->CheckInvariants());
    }
  }
}

TEST(BottomKFuzzTest, DeserializeSurvivesBitFlips) {
  VersionedBottomK sketch(16, 3);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    sketch.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(50)));
  }
  std::string blob;
  sketch.Serialize(&blob);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = blob;
    const size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    size_t offset = 0;
    const auto result = VersionedBottomK::Deserialize(corrupted, &offset);
    if (result.has_value()) {
      EXPECT_TRUE(result->CheckInvariants());
    }
  }
}

}  // namespace
}  // namespace ipin
