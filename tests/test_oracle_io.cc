#include "ipin/core/oracle_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

class OracleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_index_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(VhllSerializeTest, RoundtripPreservesEverything) {
  VersionedHll original(7, 42);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    original.Add(rng.NextUint64(),
                 static_cast<Timestamp>(rng.NextBounded(1000)));
  }
  std::string blob;
  original.Serialize(&blob);
  size_t offset = 0;
  const auto restored = VersionedHll::Deserialize(blob, &offset);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(restored->precision(), 7);
  EXPECT_EQ(restored->salt(), 42u);
  EXPECT_EQ(restored->NumEntries(), original.NumEntries());
  EXPECT_DOUBLE_EQ(restored->Estimate(), original.Estimate());
  for (size_t c = 0; c < original.num_cells(); ++c) {
    const auto& a = original.cell(c);
    const auto& b = restored->cell(c);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rank, b[i].rank);
      EXPECT_EQ(a[i].time, b[i].time);
    }
  }
}

TEST(VhllSerializeTest, TruncatedBlobRejected) {
  VersionedHll sketch(5);
  sketch.Add(1, 10);
  sketch.Add(2, 20);
  std::string blob;
  sketch.Serialize(&blob);
  for (const size_t cut : {size_t{0}, size_t{1}, blob.size() / 2,
                           blob.size() - 1}) {
    size_t offset = 0;
    EXPECT_FALSE(
        VersionedHll::Deserialize(std::string_view(blob.data(), cut), &offset)
            .has_value())
        << "cut " << cut;
  }
}

TEST(VhllSerializeTest, CorruptVersionRejected) {
  VersionedHll sketch(5);
  sketch.Add(1, 10);
  std::string blob;
  sketch.Serialize(&blob);
  blob[0] = 99;  // bogus format version
  size_t offset = 0;
  EXPECT_FALSE(VersionedHll::Deserialize(blob, &offset).has_value());
}

TEST(VhllSerializeTest, MultipleSketchesInOneBuffer) {
  VersionedHll a(4, 1);
  VersionedHll b(6, 2);
  a.Add(10, 1);
  b.Add(20, 2);
  std::string blob;
  a.Serialize(&blob);
  b.Serialize(&blob);
  size_t offset = 0;
  const auto ra = VersionedHll::Deserialize(blob, &offset);
  const auto rb = VersionedHll::Deserialize(blob, &offset);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(ra->precision(), 4);
  EXPECT_EQ(rb->precision(), 6);
  EXPECT_EQ(rb->salt(), 2u);
}

TEST_F(OracleIoTest, IndexRoundtripPreservesEstimates) {
  const InteractionGraph g = GenerateUniformRandomNetwork(120, 1500, 4000, 9);
  IrsApproxOptions options;
  options.precision = 8;
  options.salt = 7;
  const IrsApprox index = IrsApprox::Compute(g, 800, options);

  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  const auto loaded = LoadInfluenceIndex(path_);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->num_nodes(), index.num_nodes());
  EXPECT_EQ(loaded->window(), index.window());
  EXPECT_EQ(loaded->options().precision, 8);
  EXPECT_EQ(loaded->options().salt, 7u);
  EXPECT_EQ(loaded->TotalSketchEntries(), index.TotalSketchEntries());
  EXPECT_EQ(loaded->NumAllocatedSketches(), index.NumAllocatedSketches());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(loaded->EstimateIrsSize(u), index.EstimateIrsSize(u));
  }
  const std::vector<NodeId> seeds = {0, 10, 20, 30};
  EXPECT_DOUBLE_EQ(loaded->EstimateUnionSize(seeds),
                   index.EstimateUnionSize(seeds));
}

TEST_F(OracleIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadInfluenceIndex("/nonexistent/nothing.bin").has_value());
}

TEST_F(OracleIoTest, GarbageFileFails) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is definitely not an influence index";
  out.close();
  EXPECT_FALSE(LoadInfluenceIndex(path_).has_value());
}

TEST_F(OracleIoTest, TruncatedIndexFails) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 300, 800, 3);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index = IrsApprox::Compute(g, 200, options);
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));

  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents.resize(contents.size() / 2);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();

  EXPECT_FALSE(LoadInfluenceIndex(path_).has_value());
}

TEST_F(OracleIoTest, EmptyIndexRoundtrips) {
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index(5, 10, options);  // no interactions processed
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  const auto loaded = LoadInfluenceIndex(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 5u);
  EXPECT_EQ(loaded->NumAllocatedSketches(), 0u);
}

}  // namespace
}  // namespace ipin
