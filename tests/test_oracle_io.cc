#include "ipin/core/oracle_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

class OracleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_index_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::remove(path_.c_str());
  }

  std::string ReadFileBytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void WriteFileBytes(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::string path_;
};

TEST(VhllSerializeTest, RoundtripPreservesEverything) {
  VersionedHll original(7, 42);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    original.Add(rng.NextUint64(),
                 static_cast<Timestamp>(rng.NextBounded(1000)));
  }
  std::string blob;
  original.Serialize(&blob);
  size_t offset = 0;
  const auto restored = VersionedHll::Deserialize(blob, &offset);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(restored->precision(), 7);
  EXPECT_EQ(restored->salt(), 42u);
  EXPECT_EQ(restored->NumEntries(), original.NumEntries());
  EXPECT_DOUBLE_EQ(restored->Estimate(), original.Estimate());
  for (size_t c = 0; c < original.num_cells(); ++c) {
    const auto& a = original.cell(c);
    const auto& b = restored->cell(c);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rank, b[i].rank);
      EXPECT_EQ(a[i].time, b[i].time);
    }
  }
}

TEST(VhllSerializeTest, TruncatedBlobRejected) {
  VersionedHll sketch(5);
  sketch.Add(1, 10);
  sketch.Add(2, 20);
  std::string blob;
  sketch.Serialize(&blob);
  for (const size_t cut : {size_t{0}, size_t{1}, blob.size() / 2,
                           blob.size() - 1}) {
    size_t offset = 0;
    EXPECT_FALSE(
        VersionedHll::Deserialize(std::string_view(blob.data(), cut), &offset)
            .has_value())
        << "cut " << cut;
  }
}

TEST(VhllSerializeTest, CorruptVersionRejected) {
  VersionedHll sketch(5);
  sketch.Add(1, 10);
  std::string blob;
  sketch.Serialize(&blob);
  blob[0] = 99;  // bogus format version
  size_t offset = 0;
  EXPECT_FALSE(VersionedHll::Deserialize(blob, &offset).has_value());
}

TEST(VhllSerializeTest, MultipleSketchesInOneBuffer) {
  VersionedHll a(4, 1);
  VersionedHll b(6, 2);
  a.Add(10, 1);
  b.Add(20, 2);
  std::string blob;
  a.Serialize(&blob);
  b.Serialize(&blob);
  size_t offset = 0;
  const auto ra = VersionedHll::Deserialize(blob, &offset);
  const auto rb = VersionedHll::Deserialize(blob, &offset);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(ra->precision(), 4);
  EXPECT_EQ(rb->precision(), 6);
  EXPECT_EQ(rb->salt(), 2u);
}

TEST_F(OracleIoTest, IndexRoundtripPreservesEstimates) {
  const InteractionGraph g = GenerateUniformRandomNetwork(120, 1500, 4000, 9);
  IrsApproxOptions options;
  options.precision = 8;
  options.salt = 7;
  const IrsApprox index = IrsApprox::Compute(g, 800, options);

  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  const auto loaded = LoadInfluenceIndex(path_);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->num_nodes(), index.num_nodes());
  EXPECT_EQ(loaded->window(), index.window());
  EXPECT_EQ(loaded->options().precision, 8);
  EXPECT_EQ(loaded->options().salt, 7u);
  EXPECT_EQ(loaded->TotalSketchEntries(), index.TotalSketchEntries());
  EXPECT_EQ(loaded->NumAllocatedSketches(), index.NumAllocatedSketches());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(loaded->EstimateIrsSize(u), index.EstimateIrsSize(u));
  }
  const std::vector<NodeId> seeds = {0, 10, 20, 30};
  EXPECT_DOUBLE_EQ(loaded->EstimateUnionSize(seeds),
                   index.EstimateUnionSize(seeds));
}

TEST_F(OracleIoTest, MissingFileFails) {
  const IndexLoadResult result =
      LoadInfluenceIndexDetailed("/nonexistent/nothing.bin");
  EXPECT_EQ(result.status, IndexLoadStatus::kMissing);
  EXPECT_FALSE(result.usable());
  EXPECT_FALSE(LoadInfluenceIndex("/nonexistent/nothing.bin").has_value());
}

TEST_F(OracleIoTest, GarbageFileFails) {
  WriteFileBytes("this is definitely not an influence index");
  const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
  EXPECT_EQ(result.status, IndexLoadStatus::kCorrupt);
  EXPECT_FALSE(result.usable());
}

// Truncation in the new framed format is recoverable: the sections cut off
// are reported dropped and the surviving ones are served (degraded), never
// silently-wrong data.
TEST_F(OracleIoTest, TruncatedIndexDegradesNotLies) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 300, 800, 3);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index = IrsApprox::Compute(g, 200, options);
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));

  std::string contents = ReadFileBytes();
  contents.resize(contents.size() / 2);
  WriteFileBytes(contents);

  const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
  EXPECT_EQ(result.status, IndexLoadStatus::kDegraded);
  ASSERT_TRUE(result.usable());
  EXPECT_GT(result.sections_dropped, 0u);
  // Nodes whose section was cut off report an empty IRS, not garbage.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double estimate = result.index->EstimateIrsSize(u);
    EXPECT_TRUE(estimate == 0.0 || estimate == index.EstimateIrsSize(u));
  }
}

// A bit flip inside one section drops only that section: every node outside
// it keeps a bit-identical sketch.
TEST_F(OracleIoTest, CorruptSectionDropsOnlyItself) {
  const InteractionGraph g = GenerateUniformRandomNetwork(600, 4000, 9000, 11);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index = IrsApprox::Compute(g, 2000, options);
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));

  std::string contents = ReadFileBytes();
  contents[contents.size() * 3 / 4] ^= 0x40;  // lands in a later chunk
  WriteFileBytes(contents);

  const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
  EXPECT_EQ(result.status, IndexLoadStatus::kDegraded);
  ASSERT_TRUE(result.usable());
  EXPECT_GE(result.sections_total, 3u);
  EXPECT_GT(result.sections_dropped, 0u);
  EXPECT_LT(result.sections_dropped, result.sections_total);
  // The first chunk (nodes 0..255) precedes the flipped byte and must be
  // intact.
  for (NodeId u = 0; u < 256; ++u) {
    EXPECT_DOUBLE_EQ(result.index->EstimateIrsSize(u),
                     index.EstimateIrsSize(u));
  }
}

// A failed save must leave the previous index untouched (atomicity).
TEST_F(OracleIoTest, FailedSaveLeavesOldIndexIntact) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 400, 900, 5);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index = IrsApprox::Compute(g, 300, options);
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  const std::string before = ReadFileBytes();

  ASSERT_TRUE(failpoint::Set("safe_io.commit", "error"));
  const IrsApprox other = IrsApprox::Compute(g, 500, options);
  EXPECT_FALSE(SaveInfluenceIndex(other, path_));
  failpoint::ClearAll();

  EXPECT_EQ(ReadFileBytes(), before);
  const auto loaded = LoadInfluenceIndex(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->window(), 300);
}

// The oracle_io.write.short failpoint produces CRC-valid but unparsable
// sections — the "torn section" flavor of damage. Load degrades instead of
// crashing or fabricating sketches.
TEST_F(OracleIoTest, TornSectionsDegradeGracefully) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 300, 800, 7);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index = IrsApprox::Compute(g, 200, options);
  ASSERT_TRUE(failpoint::Set("oracle_io.write.short", "short_write(12)"));
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  failpoint::ClearAll();

  const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
  EXPECT_EQ(result.status, IndexLoadStatus::kDegraded);
  ASSERT_TRUE(result.usable());
  EXPECT_EQ(result.sections_dropped, result.sections_total);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(result.index->EstimateIrsSize(u), 0.0);
  }
}

// Files written by the pre-safe_io in-place format are still readable.
TEST_F(OracleIoTest, LegacyFormatStillLoads) {
  VersionedHll sketch(6, 3);
  sketch.Add(42, 10);
  sketch.Add(7, 20);

  std::string legacy = "IPINIDX1";
  const auto append = [&legacy](const void* p, size_t n) {
    legacy.append(reinterpret_cast<const char*>(p), n);
  };
  const int64_t window = 123;
  const uint8_t precision = 6;
  const uint64_t salt = 3;
  const uint64_t num_nodes = 3;
  append(&window, sizeof(window));
  append(&precision, sizeof(precision));
  append(&salt, sizeof(salt));
  append(&num_nodes, sizeof(num_nodes));
  const uint8_t absent = 0, present = 1;
  append(&absent, 1);
  append(&present, 1);
  sketch.Serialize(&legacy);
  append(&absent, 1);
  WriteFileBytes(legacy);

  const IndexLoadResult result = LoadInfluenceIndexDetailed(path_);
  EXPECT_EQ(result.status, IndexLoadStatus::kOk);
  ASSERT_TRUE(result.usable());
  EXPECT_EQ(result.index->num_nodes(), 3u);
  EXPECT_EQ(result.index->window(), 123);
  ASSERT_TRUE(result.index->Sketch(1).valid());
  EXPECT_DOUBLE_EQ(result.index->EstimateIrsSize(1), sketch.Estimate());
}

TEST_F(OracleIoTest, EmptyIndexRoundtrips) {
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox index(5, 10, options);  // no interactions processed
  ASSERT_TRUE(SaveInfluenceIndex(index, path_));
  const auto loaded = LoadInfluenceIndex(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 5u);
  EXPECT_EQ(loaded->NumAllocatedSketches(), 0u);
}

}  // namespace
}  // namespace ipin
