#include "ipin/sketch/sketch_arena.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/random.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/source_sets.h"
#include "ipin/graph/interaction_graph.h"

namespace ipin {
namespace {

constexpr int kPrecision = 6;
constexpr uint64_t kSalt = 42;

// A ragged population: some nodes absent, some empty-but-present, some
// dense — the three shapes the arena must pack distinctly.
std::vector<std::unique_ptr<VersionedHll>> BuildSketches(size_t num_nodes,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<VersionedHll>> sketches(num_nodes);
  for (size_t u = 0; u < num_nodes; ++u) {
    if (u % 3 == 1) continue;  // absent
    sketches[u] = std::make_unique<VersionedHll>(kPrecision, kSalt);
    if (u % 3 == 2) continue;  // allocated but empty
    const size_t items = 1 + rng.NextBounded(300);
    for (size_t i = 0; i < items; ++i) {
      sketches[u]->Add(rng.NextUint64(),
                       static_cast<Timestamp>(rng.NextBounded(1000)));
    }
  }
  return sketches;
}

TEST(SketchArenaTest, SerializeNodeIsByteIdenticalToVersionedHll) {
  const auto sketches = BuildSketches(20, 1);
  const SketchArena arena(kPrecision, kSalt, std::span(sketches));
  for (NodeId u = 0; u < 20; ++u) {
    ASSERT_EQ(arena.has_node(u), sketches[u] != nullptr) << "node " << u;
    if (sketches[u] == nullptr) continue;
    std::string want, got;
    sketches[u]->Serialize(&want);
    arena.SerializeNode(u, &got);
    EXPECT_EQ(got, want) << "node " << u;
  }
}

TEST(SketchArenaTest, RankPlaneAndCountsMatchSource) {
  const auto sketches = BuildSketches(20, 2);
  const SketchArena arena(kPrecision, kSalt, std::span(sketches));
  size_t allocated = 0;
  size_t entries = 0;
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_TRUE(arena.CheckNodeInvariants(u)) << "node " << u;
    const auto row = arena.rank_row(u);
    ASSERT_EQ(row.size(), size_t{1} << kPrecision);
    if (sketches[u] == nullptr) {
      for (const uint8_t r : row) EXPECT_EQ(r, 0) << "absent node " << u;
      EXPECT_EQ(arena.NodeNumEntries(u), 0u);
      continue;
    }
    ++allocated;
    entries += sketches[u]->NumEntries();
    EXPECT_EQ(arena.NodeNumEntries(u), sketches[u]->NumEntries());
    const auto want = sketches[u]->max_ranks();
    EXPECT_TRUE(std::equal(row.begin(), row.end(), want.begin(), want.end()))
        << "node " << u;
  }
  EXPECT_EQ(arena.NumAllocated(), allocated);
  EXPECT_EQ(arena.TotalEntries(), entries);
  EXPECT_GT(arena.MemoryUsageBytes(), 0u);
}

TEST(SketchArenaTest, EstimatesMatchSourceSketches) {
  const auto sketches = BuildSketches(20, 3);
  const SketchArena arena(kPrecision, kSalt, std::span(sketches));
  std::vector<uint8_t> scratch_a, scratch_b;
  for (NodeId u = 0; u < 20; ++u) {
    if (sketches[u] == nullptr) continue;
    EXPECT_EQ(arena.EstimateNode(u), sketches[u]->Estimate()) << "node " << u;
    for (const Timestamp bound : {Timestamp{0}, Timestamp{100},
                                  Timestamp{500}, Timestamp{2000}}) {
      EXPECT_EQ(arena.EstimateNodeBefore(u, bound, &scratch_a),
                sketches[u]->EstimateBefore(bound, &scratch_b))
          << "node " << u << " bound " << bound;
    }
  }
}

TEST(SketchArenaTest, MaterializeRoundTrips) {
  const auto sketches = BuildSketches(20, 4);
  const SketchArena arena(kPrecision, kSalt, std::span(sketches));
  for (NodeId u = 0; u < 20; ++u) {
    if (sketches[u] == nullptr) continue;
    const auto copy = arena.MaterializeNode(u);
    ASSERT_NE(copy, nullptr);
    EXPECT_TRUE(copy->CheckInvariants());
    std::string want, got;
    sketches[u]->Serialize(&want);
    copy->Serialize(&got);
    EXPECT_EQ(got, want) << "node " << u;
  }
}

TEST(SketchArenaTest, ViewAgreesAcrossStorageModes) {
  const auto sketches = BuildSketches(20, 5);
  const SketchArena arena(kPrecision, kSalt, std::span(sketches));
  std::vector<uint8_t> scratch_a, scratch_b;
  for (NodeId u = 0; u < 20; ++u) {
    const SketchView build_view(sketches[u].get());
    const SketchView sealed_view(&arena, u);
    ASSERT_EQ(build_view.valid(), sealed_view.valid()) << "node " << u;
    if (!build_view) continue;
    EXPECT_EQ(sealed_view.precision(), build_view.precision());
    EXPECT_EQ(sealed_view.salt(), build_view.salt());
    EXPECT_EQ(sealed_view.NumEntries(), build_view.NumEntries());
    EXPECT_EQ(sealed_view.Estimate(), build_view.Estimate());
    EXPECT_TRUE(sealed_view.CheckInvariants());
    std::string a, b;
    build_view.Serialize(&a);
    sealed_view.Serialize(&b);
    EXPECT_EQ(b, a) << "node " << u;
    EXPECT_EQ(sealed_view.EstimateBefore(400, &scratch_a),
              build_view.EstimateBefore(400, &scratch_b))
        << "node " << u;
    std::vector<uint8_t> ra(size_t{1} << kPrecision, 1);
    std::vector<uint8_t> rb(size_t{1} << kPrecision, 1);
    build_view.MaxRanks(400, &ra);
    sealed_view.MaxRanks(400, &rb);
    EXPECT_EQ(rb, ra) << "node " << u;
  }
}

InteractionGraph TestGraph(size_t num_nodes, size_t num_edges, uint64_t seed) {
  Rng rng(seed);
  InteractionGraph g(num_nodes);
  std::vector<Interaction> edges;
  for (size_t i = 0; i < num_edges; ++i) {
    g.AddInteraction(static_cast<NodeId>(rng.NextBounded(num_nodes)),
                     static_cast<NodeId>(rng.NextBounded(num_nodes)),
                     static_cast<Timestamp>(rng.NextBounded(2000)));
  }
  g.SortByTime();
  return g;
}

// Sealing must not change a single answer: an unsealed hand-fed build and
// an explicitly sealed Compute() result agree bit for bit on every query
// surface.
TEST(SketchArenaTest, SealedIrsAnswersAreBitIdenticalToUnsealed) {
  const InteractionGraph g = TestGraph(40, 800, 9);
  IrsApproxOptions options;
  options.precision = kPrecision;
  options.salt = kSalt;

  IrsApprox streamed(g.num_nodes(), 300, options);
  const auto& edges = g.interactions();
  for (size_t i = edges.size(); i > 0; --i) {
    streamed.ProcessInteraction(edges[i - 1]);
  }
  ASSERT_FALSE(streamed.sealed());

  IrsApprox sealed = IrsApprox::Compute(g, 300, options);
  ASSERT_FALSE(sealed.sealed());  // builds return unsealed
  sealed.Seal();
  ASSERT_TRUE(sealed.sealed());
  ASSERT_NE(sealed.arena(), nullptr);

  EXPECT_EQ(sealed.NumAllocatedSketches(), streamed.NumAllocatedSketches());
  EXPECT_EQ(sealed.TotalSketchEntries(), streamed.TotalSketchEntries());
  EXPECT_EQ(sealed.TotalInsertAttempts(), streamed.TotalInsertAttempts());
  EXPECT_EQ(sealed.TotalEvictions(), streamed.TotalEvictions());

  std::vector<uint8_t> scratch;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(sealed.Sketch(u).valid(), streamed.Sketch(u).valid())
        << "node " << u;
    EXPECT_EQ(sealed.EstimateIrsSize(u), streamed.EstimateIrsSize(u))
        << "node " << u;
    if (!sealed.Sketch(u)) continue;
    std::string a, b;
    streamed.Sketch(u).Serialize(&a);
    sealed.Sketch(u).Serialize(&b);
    EXPECT_EQ(b, a) << "node " << u;
  }
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {1, 2, 3}, {4, 9, 14, 19, 24}, {39}};
  for (const auto& seeds : seed_sets) {
    EXPECT_EQ(sealed.EstimateUnionSize(seeds),
              streamed.EstimateUnionSize(seeds));
    EXPECT_EQ(sealed.EstimateUnionSize(seeds, &scratch),
              streamed.EstimateUnionSize(seeds));
  }
}

TEST(SketchArenaTest, SealedSourceSetsAnswersAreBitIdenticalToUnsealed) {
  const InteractionGraph g = TestGraph(40, 800, 10);
  IrsApproxOptions options;
  options.precision = kPrecision;
  options.salt = kSalt;

  SourceSetApprox streamed(g.num_nodes(), 300, options);
  for (const Interaction& e : g.interactions()) {
    streamed.ProcessInteraction(e);
  }
  ASSERT_FALSE(streamed.sealed());

  const SourceSetApprox sealed = SourceSetApprox::Compute(g, 300, options);
  ASSERT_TRUE(sealed.sealed());

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(sealed.Sketch(v).valid(), streamed.Sketch(v).valid())
        << "node " << v;
    EXPECT_EQ(sealed.EstimateSourceSetSize(v),
              streamed.EstimateSourceSetSize(v))
        << "node " << v;
  }
  EXPECT_EQ(sealed.EstimateUnionSize(std::vector<NodeId>{1, 5, 9}),
            streamed.EstimateUnionSize(std::vector<NodeId>{1, 5, 9}));

  // Sealing the streamed instance by hand converges the storage modes.
  streamed.Seal();
  EXPECT_TRUE(streamed.sealed());
  EXPECT_EQ(sealed.TotalSketchEntries(), streamed.TotalSketchEntries());
}

TEST(SketchArenaDeathTest, ProcessInteractionAfterSealDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 5);
  g.SortByTime();
  IrsApproxOptions options;
  options.precision = kPrecision;
  IrsApprox sealed = IrsApprox::Compute(g, 10, options);
  sealed.Seal();
  EXPECT_DEATH(sealed.ProcessInteraction({0, 1, 4}), "sealed");
}

}  // namespace
}  // namespace ipin
