#include "ipin/sketch/bottom_k.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(BottomKTest, ExactWhileBelowK) {
  BottomK sketch(10);
  for (uint64_t i = 0; i < 7; ++i) sketch.Add(i);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 7.0);
  EXPECT_FALSE(sketch.IsFull());
}

TEST(BottomKTest, DuplicatesIgnored) {
  BottomK sketch(10);
  for (int i = 0; i < 50; ++i) sketch.Add(3);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 1.0);
}

TEST(BottomKTest, HashesStaySortedAndBounded) {
  BottomK sketch(5);
  for (uint64_t i = 0; i < 100; ++i) sketch.Add(i);
  ASSERT_EQ(sketch.hashes().size(), 5u);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_LT(sketch.hashes()[i - 1], sketch.hashes()[i]);
  }
  EXPECT_TRUE(sketch.IsFull());
}

TEST(BottomKTest, EstimateAccuracy) {
  const double n = 100000.0;
  BottomK sketch(256);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) sketch.Add(i);
  // Relative error ~ 1/sqrt(k-2); allow 4 sigma.
  EXPECT_NEAR(sketch.Estimate(), n, 4.0 * n / std::sqrt(254.0));
}

TEST(BottomKTest, MergeEqualsUnion) {
  BottomK a(64);
  BottomK b(64);
  BottomK combined(64);
  for (uint64_t i = 0; i < 500; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (uint64_t i = 300; i < 900; ++i) {
    b.Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.hashes(), combined.hashes());
}

TEST(BottomKTest, SaltChangesContents) {
  BottomK a(16, 1);
  BottomK b(16, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_NE(a.hashes(), b.hashes());
}

TEST(BottomKTest, MemoryBounded) {
  BottomK sketch(32);
  for (uint64_t i = 0; i < 10000; ++i) sketch.Add(i);
  EXPECT_LE(sketch.MemoryUsageBytes(), 64 * sizeof(uint64_t));
}

}  // namespace
}  // namespace ipin
