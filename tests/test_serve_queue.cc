#include "ipin/serve/queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ipin::serve {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(3);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.Depth(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.Depth(), 0u);
}

TEST(BoundedQueueTest, RejectsBeyondCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // load shedding, never blocks
  EXPECT_EQ(queue.Depth(), 2u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.TryPush(3));  // slot freed
}

TEST(BoundedQueueTest, TryPopNeverBlocks) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  queue.TryPush(7);
  EXPECT_EQ(queue.TryPop(), 7);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, DrainRejectsPushesButEmptiesBacklog) {
  BoundedQueue<int> queue(4);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Drain();
  EXPECT_TRUE(queue.draining());
  EXPECT_FALSE(queue.TryPush(3));  // no new work during drain
  EXPECT_EQ(queue.Pop(), 1);       // backlog still answered
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // consumer exit signal
}

TEST(BoundedQueueTest, DrainWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &woke] {
      while (queue.Pop().has_value()) {
      }
      ++woke;
    });
  }
  queue.TryPush(1);
  queue.Drain();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueueTest, ReopenAllowsPushesAgain) {
  BoundedQueue<int> queue(2);
  queue.Drain();
  EXPECT_FALSE(queue.TryPush(1));
  queue.Reopen();
  EXPECT_TRUE(queue.TryPush(1));
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(16);
  std::atomic<int64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (const auto item = queue.Pop()) {
        consumed_sum += *item;
        ++consumed_count;
      }
    });
  }

  // Producers spin on TryPush: every item eventually gets through, the
  // queue just bounds how many are in flight.
  int64_t produced_sum = 0;
  std::vector<std::thread> producers;
  std::mutex sum_mu;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      int64_t local = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!queue.TryPush(value)) std::this_thread::yield();
        local += value;
      }
      std::lock_guard<std::mutex> lock(sum_mu);
      produced_sum += local;
    });
  }
  for (auto& t : producers) t.join();
  queue.Drain();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), produced_sum);
}

TEST(BoundedQueueTest, DepthNeverExceedsCapacityUnderContention) {
  BoundedQueue<int> queue(8);
  std::atomic<bool> stop{false};
  std::atomic<bool> over{false};

  std::thread watcher([&] {
    while (!stop) {
      if (queue.Depth() > queue.capacity()) over = true;
    }
  });
  std::thread consumer([&] {
    while (queue.Pop().has_value()) {
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) (void)queue.TryPush(i);
    });
  }
  for (auto& t : producers) t.join();
  queue.Drain();
  consumer.join();
  stop = true;
  watcher.join();
  EXPECT_FALSE(over.load());
}

}  // namespace
}  // namespace ipin::serve
