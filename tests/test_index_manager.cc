#include "ipin/serve/index_manager.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/core/oracle_io.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/obs/metrics.h"

namespace ipin::serve {
namespace {

IrsApprox BuildSmallIndex(uint64_t seed = 3) {
  const InteractionGraph graph =
      GenerateUniformRandomNetwork(40, 400, 1000, seed);
  IrsApproxOptions options;
  options.precision = 5;
  return IrsApprox::Compute(graph, 200, options);
}

class IndexManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_serve_index_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::remove(path_.c_str());
  }

  void CorruptFile() const {
    // Flip bytes in the middle: the CRC frames catch it and the loader
    // reports damage instead of kOk.
    std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 64);
    file.seekp(size / 2);
    const char junk[16] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    file.write(junk, sizeof(junk));
  }

  std::string path_;
};

TEST_F(IndexManagerTest, InstallAdvancesEpoch) {
  IndexManager manager("");
  EXPECT_EQ(manager.Epoch(), 0u);
  EXPECT_EQ(manager.Current(), nullptr);

  manager.Install(std::make_shared<const IrsApprox>(BuildSmallIndex()));
  EXPECT_EQ(manager.Epoch(), 1u);
  ASSERT_NE(manager.Current(), nullptr);

  manager.Install(std::make_shared<const IrsApprox>(BuildSmallIndex(4)));
  EXPECT_EQ(manager.Epoch(), 2u);
}

TEST_F(IndexManagerTest, ReloadWithoutPathIsNoChange) {
  IndexManager manager("");
  EXPECT_EQ(manager.Reload(), ReloadStatus::kNoChange);
  EXPECT_EQ(manager.Epoch(), 0u);
}

TEST_F(IndexManagerTest, ReloadLoadsVerifiedFile) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 1u);
  ASSERT_NE(manager.Current(), nullptr);
  EXPECT_EQ(manager.Current()->num_nodes(), 40u);
}

TEST_F(IndexManagerTest, MissingFileRollsBack) {
  IndexManager manager(path_);  // never written
  EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
  EXPECT_EQ(manager.Epoch(), 0u);
  EXPECT_EQ(manager.Current(), nullptr);
}

TEST_F(IndexManagerTest, CorruptReloadKeepsOldIndexServing) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);
  const auto before = manager.Current();

#ifndef IPIN_OBS_DISABLED
  const uint64_t rollbacks_before = obs::MetricsRegistry::Global()
                                        .GetCounter("serve.reload.rollback")
                                        ->Value();
#endif
  CorruptFile();
  EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
  EXPECT_EQ(manager.Epoch(), 1u);             // epoch did not advance
  EXPECT_EQ(manager.Current().get(), before.get());  // same object serving
#ifndef IPIN_OBS_DISABLED
  EXPECT_GE(obs::MetricsRegistry::Global()
                .GetCounter("serve.reload.rollback")
                ->Value(),
            rollbacks_before + 1);
#endif
}

TEST_F(IndexManagerTest, InjectedReloadFailureRollsBack) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);

  ASSERT_TRUE(failpoint::Set("serve.reload", "error"));
  EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
  EXPECT_EQ(manager.Epoch(), 1u);

  failpoint::Clear("serve.reload");
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 2u);
}

TEST_F(IndexManagerTest, UnforcedReloadSkipsUnchangedFile) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(/*force=*/false), ReloadStatus::kOk);
  EXPECT_EQ(manager.Reload(/*force=*/false), ReloadStatus::kNoChange);
  EXPECT_EQ(manager.Epoch(), 1u);
  EXPECT_EQ(manager.Reload(/*force=*/true), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 2u);
}

TEST_F(IndexManagerTest, RejectedFileNotRetriedUntilItChanges) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  CorruptFile();
  IndexManager manager(path_);
  EXPECT_EQ(manager.Reload(/*force=*/false), ReloadStatus::kRolledBack);
  // Same bad bytes: the stamp check stops the poll loop from re-reading a
  // file it already rejected.
  EXPECT_EQ(manager.Reload(/*force=*/false), ReloadStatus::kNoChange);
}

TEST_F(IndexManagerTest, QueriesKeepFlowingDuringSlowReload) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);
  const auto serving = manager.Current();
  const std::vector<NodeId> seeds = {1, 2, 3};
  const double expected = serving->EstimateUnionSize(seeds);

  // A 200 ms reload in the background; queries must neither block on it nor
  // see a half-swapped index.
  ASSERT_TRUE(failpoint::Set("serve.reload", "delay(200)"));
  std::thread reloader([&manager] {
    EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  });

  std::atomic<int> queries{0};
  for (int i = 0; i < 50; ++i) {
    const auto snapshot = manager.Current();
    ASSERT_NE(snapshot, nullptr);
    EXPECT_DOUBLE_EQ(snapshot->EstimateUnionSize(seeds), expected);
    ++queries;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reloader.join();
  EXPECT_EQ(queries.load(), 50);
  EXPECT_EQ(manager.Epoch(), 2u);
}

TEST_F(IndexManagerTest, ExactMapInstallAndUnload) {
  IndexManager manager("");
  EXPECT_EQ(manager.Exact(), nullptr);
  const InteractionGraph graph =
      GenerateUniformRandomNetwork(40, 400, 1000, 3);
  manager.SetExact(
      std::make_shared<const IrsExact>(IrsExact::Compute(graph, 200)));
  ASSERT_NE(manager.Exact(), nullptr);
  manager.UnloadExact();
  EXPECT_EQ(manager.Exact(), nullptr);
}

TEST_F(IndexManagerTest, WatcherPicksUpChangedFile) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);

  manager.StartWatcher(/*check_interval_ms=*/20);
  // Rewrite with different content (and a different size or mtime).
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(11), path_));
  for (int i = 0; i < 200 && manager.Epoch() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  manager.StopWatcher();
  EXPECT_GE(manager.Epoch(), 2u);
}


TEST_F(IndexManagerTest, RepeatedCorruptReloadsKeepOldEpochThenRecover) {
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(), path_));
  IndexManager manager(path_);
  ASSERT_EQ(manager.Reload(), ReloadStatus::kOk);
  const auto before = manager.Current();

#ifndef IPIN_OBS_DISABLED
  const uint64_t rollbacks_before = obs::MetricsRegistry::Global()
                                        .GetCounter("serve.reload.rollback")
                                        ->Value();
#endif
  // A stuck-bad artifact: every reload attempt sees the same corrupt file.
  // N consecutive rollbacks must each be counted, and none of them may
  // unpin the good epoch-1 index.
  CorruptFile();
  constexpr int kAttempts = 5;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    // Forced reloads bypass the stamp check, so every attempt reaches the
    // loader and must roll back.
    EXPECT_EQ(manager.Reload(), ReloadStatus::kRolledBack);
    EXPECT_EQ(manager.Epoch(), 1u);
    EXPECT_EQ(manager.Current().get(), before.get());
  }
#ifndef IPIN_OBS_DISABLED
  EXPECT_GE(obs::MetricsRegistry::Global()
                .GetCounter("serve.reload.rollback")
                ->Value(),
            rollbacks_before + kAttempts);
#endif

  // A good artifact lands: the very next reload recovers and swaps epochs.
  ASSERT_TRUE(SaveInfluenceIndex(BuildSmallIndex(11), path_));
  EXPECT_EQ(manager.Reload(), ReloadStatus::kOk);
  EXPECT_EQ(manager.Epoch(), 2u);
  EXPECT_NE(manager.Current().get(), before.get());
}


}  // namespace
}  // namespace ipin::serve
