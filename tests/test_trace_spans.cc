#include "ipin/obs/trace.h"

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/obs/export.h"
#include "ipin/obs/metrics.h"

namespace ipin::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker, used to prove the exporter
// emits well-formed JSON without pulling in a JSON library.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // skip the escaped character wholesale
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseLiteral(const char* word) {
    SkipWs();
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const SpanStats* FindSpan(const std::vector<SpanStats>& spans,
                          const std::string& path) {
  for (const SpanStats& span : spans) {
    if (span.path == path) return &span;
  }
  return nullptr;
}

TEST(TraceSpanTest, SequentialSpansAreSiblings) {
  ResetSpanTreeForTest();
  { TraceSpan a("alpha"); }
  { TraceSpan b("beta"); }
  const std::vector<SpanStats> spans = SpanTreeSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanStats* alpha = FindSpan(spans, "alpha");
  const SpanStats* beta = FindSpan(spans, "beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(alpha->depth, 0);
  EXPECT_EQ(beta->depth, 0);
  EXPECT_EQ(alpha->calls, 1u);
}

TEST(TraceSpanTest, NestedSpansAggregateUnderParentPath) {
  ResetSpanTreeForTest();
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    { TraceSpan inner("inner"); }
  }
  const std::vector<SpanStats> spans = SpanTreeSnapshot();
  const SpanStats* outer = FindSpan(spans, "outer");
  const SpanStats* inner = FindSpan(spans, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_EQ(inner->depth, 1);
  // The parent span was open the whole time its children ran.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  // There is no top-level "inner": nesting keyed it under the parent.
  EXPECT_EQ(FindSpan(spans, "inner"), nullptr);
}

TEST(TraceSpanTest, ReusedNameOnNewParentGetsOwnNode) {
  ResetSpanTreeForTest();
  {
    TraceSpan a("first");
    { TraceSpan shared("shared"); }
  }
  {
    TraceSpan b("second");
    { TraceSpan shared("shared"); }
  }
  const std::vector<SpanStats> spans = SpanTreeSnapshot();
  ASSERT_NE(FindSpan(spans, "first/shared"), nullptr);
  ASSERT_NE(FindSpan(spans, "second/shared"), nullptr);
  EXPECT_EQ(FindSpan(spans, "first/shared")->calls, 1u);
}

TEST(TraceSpanTest, SpansFeedTheMetricsRegistry) {
  ResetSpanTreeForTest();
  { TraceSpan span("registry.fed"); }
  { TraceSpan span("registry.fed"); }
  MetricsRegistry& registry = MetricsRegistry::Global();
  // The counter survives tree resets; it accumulates >= the 2 calls above.
  EXPECT_GE(registry.GetCounter("trace.registry.fed.calls")->Value(), 2u);
  EXPECT_GE(registry.GetHistogram("trace.registry.fed.us")->Count(), 2u);
}

TEST(TraceSpanTest, MacroCompilesInAnyBuild) {
  ResetSpanTreeForTest();
  {
    IPIN_TRACE_SPAN("macro.span");
  }
  const std::vector<SpanStats> spans = SpanTreeSnapshot();
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(FindSpan(spans, "macro.span"), nullptr);
#else
  ASSERT_NE(FindSpan(spans, "macro.span"), nullptr);
  EXPECT_EQ(FindSpan(spans, "macro.span")->calls, 1u);
#endif
}

TEST(JsonExportTest, ReportRoundTripsThroughChecker) {
  ResetSpanTreeForTest();
  {
    TraceSpan outer("json.outer");
    TraceSpan inner("json.inner");
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_spans.json.counter")->Add(3);
  registry.GetGauge("test_spans.json.gauge")->Set(1.25);
  registry.GetHistogram("test_spans.json.hist")->Record(17);

  const std::string json = GlobalMetricsReportJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;

  // Spot-check content made it through.
  EXPECT_NE(json.find("\"test_spans.json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test_spans.json.gauge\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"json.outer/json.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"ipin.metrics.v1\""), std::string::npos);
}

TEST(JsonExportTest, EscapesAwkwardMetricNames) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_spans.weird\"name\\with\tescapes")->Add(1);
  const std::string json = GlobalMetricsReportJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(PrometheusExportTest, EmitsSanitizedSeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_spans.prom.counter")->Add(9);
  registry.GetHistogram("test_spans.prom.hist")->Record(5);
  const std::string text = MetricsPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("test_spans_prom_counter_total 9"), std::string::npos);
  EXPECT_NE(text.find("test_spans_prom_hist_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

}  // namespace
}  // namespace ipin::obs
