#include "ipin/core/influence_oracle.h"

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(ExactOracleTest, MatchesIrsDirectly) {
  const InteractionGraph g = FigureOneGraph();
  const IrsExact irs = IrsExact::Compute(g, 3);
  const ExactInfluenceOracle oracle(&irs);
  EXPECT_EQ(oracle.num_nodes(), 6u);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_DOUBLE_EQ(oracle.InfluenceOf(u),
                     static_cast<double>(irs.IrsSize(u)));
  }
  const std::vector<NodeId> seeds = {kA, kE};
  EXPECT_DOUBLE_EQ(oracle.InfluenceOfSet(seeds),
                   static_cast<double>(irs.UnionSize(seeds)));
}

TEST(ExactOracleTest, CoverageGainsAreConsistent) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 250, 800, 3);
  const IrsExact irs = IrsExact::Compute(g, 200);
  const ExactInfluenceOracle oracle(&irs);
  auto coverage = oracle.NewCoverage();
  EXPECT_DOUBLE_EQ(coverage->Covered(), 0.0);

  std::vector<NodeId> committed;
  for (const NodeId u : {0u, 5u, 9u, 14u}) {
    const double gain = coverage->GainOf(u);
    const double before = coverage->Covered();
    coverage->Commit(u);
    committed.push_back(u);
    EXPECT_DOUBLE_EQ(coverage->Covered(), before + gain) << "node " << u;
    EXPECT_DOUBLE_EQ(coverage->Covered(), oracle.InfluenceOfSet(committed));
  }
  // Recommitting adds nothing.
  const double before = coverage->Covered();
  coverage->Commit(0);
  EXPECT_DOUBLE_EQ(coverage->Covered(), before);
}

TEST(ExactOracleTest, GainShrinksAsCoverGrows) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 250, 800, 5);
  const IrsExact irs = IrsExact::Compute(g, 400);
  const ExactInfluenceOracle oracle(&irs);
  auto coverage = oracle.NewCoverage();
  const double gain_empty = coverage->GainOf(7);
  coverage->Commit(3);
  coverage->Commit(11);
  EXPECT_LE(coverage->GainOf(7), gain_empty);  // submodularity
}

TEST(SketchOracleTest, TracksExactOracle) {
  SyntheticConfig config;
  config.num_nodes = 250;
  config.num_interactions = 4000;
  config.time_span = 9000;
  config.seed = 19;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  const IrsExact exact = IrsExact::Compute(g, window);
  IrsApproxOptions options;
  options.precision = 9;
  const IrsApprox approx = IrsApprox::Compute(g, window, options);

  const ExactInfluenceOracle exact_oracle(&exact);
  const SketchInfluenceOracle sketch_oracle(&approx);
  EXPECT_EQ(sketch_oracle.num_nodes(), exact_oracle.num_nodes());

  const std::vector<NodeId> seeds = {2, 30, 71, 120, 200};
  const double truth = exact_oracle.InfluenceOfSet(seeds);
  if (truth > 30.0) {
    EXPECT_NEAR(sketch_oracle.InfluenceOfSet(seeds) / truth, 1.0, 0.25);
  }
}

TEST(SketchOracleTest, CoverageCommitMatchesSetQuery) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 1500, 4000, 23);
  IrsApproxOptions options;
  options.precision = 8;
  const IrsApprox approx = IrsApprox::Compute(g, 1000, options);
  const SketchInfluenceOracle oracle(&approx);

  auto coverage = oracle.NewCoverage();
  std::vector<NodeId> committed;
  for (const NodeId u : {1u, 17u, 42u}) {
    coverage->Commit(u);
    committed.push_back(u);
    EXPECT_NEAR(coverage->Covered(), oracle.InfluenceOfSet(committed), 1e-9);
  }
}

TEST(SketchOracleTest, GainOfSourcelessNodeIsZero) {
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  IrsApproxOptions options;
  options.precision = 6;
  const IrsApprox approx = IrsApprox::Compute(g, 5, options);
  const SketchInfluenceOracle oracle(&approx);
  auto coverage = oracle.NewCoverage();
  EXPECT_DOUBLE_EQ(coverage->GainOf(2), 0.0);
  coverage->Commit(2);  // no-op, must not crash
  EXPECT_DOUBLE_EQ(coverage->Covered(), 0.0);
}

TEST(SetCoverageOracleTest, BehavesLikeExplicitSets) {
  SetCoverageOracle oracle({{1, 2, 3}, {3, 4}, {}, {0}});
  EXPECT_EQ(oracle.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(oracle.InfluenceOf(0), 3.0);
  EXPECT_DOUBLE_EQ(oracle.InfluenceOf(2), 0.0);
  const std::vector<NodeId> seeds = {0, 1};
  EXPECT_DOUBLE_EQ(oracle.InfluenceOfSet(seeds), 4.0);  // {1,2,3,4}

  auto coverage = oracle.NewCoverage();
  EXPECT_DOUBLE_EQ(coverage->GainOf(0), 3.0);
  coverage->Commit(0);
  EXPECT_DOUBLE_EQ(coverage->GainOf(1), 1.0);  // only 4 is new
  coverage->Commit(1);
  EXPECT_DOUBLE_EQ(coverage->Covered(), 4.0);
}

}  // namespace
}  // namespace ipin
