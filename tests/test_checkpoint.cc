#include "ipin/core/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

namespace fs = std::filesystem;

constexpr Duration kWindow = 40;

InteractionGraph TestGraph() {
  return GenerateUniformRandomNetwork(/*num_nodes=*/40,
                                      /*num_interactions=*/200,
                                      /*time_span=*/500, /*seed=*/11);
}

// Bit-identical comparison of two exact builds: every node's summary map
// must match entry for entry.
void ExpectExactEqual(const IrsExact& got, const IrsExact& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  for (NodeId u = 0; u < want.num_nodes(); ++u) {
    const auto& a = got.Summary(u);
    const auto& b = want.Summary(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (const auto& [v, t] : b) {
      const auto it = a.find(v);
      ASSERT_NE(it, a.end()) << "node " << u << " missing " << v;
      EXPECT_EQ(it->second, t) << "lambda(" << u << "," << v << ")";
    }
  }
}

// Bit-identical comparison of two approx builds via the serialized sketch
// bytes (covers cell contents, versions, and lazy-allocation pattern).
void ExpectApproxEqual(const IrsApprox& got, const IrsApprox& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  for (NodeId u = 0; u < want.num_nodes(); ++u) {
    const SketchView a = got.Sketch(u);
    const SketchView b = want.Sketch(u);
    ASSERT_EQ(a.valid(), b.valid()) << "node " << u;
    if (!b) continue;
    std::string a_bytes, b_bytes;
    a.Serialize(&a_bytes);
    b.Serialize(&b_bytes);
    EXPECT_EQ(a_bytes, b_bytes) << "node " << u;
    EXPECT_EQ(got.EstimateIrsSize(u), want.EstimateIrsSize(u))
        << "node " << u;
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    dir_ = ::testing::TempDir() + "/ipin_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    failpoint::ClearAll();
    fs::remove_all(dir_);
  }

  std::vector<std::string> CheckpointFiles() const {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, DisabledOptionsMatchPlainCompute) {
  const InteractionGraph g = TestGraph();
  CheckpointStats stats;
  const IrsExact got =
      ComputeIrsExactCheckpointed(g, kWindow, CheckpointOptions{}, &stats);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
  EXPECT_EQ(stats.checkpoints_written, 0u);
  EXPECT_EQ(stats.resumed_edges, 0u);
}

TEST_F(CheckpointTest, ExactCheckpointedMatchesPlainCompute) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32};
  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
  EXPECT_GT(stats.checkpoints_written, 0u);
  EXPECT_EQ(stats.resumed_edges, 0u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
}

TEST_F(CheckpointTest, ExactRerunResumesFromNewestCheckpoint) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32};
  (void)ComputeIrsExactCheckpointed(g, kWindow, options);
  // The rerun picks up the newest checkpoint and replays only the tail.
  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  EXPECT_EQ(stats.resumed_edges, 192u);  // newest multiple of 32 < 200
  EXPECT_EQ(stats.invalid_checkpoints_skipped, 0u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

TEST_F(CheckpointTest, ApproxCheckpointedAndResumedMatchesPlainCompute) {
  const InteractionGraph g = TestGraph();
  const IrsApproxOptions irs_options{/*precision=*/5, /*salt=*/3};
  const IrsApprox want = IrsApprox::Compute(g, kWindow, irs_options);

  const CheckpointOptions options{dir_, /*every_edges=*/32};
  CheckpointStats stats;
  const IrsApprox first =
      ComputeIrsApproxCheckpointed(g, kWindow, irs_options, options, &stats);
  ExpectApproxEqual(first, want);
  EXPECT_GT(stats.checkpoints_written, 0u);

  CheckpointStats resumed;
  const IrsApprox second =
      ComputeIrsApproxCheckpointed(g, kWindow, irs_options, options, &resumed);
  EXPECT_GT(resumed.resumed_edges, 0u);
  ExpectApproxEqual(second, want);
}

// The tentpole proof: a failpoint kills the build mid-scan; the restarted
// build resumes from the surviving checkpoint and the result is
// bit-identical to an uninterrupted run.
TEST_F(CheckpointTest, ExactKillMidScanThenResumeBitIdentical) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32};

  // The child arms the crash inside the EXPECT_EXIT statement, so the
  // parent's registry stays clean. crash_after_n(2): saves at edges 32 and
  // 64 land, the third attempt (edge 96) kills the process.
  EXPECT_EXIT(
      {
        failpoint::Set("checkpoint.save", "crash_after_n(2)");
        (void)ComputeIrsExactCheckpointed(g, kWindow, options);
      },
      ::testing::ExitedWithCode(134), "failpoint");
  ASSERT_FALSE(CheckpointFiles().empty()) << "crash left no checkpoint";

  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  EXPECT_EQ(stats.resumed_edges, 64u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

TEST_F(CheckpointTest, ApproxKillMidScanThenResumeBitIdentical) {
  const InteractionGraph g = TestGraph();
  const IrsApproxOptions irs_options{/*precision=*/5, /*salt=*/9};
  const CheckpointOptions options{dir_, /*every_edges=*/32};

  EXPECT_EXIT(
      {
        failpoint::Set("checkpoint.save", "crash_after_n(2)");
        (void)ComputeIrsApproxCheckpointed(g, kWindow, irs_options, options);
      },
      ::testing::ExitedWithCode(134), "failpoint");
  ASSERT_FALSE(CheckpointFiles().empty()) << "crash left no checkpoint";

  CheckpointStats stats;
  const IrsApprox got =
      ComputeIrsApproxCheckpointed(g, kWindow, irs_options, options, &stats);
  EXPECT_EQ(stats.resumed_edges, 64u);
  ExpectApproxEqual(got, IrsApprox::Compute(g, kWindow, irs_options));
}

// A damaged newest checkpoint must not poison the build: it is skipped and
// the next-older one is used.
TEST_F(CheckpointTest, CorruptNewestFallsBackToOlder) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32, /*keep=*/3};
  (void)ComputeIrsExactCheckpointed(g, kWindow, options);

  const auto files = CheckpointFiles();
  ASSERT_GE(files.size(), 2u);
  // Zero-padded edge counts make lexicographic order == numeric order.
  const std::string newest = dir_ + "/" + files.back();
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);  // inside a frame payload, past the file header
    char byte = 0;
    f.seekg(100);
    f.read(&byte, 1);
    byte ^= 0x20;
    f.seekp(100);
    f.write(&byte, 1);
  }

  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  EXPECT_GE(stats.invalid_checkpoints_skipped, 1u);
  EXPECT_EQ(stats.resumed_edges, 160u);  // the one below the corrupted 192
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

// A truncated newest checkpoint (torn write / crash during save) behaves
// the same as a corrupt one: skip and fall back.
TEST_F(CheckpointTest, TruncatedNewestFallsBackToOlder) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32, /*keep=*/3};
  (void)ComputeIrsExactCheckpointed(g, kWindow, options);

  const auto files = CheckpointFiles();
  ASSERT_GE(files.size(), 2u);
  const std::string newest = dir_ + "/" + files.back();
  const auto size = fs::file_size(newest);
  fs::resize_file(newest, size / 2);

  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  EXPECT_GE(stats.invalid_checkpoints_skipped, 1u);
  EXPECT_EQ(stats.resumed_edges, 160u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

// Checkpoints taken against different inputs (here: another window) carry a
// different fingerprint and must be ignored, not resumed into a wrong build.
TEST_F(CheckpointTest, FingerprintMismatchIsIgnored) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32};
  (void)ComputeIrsExactCheckpointed(g, /*window=*/kWindow, options);

  CheckpointStats stats;
  const IrsExact got =
      ComputeIrsExactCheckpointed(g, /*window=*/kWindow * 2, options, &stats);
  EXPECT_EQ(stats.resumed_edges, 0u);
  EXPECT_GE(stats.invalid_checkpoints_skipped, 1u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow * 2));
}

// Exact checkpoints must never resume an approx build and vice versa: the
// two algorithms use distinct file prefixes.
TEST_F(CheckpointTest, AlgorithmsUseDistinctCheckpointFiles) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/64};
  (void)ComputeIrsExactCheckpointed(g, kWindow, options);

  CheckpointStats stats;
  const IrsApprox got =
      ComputeIrsApproxCheckpointed(g, kWindow, {}, options, &stats);
  EXPECT_EQ(stats.resumed_edges, 0u);
  EXPECT_EQ(stats.invalid_checkpoints_skipped, 0u);
  ExpectApproxEqual(got, IrsApprox::Compute(g, kWindow, {}));
}

TEST_F(CheckpointTest, PruneKeepsOnlyNewestCheckpoints) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/16, /*keep=*/2};
  CheckpointStats stats;
  (void)ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  EXPECT_GT(stats.checkpoints_written, 2u);
  EXPECT_EQ(CheckpointFiles().size(), 2u);
}

// A failing checkpoint save is an inconvenience, not a build failure.
TEST_F(CheckpointTest, SaveFailureDoesNotAbortBuild) {
  const InteractionGraph g = TestGraph();
  ASSERT_TRUE(failpoint::Set("checkpoint.save", "error"));
  const CheckpointOptions options{dir_, /*every_edges=*/32};
  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  failpoint::ClearAll();
  EXPECT_EQ(stats.checkpoints_written, 0u);
  EXPECT_GT(stats.checkpoint_failures, 0u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

// checkpoint.load failures (e.g. injected read errors) degrade to a fresh
// build rather than crashing or resuming garbage.
TEST_F(CheckpointTest, LoadFailureFallsBackToFreshBuild) {
  const InteractionGraph g = TestGraph();
  const CheckpointOptions options{dir_, /*every_edges=*/32};
  (void)ComputeIrsExactCheckpointed(g, kWindow, options);

  ASSERT_TRUE(failpoint::Set("checkpoint.load", "error"));
  CheckpointStats stats;
  const IrsExact got = ComputeIrsExactCheckpointed(g, kWindow, options, &stats);
  failpoint::ClearAll();
  EXPECT_EQ(stats.resumed_edges, 0u);
  EXPECT_GE(stats.invalid_checkpoints_skipped, 1u);
  ExpectExactEqual(got, IrsExact::Compute(g, kWindow));
}

}  // namespace
}  // namespace ipin
