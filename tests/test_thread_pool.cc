#include "ipin/common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

// The pool must work correctly whatever the host's core count (CI runners
// range from 1 to many), so every test pins an explicit pool size instead
// of relying on hardware_concurrency.

class GlobalThreadsGuard {
 public:
  ~GlobalThreadsGuard() { SetGlobalThreads(0); }  // restore default
};

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // The destructor completes everything already queued before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range no larger than the grain runs inline as one chunk.
  std::vector<int> seen;
  pool.ParallelFor(10, 13, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12}));
}

TEST(ThreadPoolTest, SingleThreadPoolRunsBodyInlineInOrder) {
  // threads == 1 is the exact sequential fallback: one body call over the
  // whole range, on the calling thread, so no synchronization is needed.
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(0, 100, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // On a pool worker the nested call must inline rather than wait for
      // pool capacity that may never free up.
      pool.ParallelFor(0, 10, 1, [&](size_t nlo, size_t nhi) {
        total.fetch_add(static_cast<int>(nhi - nlo));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t lo, size_t) {
                         if (lo >= 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, GlobalThreadsKnob) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3u);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreads(), 1u);
  SetGlobalThreads(0);  // back to IPIN_THREADS / hardware default
  EXPECT_GE(GlobalThreads(), 1u);
}

TEST(ThreadPoolTest, FreeParallelForSequentialWhenGlobalThreadsIsOne) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(1);
  std::vector<size_t> order;
  ParallelFor(0, 64, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, FreeParallelForCoversRangeOnGlobalPool) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(4);
  std::vector<std::atomic<int>> hits(2048);
  ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubmittedTasksSeePoolAsWorkerThread) {
  ThreadPool pool(2);
  std::atomic<bool> on_worker{false};
  std::atomic<bool> ran{false};
  pool.Submit([&] {
    on_worker.store(ThreadPool::OnWorkerThread());
    ran.store(true);
  });
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

}  // namespace
}  // namespace ipin
