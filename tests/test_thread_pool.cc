#include "ipin/common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

// The pool must work correctly whatever the host's core count (CI runners
// range from 1 to many), so every test pins an explicit pool size instead
// of relying on hardware_concurrency.

class GlobalThreadsGuard {
 public:
  ~GlobalThreadsGuard() { SetGlobalThreads(0); }  // restore default
};

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // The destructor completes everything already queued before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range no larger than the grain runs inline as one chunk.
  std::vector<int> seen;
  pool.ParallelFor(10, 13, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12}));
}

TEST(ThreadPoolTest, SingleThreadPoolRunsBodyInlineInOrder) {
  // threads == 1 is the exact sequential fallback: one body call over the
  // whole range, on the calling thread, so no synchronization is needed.
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(0, 100, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // On a pool worker the nested call must inline rather than wait for
      // pool capacity that may never free up.
      pool.ParallelFor(0, 10, 1, [&](size_t nlo, size_t nhi) {
        total.fetch_add(static_cast<int>(nhi - nlo));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t lo, size_t) {
                         if (lo >= 50) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, GlobalThreadsKnob) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3u);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreads(), 1u);
  SetGlobalThreads(0);  // back to IPIN_THREADS / hardware default
  EXPECT_GE(GlobalThreads(), 1u);
}

TEST(ThreadPoolTest, FreeParallelForSequentialWhenGlobalThreadsIsOne) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(1);
  std::vector<size_t> order;
  ParallelFor(0, 64, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, FreeParallelForCoversRangeOnGlobalPool) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(4);
  std::vector<std::atomic<int>> hits(2048);
  ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PhaseProfilesAccountTaggedSections) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(3);
  ResetPoolPhaseProfiles();

  const char* prev = SetCurrentPoolPhase("test.profiled");
  EXPECT_EQ(CurrentPoolPhase(), std::string("test.profiled"));
  std::atomic<uint64_t> sink{0};
  ParallelFor(0, 4096, 64, [&](size_t lo, size_t hi) {
    uint64_t local = 0;
    for (size_t i = lo; i < hi; ++i) local += i;
    sink.fetch_add(local);
  });
  SetCurrentPoolPhase(prev);
  EXPECT_GT(sink.load(), 0u);

  // An untagged section must not land in any profile.
  ParallelFor(0, 256, 32, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sink.fetch_add(1);
  });

  const std::vector<PoolPhaseProfile> profiles = PoolPhaseProfiles();
#ifdef IPIN_OBS_DISABLED
  EXPECT_TRUE(profiles.empty());  // accounting compiles out
#else
  ASSERT_EQ(profiles.size(), 1u);
  const PoolPhaseProfile& p = profiles[0];
  EXPECT_EQ(p.name, "test.profiled");
  EXPECT_GT(p.tasks, 0u);
  EXPECT_GE(p.max_task_us, 0u);
  EXPECT_GE(p.busy_us, 0u);
  EXPECT_LE(p.MeanTaskUs(),
            static_cast<double>(p.max_task_us));  // mean <= max
  // Imbalance is slowest-over-mean: >= 1 whenever anything ran and any
  // chunk took measurable time; exactly 0 only when no time was measured.
  const double imbalance = p.ImbalanceRatio();
  EXPECT_TRUE(imbalance == 0.0 || imbalance >= 1.0) << imbalance;
#endif

  ResetPoolPhaseProfiles();
  EXPECT_TRUE(PoolPhaseProfiles().empty());
}

TEST(ThreadPoolTest, PhaseProfilesSurviveSequentialFallback) {
  GlobalThreadsGuard guard;
  SetGlobalThreads(1);  // serial path must account identically
  ResetPoolPhaseProfiles();
  const char* prev = SetCurrentPoolPhase("test.serial");
  uint64_t sum = 0;
  ParallelFor(0, 128, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum += i;
  });
  SetCurrentPoolPhase(prev);
  EXPECT_EQ(sum, 128u * 127u / 2);
  const std::vector<PoolPhaseProfile> profiles = PoolPhaseProfiles();
#ifdef IPIN_OBS_DISABLED
  EXPECT_TRUE(profiles.empty());
#else
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].name, "test.serial");
  EXPECT_GE(profiles[0].tasks, 1u);
#endif
  ResetPoolPhaseProfiles();
}

TEST(ThreadPoolTest, SubmittedTasksSeePoolAsWorkerThread) {
  ThreadPool pool(2);
  std::atomic<bool> on_worker{false};
  std::atomic<bool> ran{false};
  pool.Submit([&] {
    on_worker.store(ThreadPool::OnWorkerThread());
    ran.store(true);
  });
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

}  // namespace
}  // namespace ipin
