#include "ipin/datasets/synthetic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ipin/datasets/registry.h"
#include "ipin/graph/static_graph.h"

namespace ipin {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_nodes = 500;
  config.num_interactions = 8000;
  config.time_span = 100000;
  config.seed = 5;
  return config;
}

TEST(SyntheticTest, ProducesRequestedCounts) {
  const InteractionGraph g = GenerateInteractionNetwork(SmallConfig());
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_interactions(), 8000u);
}

TEST(SyntheticTest, SortedWithDistinctTimestamps) {
  const InteractionGraph g = GenerateInteractionNetwork(SmallConfig());
  EXPECT_TRUE(g.is_sorted());
  EXPECT_TRUE(g.HasDistinctTimestamps());
}

TEST(SyntheticTest, NoSelfLoops) {
  const InteractionGraph g = GenerateInteractionNetwork(SmallConfig());
  for (const Interaction& e : g.interactions()) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  const InteractionGraph a = GenerateInteractionNetwork(SmallConfig());
  const InteractionGraph b = GenerateInteractionNetwork(SmallConfig());
  ASSERT_EQ(a.num_interactions(), b.num_interactions());
  for (size_t i = 0; i < a.num_interactions(); ++i) {
    EXPECT_EQ(a.interaction(i), b.interaction(i));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config = SmallConfig();
  const InteractionGraph a = GenerateInteractionNetwork(config);
  config.seed += 1;
  const InteractionGraph b = GenerateInteractionNetwork(config);
  size_t differing = 0;
  for (size_t i = 0; i < a.num_interactions(); ++i) {
    if (!(a.interaction(i) == b.interaction(i))) ++differing;
  }
  EXPECT_GT(differing, a.num_interactions() / 2);
}

TEST(SyntheticTest, ActivityIsHeavyTailed) {
  // The most active sender should send far more than the median sender.
  const InteractionGraph g = GenerateInteractionNetwork(SmallConfig());
  std::vector<size_t> out_count(g.num_nodes(), 0);
  for (const Interaction& e : g.interactions()) out_count[e.src]++;
  std::sort(out_count.rbegin(), out_count.rend());
  EXPECT_GT(out_count[0], 20 * std::max<size_t>(out_count[250], 1));
}

TEST(SyntheticTest, TimestampsSpanMostOfConfiguredRange) {
  const InteractionGraph g = GenerateInteractionNetwork(SmallConfig());
  const auto stats = g.ComputeStats();
  EXPECT_GT(stats.time_span, 100000 / 2);
}

TEST(UniformRandomTest, BasicProperties) {
  const InteractionGraph g = GenerateUniformRandomNetwork(100, 1000, 5000, 3);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_interactions(), 1000u);
  EXPECT_TRUE(g.is_sorted());
  for (const Interaction& e : g.interactions()) EXPECT_NE(e.src, e.dst);
}

TEST(UniformRandomTest, TinyTimeSpanFallsBackToSequentialTimes) {
  const InteractionGraph g = GenerateUniformRandomNetwork(10, 100, 50, 3);
  EXPECT_TRUE(g.HasDistinctTimestamps());
}

TEST(RegistryTest, ListsSixDatasets) {
  const auto names = ListDatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_NE(std::find(names.begin(), names.end(), "enron"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "us2016"), names.end());
}

TEST(RegistryTest, PaperTable2MatchesPublishedNumbers) {
  const auto rows = PaperTable2();
  ASSERT_EQ(rows.size(), 6u);
  // Spot-check the values from Table 2 of the paper.
  EXPECT_EQ(rows[0].name, "enron");
  EXPECT_EQ(rows[0].num_nodes, 87300u);
  EXPECT_EQ(rows[0].num_interactions, 1148100u);
  EXPECT_EQ(rows[0].days, 8767);
  EXPECT_EQ(rows[3].name, "higgs");
  EXPECT_EQ(rows[3].days, 7);
}

TEST(RegistryTest, ScaleShrinksCounts) {
  const auto full = GetDatasetConfig("slashdot", 1.0);
  const auto tenth = GetDatasetConfig("slashdot", 0.1);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(tenth.has_value());
  EXPECT_NEAR(static_cast<double>(tenth->num_nodes),
              static_cast<double>(full->num_nodes) * 0.1, 2.0);
  EXPECT_EQ(full->time_span, tenth->time_span);  // span preserved
}

TEST(RegistryTest, UnknownNameGivesNullopt) {
  EXPECT_FALSE(GetDatasetConfig("not-a-dataset", 0.5).has_value());
}

TEST(RegistryTest, LoadSyntheticDatasetRuns) {
  const InteractionGraph g = LoadSyntheticDataset("slashdot", 0.02);
  EXPECT_GT(g.num_nodes(), 500u);
  EXPECT_GT(g.num_interactions(), 1000u);
  EXPECT_TRUE(g.is_sorted());
  EXPECT_TRUE(g.HasDistinctTimestamps());
}

TEST(RegistryTest, DatasetsAreReproducible) {
  const InteractionGraph a = LoadSyntheticDataset("higgs", 0.01);
  const InteractionGraph b = LoadSyntheticDataset("higgs", 0.01);
  ASSERT_EQ(a.num_interactions(), b.num_interactions());
  EXPECT_EQ(a.interaction(0), b.interaction(0));
  EXPECT_EQ(a.interaction(a.num_interactions() - 1),
            b.interaction(b.num_interactions() - 1));
}

TEST(RegistryTest, FlattenedGraphIsSmallerThanInteractionList) {
  // The paper notes static baselines consume a significantly smaller
  // flattened graph; repeated interactions must collapse.
  const InteractionGraph g = LoadSyntheticDataset("lkml", 0.02);
  const StaticGraph flat = StaticGraph::FromInteractions(g);
  EXPECT_LT(flat.num_edges(), g.num_interactions());
}

}  // namespace
}  // namespace ipin
