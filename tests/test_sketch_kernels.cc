#include "ipin/sketch/kernels.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/random.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

using kernels::KernelOps;
using kernels::KernelsFor;
using kernels::SimdTarget;
using kernels::SimdTargetName;

// Every target the current build/CPU can actually run. kScalar is always
// present; the others depend on the architecture and CPUID.
std::vector<SimdTarget> RunnableTargets() {
  std::vector<SimdTarget> targets;
  for (const SimdTarget t : {SimdTarget::kScalar, SimdTarget::kSse2,
                             SimdTarget::kAvx2, SimdTarget::kNeon}) {
    if (KernelsFor(t) != nullptr) targets.push_back(t);
  }
  return targets;
}

const KernelOps& Scalar() { return *KernelsFor(SimdTarget::kScalar); }

TEST(SketchKernelsTest, DispatchIsRunnableAndNamed) {
  const SimdTarget target = kernels::DispatchedTarget();
  EXPECT_NE(KernelsFor(target), nullptr);
  EXPECT_EQ(&kernels::Dispatched(), KernelsFor(target));
  EXPECT_STRNE(SimdTargetName(target), "unknown");
}

TEST(SketchKernelsTest, ScalarAlwaysRunnable) {
  EXPECT_NE(KernelsFor(SimdTarget::kScalar), nullptr);
}

// Randomized scalar-vs-target equivalence for the cellwise max, across all
// vHLL precisions and ragged tails that are not a multiple of any vector
// width (SSE2 16, AVX2 32/64 — the +1/+7 offsets below stress every tail
// path). Integer kernels must agree exactly.
TEST(SketchKernelsTest, CellwiseMaxMatchesScalarFuzz) {
  Rng rng(20260807);
  for (const SimdTarget target : RunnableTargets()) {
    const KernelOps& ops = *KernelsFor(target);
    for (int precision = 4; precision <= 18; ++precision) {
      const size_t beta = size_t{1} << precision;
      for (const size_t n :
           {beta, beta - 1, beta - 7, size_t{1}, size_t{3}, size_t{17}}) {
        std::vector<uint8_t> dst(n), src(n);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = static_cast<uint8_t>(rng.NextBounded(256));
          src[i] = static_cast<uint8_t>(rng.NextBounded(256));
        }
        std::vector<uint8_t> want = dst;
        Scalar().cellwise_max_u8(want.data(), src.data(), n);
        std::vector<uint8_t> got = dst;
        ops.cellwise_max_u8(got.data(), src.data(), n);
        ASSERT_EQ(got, want) << SimdTargetName(target) << " precision "
                             << precision << " n " << n;
      }
    }
  }
}

// The one floating-point kernel must be BITWISE identical across targets
// (fixed histogram summation order), for dense, sparse, and all-zero rank
// vectors at every precision.
TEST(SketchKernelsTest, EstimateFromRanksBitIdenticalFuzz) {
  Rng rng(777);
  for (int precision = 4; precision <= 18; ++precision) {
    const size_t beta = size_t{1} << precision;
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint8_t> ranks(beta, 0);
      if (variant == 1) {
        for (auto& r : ranks) r = static_cast<uint8_t>(rng.NextBounded(62));
      } else if (variant == 2) {
        // Sparse: a few cells set, including max-rank outliers.
        for (int i = 0; i < 5; ++i) {
          ranks[rng.NextBounded(beta)] =
              static_cast<uint8_t>(1 + rng.NextBounded(255));
        }
      }
      const double want =
          Scalar().estimate_from_ranks(ranks.data(), ranks.size());
      for (const SimdTarget target : RunnableTargets()) {
        const double got =
            KernelsFor(target)->estimate_from_ranks(ranks.data(), ranks.size());
        ASSERT_EQ(got, want) << SimdTargetName(target) << " precision "
                             << precision << " variant " << variant;
      }
      // And the public entry point routes through the same kernels.
      ASSERT_EQ(EstimateFromRanks(ranks), want) << precision;
    }
  }
}

// bounded_max_into against both the scalar kernel and a brute-force model,
// over struct-of-arrays cells built from real vHLL sketches (so counts,
// times, and ranks carry the genuine invariants), with many bounds per
// sketch including exact-hit timestamps.
TEST(SketchKernelsTest, BoundedMaxIntoMatchesScalarFuzz) {
  Rng rng(31337);
  for (int precision = 4; precision <= 10; precision += 2) {
    const size_t beta = size_t{1} << precision;
    VersionedHll sketch(precision, 99);
    for (int i = 0; i < 4000; ++i) {
      sketch.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(500)));
    }
    // Flatten into the arena layout.
    std::vector<uint8_t> counts(beta, 0);
    std::vector<uint8_t> ranks;
    std::vector<int64_t> times;
    for (size_t c = 0; c < beta; ++c) {
      counts[c] = static_cast<uint8_t>(sketch.cell(c).size());
      for (const auto& e : sketch.cell(c)) {
        ranks.push_back(e.rank);
        times.push_back(e.time);
      }
    }
    const size_t total = ranks.size();
    for (const Timestamp bound : {Timestamp{-1}, Timestamp{0}, Timestamp{1},
                                  Timestamp{17}, Timestamp{250},
                                  Timestamp{499}, Timestamp{500},
                                  Timestamp{100000}}) {
      // Accumulation semantics: dst starts non-zero.
      std::vector<uint8_t> init(beta);
      for (auto& r : init) r = static_cast<uint8_t>(rng.NextBounded(8));

      std::vector<uint8_t> want = init;
      Scalar().bounded_max_into(counts.data(), ranks.data(), times.data(),
                                beta, total, bound, want.data());

      // Cross-check the scalar kernel against the vHLL's own prefix query.
      std::vector<uint8_t> model(init.begin(), init.end());
      sketch.MaxRanks(bound, &model);
      ASSERT_EQ(want, model) << "precision " << precision << " bound "
                             << bound;

      for (const SimdTarget target : RunnableTargets()) {
        std::vector<uint8_t> got = init;
        KernelsFor(target)->bounded_max_into(counts.data(), ranks.data(),
                                             times.data(), beta, total, bound,
                                             got.data());
        ASSERT_EQ(got, want) << SimdTargetName(target) << " precision "
                             << precision << " bound " << bound;
      }
    }
  }
}

// Ragged entry layouts the vHLL can't produce (single giant cell, empty
// head/tail cells) still dispatch correctly.
TEST(SketchKernelsTest, BoundedMaxIntoRaggedLayouts) {
  const size_t beta = 16;
  std::vector<uint8_t> counts(beta, 0);
  std::vector<uint8_t> ranks;
  std::vector<int64_t> times;
  // Cell 7 holds a long strictly-ascending run; everything else is empty.
  for (int i = 0; i < 60; ++i) {
    counts[7] = 60;
    ranks.push_back(static_cast<uint8_t>(i + 1));
    times.push_back(10 * i);
  }
  for (const Timestamp bound : {Timestamp{0}, Timestamp{5}, Timestamp{11},
                                Timestamp{305}, Timestamp{1000}}) {
    std::vector<uint8_t> want(beta, 0);
    Scalar().bounded_max_into(counts.data(), ranks.data(), times.data(), beta,
                              ranks.size(), bound, want.data());
    for (const SimdTarget target : RunnableTargets()) {
      std::vector<uint8_t> got(beta, 0);
      KernelsFor(target)->bounded_max_into(counts.data(), ranks.data(),
                                           times.data(), beta, ranks.size(),
                                           bound, got.data());
      ASSERT_EQ(got, want) << SimdTargetName(target) << " bound " << bound;
    }
  }
}

}  // namespace
}  // namespace ipin
