#include "ipin/core/neighborhood_profile.h"

#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

ProfileOptions Options(int max_distance, Duration window) {
  ProfileOptions options;
  options.max_distance = max_distance;
  options.window = window;
  return options;
}

// Reference: rebuild the snapshot graph (interactions with time in
// (now - window, now]) and BFS from `u` up to `distance` hops.
size_t BruteForceNeighborhood(const InteractionGraph& graph, size_t prefix,
                              NodeId u, int distance, Duration window) {
  if (prefix == 0) return 0;
  const Timestamp now = graph.interaction(prefix - 1).time;
  std::vector<std::vector<NodeId>> adj(graph.num_nodes());
  for (size_t i = 0; i < prefix; ++i) {
    const Interaction& e = graph.interaction(i);
    if (e.time > now - window && e.src != e.dst) adj[e.src].push_back(e.dst);
  }
  std::vector<int> depth(graph.num_nodes(), -1);
  std::queue<NodeId> queue;
  depth[u] = 0;
  queue.push(u);
  size_t count = 0;
  while (!queue.empty()) {
    const NodeId x = queue.front();
    queue.pop();
    if (depth[x] >= distance) continue;
    for (const NodeId y : adj[x]) {
      if (depth[y] < 0) {
        depth[y] = depth[x] + 1;
        queue.push(y);
        ++count;
      }
    }
  }
  return count;
}

TEST(WindowedProfileExactTest, SimpleChainWithinWindow) {
  WindowedProfileExact profiles(4, Options(3, 10));
  profiles.ProcessInteraction({0, 1, 1});
  profiles.ProcessInteraction({1, 2, 2});
  profiles.ProcessInteraction({2, 3, 3});
  // Snapshot at now=3 contains all edges; 0 reaches 1,2,3 within 3 hops.
  EXPECT_EQ(profiles.NeighborhoodSize(0, 1), 1u);
  EXPECT_EQ(profiles.NeighborhoodSize(0, 2), 2u);
  EXPECT_EQ(profiles.NeighborhoodSize(0, 3), 3u);
}

TEST(WindowedProfileExactTest, LateEdgeExtendsEarlierNodesProfiles) {
  // Back-propagation: edge (1,2) arriving AFTER (0,1) must still put 2 in
  // 0's 2-hop profile (snapshot graphs ignore temporal order).
  WindowedProfileExact profiles(3, Options(2, 100));
  profiles.ProcessInteraction({1, 2, 1});
  profiles.ProcessInteraction({0, 1, 2});
  EXPECT_EQ(profiles.NeighborhoodSize(0, 2), 2u);
  WindowedProfileExact reversed(3, Options(2, 100));
  reversed.ProcessInteraction({0, 1, 1});
  reversed.ProcessInteraction({1, 2, 2});
  EXPECT_EQ(reversed.NeighborhoodSize(0, 2), 2u);
}

TEST(WindowedProfileExactTest, PathsExpireWithTheirOldestEdge) {
  WindowedProfileExact profiles(3, Options(2, 5));
  profiles.ProcessInteraction({0, 1, 1});
  profiles.ProcessInteraction({1, 2, 2});
  EXPECT_EQ(profiles.NeighborhoodSize(0, 2), 2u);
  // Advance time: the (0,1) edge at t=1 leaves the window at now=7.
  profiles.ProcessInteraction({2, 0, 7});
  EXPECT_EQ(profiles.NeighborhoodSize(0, 2), 0u);
  EXPECT_EQ(profiles.NeighborhoodSize(2, 1), 1u);  // fresh edge 2->0
}

TEST(WindowedProfileExactTest, FreshnessIsMinEdgeAndMaxOverPaths) {
  // Two paths 0 -> 2: old direct edge (t=1) and fresh 2-hop (t=8,9).
  // At now=9 with window 5 the direct edge is stale but the 2-hop path
  // keeps 2 in the 2-hop profile.
  WindowedProfileExact profiles(3, Options(2, 5));
  profiles.ProcessInteraction({0, 2, 1});
  profiles.ProcessInteraction({0, 1, 8});
  profiles.ProcessInteraction({1, 2, 9});
  EXPECT_EQ(profiles.NeighborhoodSize(0, 1), 1u);  // only node 1 fresh
  EXPECT_EQ(profiles.NeighborhoodSize(0, 2), 2u);  // 2 via the fresh path
}

TEST(WindowedProfileExactTest, MatchesBruteForceOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const InteractionGraph g = GenerateUniformRandomNetwork(15, 120, 200, seed);
    const Duration window = 60;
    const int max_d = 3;
    WindowedProfileExact profiles(g.num_nodes(), Options(max_d, window));
    for (size_t i = 0; i < g.num_interactions(); ++i) {
      profiles.ProcessInteraction(g.interaction(i));
      if ((i + 1) % 30 != 0) continue;  // check at periodic checkpoints
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (int d = 1; d <= max_d; ++d) {
          EXPECT_EQ(profiles.NeighborhoodSize(u, d),
                    BruteForceNeighborhood(g, i + 1, u, d, window))
              << "seed=" << seed << " i=" << i << " u=" << u << " d=" << d;
        }
      }
    }
  }
}

TEST(WindowedProfileApproxTest, TracksExactOnSmallGraphs) {
  // High precision keeps the sketch in the near-exact linear-counting
  // regime for these cardinalities.
  const InteractionGraph g = GenerateUniformRandomNetwork(20, 150, 300, 5);
  const Duration window = 100;
  const int max_d = 3;
  IrsApproxOptions sketch_options;
  sketch_options.precision = 10;
  WindowedProfileExact exact(g.num_nodes(), Options(max_d, window));
  WindowedProfileApprox approx(g.num_nodes(), Options(max_d, window),
                               sketch_options);
  for (size_t i = 0; i < g.num_interactions(); ++i) {
    exact.ProcessInteraction(g.interaction(i));
    approx.ProcessInteraction(g.interaction(i));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (int d = 1; d <= max_d; ++d) {
      const double truth = static_cast<double>(exact.NeighborhoodSize(u, d));
      EXPECT_NEAR(approx.EstimateNeighborhoodSize(u, d), truth,
                  std::max(1.5, truth * 0.15))
          << "u=" << u << " d=" << d;
    }
  }
}

TEST(WindowedProfileApproxTest, StatisticalAccuracyOnLargerStream) {
  SyntheticConfig config;
  config.num_nodes = 300;
  config.num_interactions = 4000;
  config.time_span = 8000;
  config.seed = 9;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  IrsApproxOptions sketch_options;
  sketch_options.precision = 9;
  WindowedProfileExact exact(g.num_nodes(), Options(2, window));
  WindowedProfileApprox approx(g.num_nodes(), Options(2, window),
                               sketch_options);
  for (size_t i = 0; i < g.num_interactions(); ++i) {
    exact.ProcessInteraction(g.interaction(i));
    approx.ProcessInteraction(g.interaction(i));
  }
  double err = 0.0;
  int count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const size_t truth = exact.NeighborhoodSize(u, 2);
    if (truth < 10) continue;
    err += std::abs(approx.EstimateNeighborhoodSize(u, 2) -
                    static_cast<double>(truth)) /
           static_cast<double>(truth);
    ++count;
  }
  ASSERT_GT(count, 10);
  EXPECT_LT(err / count, 0.15);
}

TEST(WindowedProfileTest, EmptyAndSelfLoops) {
  WindowedProfileExact exact(3, Options(2, 10));
  EXPECT_EQ(exact.NeighborhoodSize(0, 1), 0u);
  exact.ProcessInteraction({1, 1, 5});  // self-loop: ignored
  EXPECT_EQ(exact.NeighborhoodSize(1, 2), 0u);

  IrsApproxOptions sketch_options;
  sketch_options.precision = 6;
  WindowedProfileApprox approx(3, Options(2, 10), sketch_options);
  EXPECT_DOUBLE_EQ(approx.EstimateNeighborhoodSize(0, 1), 0.0);
  approx.ProcessInteraction({1, 1, 5});
  EXPECT_DOUBLE_EQ(approx.EstimateNeighborhoodSize(1, 2), 0.0);
}

TEST(WindowedProfileExactDeathTest, RejectsOutOfOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  WindowedProfileExact profiles(3, Options(2, 10));
  profiles.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(profiles.ProcessInteraction({1, 2, 5}), "CHECK failed");
}

}  // namespace
}  // namespace ipin
