#include "ipin/common/hash.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_EQ(Mix64(0), Mix64(0));
}

TEST(Mix64Test, DistinctInputsGiveDistinctOutputs) {
  // splitmix64's finalizer is a bijection; sample a range and check no
  // collisions.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Consecutive inputs must not give consecutive outputs: count distinct
  // low bytes across a small range.
  std::set<uint8_t> low_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    low_bytes.insert(static_cast<uint8_t>(Mix64(i) & 0xff));
  }
  EXPECT_GT(low_bytes.size(), 150u);  // ~256*(1-1/e) expected for random
}

TEST(Hash64Test, SeedChangesOutput) {
  EXPECT_NE(Hash64(123, 0), Hash64(123, 1));
  EXPECT_EQ(Hash64(123, 7), Hash64(123, 7));
}

TEST(Hash64Test, OutputsLookUniform) {
  // Mean of normalized hashes should be near 1/2.
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(Hash64(static_cast<uint64_t>(i))) /
           18446744073709551616.0;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(HashBytesTest, MatchesOnIdenticalInput) {
  const std::string a = "hello world";
  EXPECT_EQ(HashBytes(a.data(), a.size()), HashBytes(a.data(), a.size()));
}

TEST(HashBytesTest, DiffersOnDifferentInput) {
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString("hello"), HashString("hello "));
  EXPECT_NE(HashString("", 0), HashString("", 1));
}

TEST(HashBytesTest, HandlesAllTailLengths) {
  // Exercise every length mod 8 and ensure prefixes do not collide.
  const std::string base = "abcdefghijklmnop";
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= base.size(); ++len) {
    hashes.insert(HashBytes(base.data(), len));
  }
  EXPECT_EQ(hashes.size(), base.size() + 1);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RhoLsbTest, MatchesDefinition) {
  EXPECT_EQ(RhoLsb(1), 1);    // ...0001
  EXPECT_EQ(RhoLsb(2), 2);    // ...0010
  EXPECT_EQ(RhoLsb(4), 3);    // ...0100
  EXPECT_EQ(RhoLsb(12), 3);   // ...1100
  EXPECT_EQ(RhoLsb(0x8000000000000000ULL), 64);
  EXPECT_EQ(RhoLsb(0), 64);   // all-zero convention
}

TEST(RhoLsbTest, GeometricDistribution) {
  // P(rho >= l) = 2^-(l-1) for random input: roughly half of hashes have
  // rho == 1.
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (RhoLsb(Hash64(static_cast<uint64_t>(i))) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.03);
}

}  // namespace
}  // namespace ipin
