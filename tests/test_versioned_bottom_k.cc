#include "ipin/sketch/versioned_bottom_k.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/random.h"

namespace ipin {
namespace {

// Reference model: all (hash, time) pairs ever inserted (earliest time per
// hash); answers windowed k-smallest queries exactly.
class BottomKModel {
 public:
  void Add(uint64_t hash, Timestamp t) {
    auto [it, inserted] = earliest_.emplace(hash, t);
    if (!inserted && it->second > t) it->second = t;
  }

  // The k smallest hashes among entries with time < bound.
  std::vector<uint64_t> SmallestBefore(Timestamp bound, size_t k) const {
    std::vector<uint64_t> alive;
    for (const auto& [h, t] : earliest_) {
      if (t < bound) alive.push_back(h);
    }
    std::sort(alive.begin(), alive.end());
    if (alive.size() > k) alive.resize(k);
    return alive;
  }

 private:
  std::map<uint64_t, Timestamp> earliest_;
};

TEST(VersionedBottomKTest, ExactBelowK) {
  VersionedBottomK sketch(16);
  for (uint64_t i = 0; i < 10; ++i) sketch.Add(i, static_cast<Timestamp>(i));
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 10.0);
}

TEST(VersionedBottomKTest, DuplicateItemsKeepEarliestTime) {
  VersionedBottomK sketch(8);
  sketch.Add(5, 100);
  sketch.Add(5, 50);
  sketch.Add(5, 200);
  ASSERT_EQ(sketch.NumEntries(), 1u);
  EXPECT_EQ(sketch.entries()[0].time, 50);
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 1.0);
}

TEST(VersionedBottomKTest, PreservesKSmallestForEveryBound) {
  // The defining property: after arbitrary insertions, the retained
  // entries must reproduce the exact k smallest alive hashes for every
  // time bound.
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t k = 4 + trial;
    VersionedBottomK sketch(k);
    BottomKModel model;
    for (int op = 0; op < 400; ++op) {
      const uint64_t hash = rng.NextUint64();
      const Timestamp t = static_cast<Timestamp>(rng.NextBounded(100));
      sketch.AddHash(hash, t);
      model.Add(hash, t);
    }
    ASSERT_TRUE(sketch.CheckInvariants());
    for (const Timestamp bound : {0, 1, 10, 25, 50, 75, 100, 1000}) {
      const auto expected = model.SmallestBefore(bound, k);
      std::vector<uint64_t> got;
      for (const auto& e : sketch.entries()) {
        if (e.time < bound) got.push_back(e.hash);
      }
      std::sort(got.begin(), got.end());
      if (got.size() > k) got.resize(k);
      EXPECT_EQ(got, expected) << "trial " << trial << " bound " << bound;
    }
  }
}

TEST(VersionedBottomKTest, EstimateAccuracy) {
  const double n = 50000.0;
  VersionedBottomK sketch(256);
  Rng rng(3);
  for (uint64_t i = 0; i < static_cast<uint64_t>(n); ++i) {
    sketch.Add(i, static_cast<Timestamp>(rng.NextBounded(1000)));
  }
  EXPECT_NEAR(sketch.Estimate(), n, 4.0 * n / std::sqrt(254.0));
  EXPECT_TRUE(sketch.CheckInvariants());
}

TEST(VersionedBottomKTest, EstimateBeforeCountsWindow) {
  VersionedBottomK sketch(128);
  for (uint64_t i = 0; i < 2000; ++i) sketch.Add(i, 10);
  for (uint64_t i = 10000; i < 12000; ++i) sketch.Add(i, 500);
  const double early = sketch.EstimateBefore(100);
  EXPECT_NEAR(early, 2000.0, 800.0);
  EXPECT_NEAR(sketch.Estimate(), 4000.0, 1500.0);
  EXPECT_GT(sketch.Estimate(), early);
}

TEST(VersionedBottomKTest, MergeWindowFilters) {
  VersionedBottomK source(64);
  for (uint64_t i = 0; i < 500; ++i) source.Add(i, 100);
  for (uint64_t i = 1000; i < 1500; ++i) source.Add(i, 900);
  VersionedBottomK target(64);
  target.MergeWindow(source, 50, 100);  // keep time < 150
  EXPECT_NEAR(target.Estimate(), 500.0, 300.0);
  EXPECT_TRUE(target.CheckInvariants());
}

TEST(VersionedBottomKTest, SizeStaysNearKLogN) {
  VersionedBottomK sketch(16);
  Rng rng(7);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sketch.Add(rng.NextUint64(), static_cast<Timestamp>(n - i));
  }
  // Expected O(k * ln(n/k)) ~ 16 * ln(1250) ~ 114; allow headroom.
  EXPECT_LE(sketch.NumEntries(), 400u);
  EXPECT_TRUE(sketch.CheckInvariants());
}

TEST(VersionedBottomKTest, MergeAllEqualsUnionEstimates) {
  VersionedBottomK a(64, 5);
  VersionedBottomK b(64, 5);
  VersionedBottomK combined(64, 5);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t item = rng.NextBounded(3000);
    const Timestamp t = static_cast<Timestamp>(rng.NextBounded(100));
    if (i % 2 == 0) {
      a.Add(item, t);
    } else {
      b.Add(item, t);
    }
    combined.Add(item, t);
  }
  a.MergeAll(b);
  ASSERT_TRUE(a.CheckInvariants());
  // Same retained k-smallest-for-every-bound as the direct build.
  for (const Timestamp bound : {10, 50, 100}) {
    EXPECT_DOUBLE_EQ(a.EstimateBefore(bound), combined.EstimateBefore(bound));
  }
}

TEST(VersionedBottomKTest, SerializeRoundtripIsBitIdentical) {
  VersionedBottomK sketch(16, 42);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    sketch.Add(rng.NextBounded(1000),
               static_cast<Timestamp>(rng.NextBounded(200)));
  }
  std::string blob;
  sketch.Serialize(&blob);
  size_t offset = 0;
  const auto restored = VersionedBottomK::Deserialize(blob, &offset);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(restored->k(), sketch.k());
  EXPECT_EQ(restored->salt(), sketch.salt());
  ASSERT_EQ(restored->NumEntries(), sketch.NumEntries());
  std::string blob2;
  restored->Serialize(&blob2);
  EXPECT_EQ(blob, blob2);
  for (const Timestamp bound : {10, 100, 200}) {
    EXPECT_DOUBLE_EQ(restored->EstimateBefore(bound),
                     sketch.EstimateBefore(bound));
  }
}

TEST(VersionedBottomKTest, DeserializeRejectsTruncationAndGarbage) {
  VersionedBottomK sketch(8, 1);
  for (int i = 0; i < 100; ++i) sketch.Add(i, i % 20);
  std::string blob;
  sketch.Serialize(&blob);
  // Every proper prefix is truncated input and must be rejected cleanly.
  for (size_t len = 0; len < blob.size(); ++len) {
    size_t offset = 0;
    EXPECT_FALSE(VersionedBottomK::Deserialize(
                     std::string_view(blob.data(), len), &offset)
                     .has_value())
        << "prefix length " << len;
  }
  size_t offset = 0;
  EXPECT_FALSE(VersionedBottomK::Deserialize("garbage", &offset).has_value());
}

}  // namespace
}  // namespace ipin
