#include "ipin/obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/obs/export.h"

namespace ipin::obs {
namespace {

// Every test uses metric names under a test-unique prefix: the registry is
// process-global and pointers live forever, so names must not collide
// across tests.

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Min(), 0u);  // empty reports 0, not UINT64_MAX
  hist.Record(0);
  hist.Record(1);
  hist.Record(3);
  hist.Record(100);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_EQ(hist.Sum(), 104u);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 100u);
}

TEST(HistogramTest, PowerOfTwoBucketPlacement) {
  Histogram hist;
  hist.Record(0);    // bucket 0: exactly zero
  hist.Record(1);    // bucket 1: [1, 1]
  hist.Record(3);    // bucket 2: [2, 3]
  hist.Record(4);    // bucket 3: [4, 7]
  hist.Record(100);  // bucket 7: [64, 127]
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 1u);
  EXPECT_EQ(hist.BucketCount(3), 1u);
  EXPECT_EQ(hist.BucketCount(7), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test_metrics.registry.same");
  Counter* b = registry.GetCounter("test_metrics.registry.same");
  EXPECT_EQ(a, b);
  // Different metric kinds share a namespace-free name pool.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test_metrics.registry.same")),
            static_cast<void*>(a));
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.snapshot.counter");
  counter->Add(5);
  const MetricsSnapshot before = registry.Snapshot();
  counter->Add(100);

  uint64_t seen = 0;
  for (const auto& [name, value] : before.counters) {
    if (name == "test_metrics.snapshot.counter") seen = value;
  }
  EXPECT_EQ(seen, 5u);  // the snapshot did not move with the live counter
}

TEST(RegistryTest, SnapshotSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_metrics.sorted.b");
  registry.GetCounter("test_metrics.sorted.a");
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.concurrent.counter");
  Histogram* hist = registry.GetHistogram("test_metrics.concurrent.hist");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Record(i & 0xff);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// The serving layer reads percentiles (stats endpoint, bench harness) while
// workers keep recording. Snapshots and percentile math must stay sane —
// never crash, never read torn bucket state that breaks the invariants —
// under that race. Run under TSan in CI.
TEST(RegistryTest, SnapshotAndPercentilesRaceWithRecorders) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.race.counter");
  Histogram* hist = registry.GetHistogram("test_metrics.race.hist");

  std::atomic<bool> stop{false};
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        hist->Record((i * 37 + static_cast<uint64_t>(t)) & 0xfff);
        ++i;
      }
    });
  }

  // Reader side: repeated full-registry snapshots plus percentile reads on
  // the in-flight snapshot. Every snapshot must be internally consistent.
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    for (const HistogramSnapshot& h : snapshot.histograms) {
      if (h.name != "test_metrics.race.hist") continue;
      // Count and buckets are copied field-by-field while writers append,
      // so they may disagree slightly mid-flight; the quantile estimates
      // must still stay within the recordable range.
      const double p50 = h.P50();
      const double p99 = h.P99();
      EXPECT_GE(p50, 0.0);
      EXPECT_LE(p50, p99 + 1e-9);
      EXPECT_LE(p99, 4096.0);  // samples are masked to 0xfff
    }
    // Live percentile reads straight off the hot histogram.
    const uint64_t count = hist->Count();
    const uint64_t sum = hist->Sum();
    if (count > 0) {
      EXPECT_GT(sum + 1, 0u);  // no torn garbage
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  const uint64_t final_count = hist->Count();
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, final_count);  // quiescent state is exact
  EXPECT_EQ(counter->Value(), final_count);
}

TEST(RegistryTest, ResetAllZeroesWithoutInvalidatingPointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.reset.counter");
  counter->Add(7);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test_metrics.reset.counter"), counter);
}

TEST(PercentileTest, EmptyHistogramReportsZeroNotGarbage) {
  HistogramSnapshot snapshot;  // all zeroes
  EXPECT_EQ(snapshot.Percentile(0.5), 0.0);
  EXPECT_EQ(snapshot.P50(), 0.0);
  EXPECT_EQ(snapshot.P95(), 0.0);
  EXPECT_EQ(snapshot.P99(), 0.0);
}

TEST(PercentileTest, SingleSampleEveryQuantileIsThatSample) {
  Histogram hist;
  hist.Record(100);
  HistogramSnapshot snapshot;
  snapshot.count = hist.Count();
  snapshot.sum = hist.Sum();
  snapshot.min = hist.Min();
  snapshot.max = hist.Max();
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    snapshot.buckets[i] = hist.BucketCount(i);
  }
  // Bucket interpolation cannot place the sample more precisely than its
  // bucket, but every quantile must land inside [min, max] = [100, 100].
  EXPECT_EQ(snapshot.P50(), 100.0);
  EXPECT_EQ(snapshot.P99(), 100.0);
  EXPECT_EQ(snapshot.Percentile(0.0), 100.0);
  EXPECT_EQ(snapshot.Percentile(1.0), 100.0);
}

TEST(PercentileTest, QuantilesAreMonotoneAndClamped) {
  Histogram hist;
  for (uint64_t v : {1u, 2u, 4u, 8u, 1000u, 2000u, 4000u}) hist.Record(v);
  HistogramSnapshot snapshot;
  snapshot.count = hist.Count();
  snapshot.sum = hist.Sum();
  snapshot.min = hist.Min();
  snapshot.max = hist.Max();
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    snapshot.buckets[i] = hist.BucketCount(i);
  }
  double previous = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double value = snapshot.Percentile(q);
    EXPECT_GE(value, previous) << q;
    EXPECT_GE(value, 1.0) << q;     // clamped to min
    EXPECT_LE(value, 4000.0) << q;  // clamped to max
    previous = value;
  }
}

// Format-correctness of the Prometheus exposition: every non-comment line
// is exactly `name{labels} value` with a legal metric name, every comment
// is a well-formed TYPE line, counters carry _total, and registry names
// with characters Prometheus forbids are sanitized. The server's "metrics"
// verb hands this text to real scrapers, so the grammar is load-bearing.
TEST(PrometheusExportTest, ExpositionMatchesGrammar) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_prom.requests.ok")->Add(3);
  // Already-suffixed counters must not become __total_total.
  registry.GetCounter("test_prom.bytes_total")->Add(9);
  // Dots and dashes are not legal in Prometheus names; sanitizer's problem.
  registry.GetCounter("test_prom.weird-name.9lives")->Add(1);
  registry.GetGauge("test_prom.queue.depth")->Set(2.5);
  Histogram* hist = registry.GetHistogram("test_prom.latency_us");
  hist->Record(3);
  hist->Record(900);

  const std::string text = MetricsPrometheusText(registry.Snapshot());
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');  // exposition ends in a newline

  const std::regex name_re("[a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::regex type_re(
      "# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)");
  const std::regex sample_re(
      "[a-zA-Z_:][a-zA-Z0-9_:]*(\\{[a-zA-Z_][a-zA-Z0-9_]*="
      "\"[^\"\\\\\\n]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\\\\\n]*\")*\\})? "
      "-?[0-9.eE+-]+(e[+-]?[0-9]+)?");

  std::istringstream lines(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, type_re)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0u);

  // Counter naming: _total appended once, never doubled.
  EXPECT_NE(text.find("test_prom_requests_ok_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_bytes_total 9\n"), std::string::npos);
  EXPECT_EQ(text.find("_total_total"), std::string::npos);
  // The illegal characters were mapped into the legal alphabet.
  EXPECT_EQ(text.find("weird-name"), std::string::npos);
  EXPECT_EQ(text.find("test_prom.weird"), std::string::npos);
  EXPECT_NE(text.find("test_prom_weird_name"), std::string::npos);
  // Histograms expose the cumulative series and companion quantile gauges.
  EXPECT_NE(text.find("test_prom_latency_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_sum 903\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_us_p99 "), std::string::npos);

  // Cumulative bucket counts are monotone nondecreasing in le order.
  const std::regex bucket_re(
      "test_prom_latency_us_bucket\\{le=\"([0-9]+|\\+Inf)\"\\} ([0-9]+)");
  std::istringstream again(text);
  uint64_t last = 0;
  while (std::getline(again, line)) {
    std::smatch match;
    if (!std::regex_match(line, match, bucket_re)) continue;
    const uint64_t cumulative = std::stoull(match[2]);
    EXPECT_GE(cumulative, last) << line;
    last = cumulative;
  }
  EXPECT_EQ(last, 2u);  // +Inf bucket equals the count
}

TEST(ScopedTimerTest, RecordsOnDestruction) {
  Histogram hist;
  { ScopedTimer timer(&hist); }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(ScopedTimerTest, StopIsIdempotentAndReturnsSeconds) {
  Histogram hist;
  ScopedTimer timer(&hist);
  const double seconds = timer.Stop();
  EXPECT_GE(seconds, 0.0);
  EXPECT_LT(seconds, 60.0);
  EXPECT_EQ(hist.Count(), 1u);
  timer.Stop();  // second Stop must not double-record
  EXPECT_EQ(hist.Count(), 1u);
}  // destructor must not record either
}  // namespace

namespace macro_test {
namespace {

TEST(MacroTest, CounterMacroCachesAndAccumulates) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_metrics.macro.counter");
  const uint64_t before = counter->Value();
  for (int i = 0; i < 3; ++i) {
    IPIN_COUNTER_ADD("test_metrics.macro.counter", 2);
  }
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(counter->Value(), before);
#else
  EXPECT_EQ(counter->Value(), before + 6);
#endif
}

TEST(MacroTest, LatencyScopeRecordsOneSample) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test_metrics.macro.latency_us");
  const uint64_t before = hist->Count();
  { IPIN_LATENCY_SCOPE("test_metrics.macro.latency_us"); }
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(hist->Count(), before);
#else
  EXPECT_EQ(hist->Count(), before + 1);
#endif
}

}  // namespace
}  // namespace macro_test
}  // namespace ipin::obs
