#include "ipin/obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/obs/export.h"

namespace ipin::obs {
namespace {

// Every test uses metric names under a test-unique prefix: the registry is
// process-global and pointers live forever, so names must not collide
// across tests.

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Min(), 0u);  // empty reports 0, not UINT64_MAX
  hist.Record(0);
  hist.Record(1);
  hist.Record(3);
  hist.Record(100);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_EQ(hist.Sum(), 104u);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 100u);
}

TEST(HistogramTest, PowerOfTwoBucketPlacement) {
  Histogram hist;
  hist.Record(0);    // bucket 0: exactly zero
  hist.Record(1);    // bucket 1: [1, 1]
  hist.Record(3);    // bucket 2: [2, 3]
  hist.Record(4);    // bucket 3: [4, 7]
  hist.Record(100);  // bucket 7: [64, 127]
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 1u);
  EXPECT_EQ(hist.BucketCount(3), 1u);
  EXPECT_EQ(hist.BucketCount(7), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test_metrics.registry.same");
  Counter* b = registry.GetCounter("test_metrics.registry.same");
  EXPECT_EQ(a, b);
  // Different metric kinds share a namespace-free name pool.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test_metrics.registry.same")),
            static_cast<void*>(a));
}

TEST(RegistryTest, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.snapshot.counter");
  counter->Add(5);
  const MetricsSnapshot before = registry.Snapshot();
  counter->Add(100);

  uint64_t seen = 0;
  for (const auto& [name, value] : before.counters) {
    if (name == "test_metrics.snapshot.counter") seen = value;
  }
  EXPECT_EQ(seen, 5u);  // the snapshot did not move with the live counter
}

TEST(RegistryTest, SnapshotSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_metrics.sorted.b");
  registry.GetCounter("test_metrics.sorted.a");
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.concurrent.counter");
  Histogram* hist = registry.GetHistogram("test_metrics.concurrent.hist");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Record(i & 0xff);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// The serving layer reads percentiles (stats endpoint, bench harness) while
// workers keep recording. Snapshots and percentile math must stay sane —
// never crash, never read torn bucket state that breaks the invariants —
// under that race. Run under TSan in CI.
TEST(RegistryTest, SnapshotAndPercentilesRaceWithRecorders) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.race.counter");
  Histogram* hist = registry.GetHistogram("test_metrics.race.hist");

  std::atomic<bool> stop{false};
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        hist->Record((i * 37 + static_cast<uint64_t>(t)) & 0xfff);
        ++i;
      }
    });
  }

  // Reader side: repeated full-registry snapshots plus percentile reads on
  // the in-flight snapshot. Every snapshot must be internally consistent.
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    for (const HistogramSnapshot& h : snapshot.histograms) {
      if (h.name != "test_metrics.race.hist") continue;
      // Count and buckets are copied field-by-field while writers append,
      // so they may disagree slightly mid-flight; the quantile estimates
      // must still stay within the recordable range.
      const double p50 = h.P50();
      const double p99 = h.P99();
      EXPECT_GE(p50, 0.0);
      EXPECT_LE(p50, p99 + 1e-9);
      EXPECT_LE(p99, 4096.0);  // samples are masked to 0xfff
    }
    // Live percentile reads straight off the hot histogram.
    const uint64_t count = hist->Count();
    const uint64_t sum = hist->Sum();
    if (count > 0) {
      EXPECT_GT(sum + 1, 0u);  // no torn garbage
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  const uint64_t final_count = hist->Count();
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, final_count);  // quiescent state is exact
  EXPECT_EQ(counter->Value(), final_count);
}

TEST(RegistryTest, ResetAllZeroesWithoutInvalidatingPointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_metrics.reset.counter");
  counter->Add(7);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test_metrics.reset.counter"), counter);
}

TEST(ScopedTimerTest, RecordsOnDestruction) {
  Histogram hist;
  { ScopedTimer timer(&hist); }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(ScopedTimerTest, StopIsIdempotentAndReturnsSeconds) {
  Histogram hist;
  ScopedTimer timer(&hist);
  const double seconds = timer.Stop();
  EXPECT_GE(seconds, 0.0);
  EXPECT_LT(seconds, 60.0);
  EXPECT_EQ(hist.Count(), 1u);
  timer.Stop();  // second Stop must not double-record
  EXPECT_EQ(hist.Count(), 1u);
}  // destructor must not record either
}  // namespace

namespace macro_test {
namespace {

TEST(MacroTest, CounterMacroCachesAndAccumulates) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_metrics.macro.counter");
  const uint64_t before = counter->Value();
  for (int i = 0; i < 3; ++i) {
    IPIN_COUNTER_ADD("test_metrics.macro.counter", 2);
  }
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(counter->Value(), before);
#else
  EXPECT_EQ(counter->Value(), before + 6);
#endif
}

TEST(MacroTest, LatencyScopeRecordsOneSample) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test_metrics.macro.latency_us");
  const uint64_t before = hist->Count();
  { IPIN_LATENCY_SCOPE("test_metrics.macro.latency_us"); }
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(hist->Count(), before);
#else
  EXPECT_EQ(hist->Count(), before + 1);
#endif
}

}  // namespace
}  // namespace macro_test
}  // namespace ipin::obs
