// Progress/heartbeat engine coverage: phase aggregation, heartbeat
// monotonicity under a multi-threaded workload, reporter lifecycle, and
// the per-phase pool tagging handshake. The substantive tests compile out
// together with the engine under IPIN_OBS_DISABLED; the no-op contract is
// asserted instead so the suite still runs in that configuration.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/json.h"
#include "ipin/common/logging.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/progress.h"

namespace ipin::obs {
namespace {

namespace fs = std::filesystem;

class GlobalThreadsGuard {
 public:
  explicit GlobalThreadsGuard(size_t n) : prev_(GlobalThreads()) {
    SetGlobalThreads(n);
  }
  ~GlobalThreadsGuard() { SetGlobalThreads(prev_); }

 private:
  size_t prev_;
};

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    out_path_ = ::testing::TempDir() + "/ipin_progress_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".jsonl";
    fs::remove(out_path_);
    StopProgressReporting();  // in case a previous test leaked a reporter
    ResetProgressForTest();
  }
  void TearDown() override {
    StopProgressReporting();
    ResetProgressForTest();
    fs::remove(out_path_);
  }

  std::vector<std::string> HeartbeatLines() {
    std::vector<std::string> lines;
    std::ifstream in(out_path_);
    for (std::string line; std::getline(in, line);) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  std::string out_path_;
};

#ifndef IPIN_OBS_DISABLED

const ProgressPhaseSnapshot* FindPhase(
    const std::vector<ProgressPhaseSnapshot>& phases, const std::string& name,
    bool active) {
  for (const ProgressPhaseSnapshot& p : phases) {
    if (p.name == name && p.active == active) return &p;
  }
  return nullptr;
}

TEST_F(ProgressTest, CompletedPhasesAggregateByName) {
  for (int i = 0; i < 3; ++i) {
    ProgressPhase phase("test.aggregate", 10);
    phase.Tick(4);
    phase.Tick(6);
  }
  {
    ProgressPhase other("test.other", 0);
    other.SetDone(7);
    other.SetDone(5);  // SetDone is absolute, last write wins

    const auto live = ProgressPhases();
    const ProgressPhaseSnapshot* active = FindPhase(live, "test.other", true);
    ASSERT_NE(active, nullptr);
    EXPECT_EQ(active->units_done, 5u);
    EXPECT_EQ(active->units_total, 0u);
  }

  const auto phases = ProgressPhases();
  const ProgressPhaseSnapshot* agg =
      FindPhase(phases, "test.aggregate", false);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->instances, 3u);
  EXPECT_EQ(agg->units_done, 30u);
  EXPECT_EQ(agg->units_total, 30u);
  const ProgressPhaseSnapshot* other = FindPhase(phases, "test.other", false);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->instances, 1u);
  EXPECT_EQ(other->units_done, 5u);
  EXPECT_EQ(FindPhase(phases, "test.other", true), nullptr);
}

TEST_F(ProgressTest, HeartbeatsAreMonotoneUnderThreadedTicking) {
  GlobalThreadsGuard threads(4);
  ProgressOptions options;
  options.interval_ms = 5;
  options.out_path = out_path_;
  ASSERT_TRUE(StartProgressReporting(options));

  const uint64_t before = ProgressHeartbeatsEmitted();
  {
    ProgressPhase phase("test.threaded", 4000);
    ParallelFor(size_t{0}, size_t{4000}, size_t{64},
                [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        phase.Tick();
        if (i % 512 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
    // Give the reporter a few cadence intervals with the phase live.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  StopProgressReporting();
  EXPECT_GT(ProgressHeartbeatsEmitted(), before);

  const std::vector<std::string> lines = HeartbeatLines();
  ASSERT_GE(lines.size(), 2u);  // cadence beats + the final beat on stop
  uint64_t prev_seq = 0;
  double prev_elapsed = -1.0;
  uint64_t prev_done = 0;
  for (const std::string& line : lines) {
    const auto doc = JsonValue::Parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->FindString("schema", ""), "ipin.heartbeat.v1");
    const uint64_t seq = static_cast<uint64_t>(doc->FindNumber("seq", 0.0));
    const double elapsed = doc->FindNumber("elapsed_ms", -1.0);
    EXPECT_GT(seq, prev_seq);  // strictly increasing
    EXPECT_GE(elapsed, prev_elapsed);
    prev_seq = seq;
    prev_elapsed = elapsed;
    if (doc->FindString("phase", "") == "test.threaded") {
      const uint64_t done =
          static_cast<uint64_t>(doc->FindNumber("units_done", 0.0));
      EXPECT_GE(done, prev_done);  // never goes backwards
      EXPECT_LE(done, 4000u);     // never overshoots the ticked total
      prev_done = done;
      EXPECT_EQ(doc->FindNumber("units_total", 0.0), 4000.0);
    }
    EXPECT_GE(doc->FindNumber("rss_bytes", -1.0), 0.0);
  }

  // The ring kept for the ledger saw the same stream.
  EXPECT_FALSE(RecentHeartbeatLines().empty());
}

TEST_F(ProgressTest, ReporterLifecycle) {
  ProgressOptions options;
  options.interval_ms = 50;
  options.out_path = out_path_;
  ASSERT_TRUE(StartProgressReporting(options));
  EXPECT_FALSE(StartProgressReporting(options));  // already running
  StopProgressReporting();
  StopProgressReporting();  // idempotent
  // The final beat on stop guarantees at least one line even for a short
  // run that never reached the cadence interval.
  EXPECT_GE(HeartbeatLines().size(), 1u);

  ProgressOptions bad;
  bad.out_path = ::testing::TempDir() + "/no/such/dir/hb.jsonl";
  EXPECT_FALSE(StartProgressReporting(bad));
  StopProgressReporting();
}

TEST_F(ProgressTest, PhaseTagsPoolSections) {
  GlobalThreadsGuard threads(2);
  ResetPoolPhaseProfiles();
  {
    ProgressPhase phase("test.pooltag", 64);
    std::atomic<uint64_t> sink{0};
    ParallelFor(size_t{0}, size_t{64}, size_t{8}, [&](size_t lo, size_t hi) {
      uint64_t local = 0;
      for (size_t i = lo; i < hi; ++i) local += i * i;
      sink.fetch_add(local, std::memory_order_relaxed);
      phase.Tick(hi - lo);
    });
    EXPECT_GT(sink.load(), 0u);
  }
  bool found = false;
  for (const PoolPhaseProfile& profile : PoolPhaseProfiles()) {
    if (profile.name == "test.pooltag") {
      found = true;
      EXPECT_GT(profile.tasks, 0u);
      EXPECT_GE(profile.busy_us, 0u);
      EXPECT_GE(profile.max_task_us, 0u);
    }
  }
  EXPECT_TRUE(found);
  ResetPoolPhaseProfiles();
}

#else  // IPIN_OBS_DISABLED

TEST_F(ProgressTest, DisabledModeIsInert) {
  ProgressPhase phase("test.noop", 10);
  phase.Tick(3);
  phase.SetDone(5);
  EXPECT_TRUE(ProgressPhases().empty());
  ProgressOptions options;
  options.out_path = out_path_;
  EXPECT_FALSE(StartProgressReporting(options));
  StopProgressReporting();
  EXPECT_EQ(ProgressHeartbeatsEmitted(), 0u);
  EXPECT_TRUE(RecentHeartbeatLines().empty());
  EXPECT_FALSE(fs::exists(out_path_));
}

#endif  // IPIN_OBS_DISABLED

}  // namespace
}  // namespace ipin::obs
