#!/usr/bin/env bash
# End-to-end test of the bench-history pipeline: bench_history aggregation
# (both input formats) and the bench_compare regression gate's exit codes.
#
# Usage: bench_tools_test.sh <bench_history> <bench_compare>

set -euo pipefail

BENCH_HISTORY=$1
BENCH_COMPARE=$2
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- fixtures -------------------------------------------------------------
# Two google-benchmark-format reps with slightly different timings.
cat > "$WORKDIR/rep1.json" <<'EOF'
{"context": {"date": "x"}, "benchmarks": [
  {"name": "BM_Scan/100", "real_time": 100.0, "cpu_time": 99.0,
   "time_unit": "us"},
  {"name": "BM_Scan/200", "real_time": 210.0, "cpu_time": 205.0,
   "time_unit": "us"}
]}
EOF
cat > "$WORKDIR/rep2.json" <<'EOF'
{"context": {"date": "x"}, "benchmarks": [
  {"name": "BM_Scan/100", "real_time": 104.0, "cpu_time": 103.0,
   "time_unit": "us"},
  {"name": "BM_Scan/200", "real_time": 190.0, "cpu_time": 188.0,
   "time_unit": "us"}
]}
EOF
# One ipin.metrics.v1 run report.
cat > "$WORKDIR/report.json" <<'EOF'
{"schema": "ipin.metrics.v1",
 "counters": {"irs.exact.edges_scanned": 5000},
 "gauges": {"mem.vhll.bytes": 123456.0},
 "histograms": {"oracle.query_us": {"count": 10, "sum": 1000, "min": 50,
   "max": 200, "mean": 100.0, "p50": 95.0, "p95": 180.0, "p99": 198.0,
   "buckets": [{"le": 127, "count": 10}]}},
 "spans": []}
EOF

# --- bench_history: google-benchmark input --------------------------------
"$BENCH_HISTORY" --bench=micro_test --out="$WORKDIR/BENCH_micro_test.json" \
  --git_sha=abc123 --compiler="g++ 12" --dataset=slashdot --omega=10% \
  "$WORKDIR/rep1.json" "$WORKDIR/rep2.json" \
  || fail "bench_history (google-benchmark input) exited nonzero"

grep -q '"schema": "ipin.bench.v1"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "output missing ipin.bench.v1 schema tag"
grep -q '"git_sha": "abc123"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "output missing git_sha"
grep -q '"reps": 2' "$WORKDIR/BENCH_micro_test.json" \
  || fail "output missing reps"
grep -q '"BM_Scan/100"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "output missing metric BM_Scan/100"
# min of BM_Scan/100 over the two reps is 100, median 102.
grep -q '"min": 100' "$WORKDIR/BENCH_micro_test.json" \
  || fail "wrong min for BM_Scan/100"
grep -q '"median": 102' "$WORKDIR/BENCH_micro_test.json" \
  || fail "wrong median for BM_Scan/100"

# --- bench_history: metrics-report input ----------------------------------
"$BENCH_HISTORY" --bench=harness_test \
  --out="$WORKDIR/BENCH_harness_test.json" "$WORKDIR/report.json" \
  || fail "bench_history (metrics-report input) exited nonzero"
grep -q '"irs.exact.edges_scanned"' "$WORKDIR/BENCH_harness_test.json" \
  || fail "counter metric missing from aggregated report"
grep -q '"oracle.query_us/p95"' "$WORKDIR/BENCH_harness_test.json" \
  || fail "histogram p95 metric missing from aggregated report"

# Rejects garbage input.
echo 'not json' > "$WORKDIR/garbage.json"
if "$BENCH_HISTORY" --bench=x --out="$WORKDIR/x.json" \
    "$WORKDIR/garbage.json" 2>/dev/null; then
  fail "bench_history accepted unparsable input"
fi

# --- bench_compare: identical inputs exit 0 -------------------------------
"$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
  --current="$WORKDIR/BENCH_micro_test.json" \
  || fail "bench_compare nonzero on identical inputs"

# --- bench_compare: injected regression exits nonzero ---------------------
# Degrade BM_Scan/100 by 50% (well past the 10% default threshold).
sed 's/"median": 102/"median": 153/' "$WORKDIR/BENCH_micro_test.json" \
  > "$WORKDIR/BENCH_regressed.json"
if "$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
    --current="$WORKDIR/BENCH_regressed.json" > "$WORKDIR/compare.out"; then
  fail "bench_compare exit 0 on a 50% regression"
fi
grep -q 'REGRESSION' "$WORKDIR/compare.out" \
  || fail "regression not flagged in output"

# Same diff passes with a permissive threshold.
"$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
  --current="$WORKDIR/BENCH_regressed.json" --threshold=0.60 \
  || fail "bench_compare nonzero below explicit threshold"

# An *improvement* must not trip the gate.
sed 's/"median": 102/"median": 51/' "$WORKDIR/BENCH_micro_test.json" \
  > "$WORKDIR/BENCH_improved.json"
"$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
  --current="$WORKDIR/BENCH_improved.json" \
  || fail "bench_compare flagged an improvement as regression"

# --- provenance -----------------------------------------------------------
# bench_history stamps the collecting machine's environment into the
# document so later comparisons can tell like-for-like from cross-machine.
grep -q '"provenance"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "aggregated document missing provenance object"
grep -q '"hostname"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "provenance missing hostname"
grep -q '"build_type"' "$WORKDIR/BENCH_micro_test.json" \
  || fail "provenance missing build_type"
grep -Eq '"threads": [0-9]+' "$WORKDIR/BENCH_micro_test.json" \
  || fail "provenance missing threads"

# Differing provenance warns (stderr) without failing the comparison.
sed 's/"hostname": "[^"]*"/"hostname": "elsewhere"/' \
  "$WORKDIR/BENCH_micro_test.json" > "$WORKDIR/BENCH_elsewhere.json"
"$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
  --current="$WORKDIR/BENCH_elsewhere.json" 2>"$WORKDIR/prov_warn.txt" \
  || fail "provenance-only difference must not fail the gate"
grep -q 'warning: hostname differs' "$WORKDIR/prov_warn.txt" \
  || fail "differing hostname should warn on stderr"
# Identical provenance stays silent.
"$BENCH_COMPARE" --baseline="$WORKDIR/BENCH_micro_test.json" \
  --current="$WORKDIR/BENCH_micro_test.json" 2>"$WORKDIR/prov_quiet.txt" \
  > /dev/null
if grep -q 'warning:' "$WORKDIR/prov_quiet.txt"; then
  fail "identical provenance should not warn"
fi

# Usage / parse errors exit 2 (distinct from the regression exit 1).
set +e
"$BENCH_COMPARE" 2>/dev/null
[[ $? -eq 2 ]] || fail "missing-flags usage error should exit 2"
"$BENCH_COMPARE" --baseline="$WORKDIR/garbage.json" \
  --current="$WORKDIR/BENCH_micro_test.json" 2>"$WORKDIR/parse_err.txt"
[[ $? -eq 2 ]] || fail "parse error should exit 2"
grep -q 'cannot parse' "$WORKDIR/parse_err.txt" \
  || fail "parse error should print a 'cannot parse' diagnostic"
"$BENCH_COMPARE" --baseline="$WORKDIR/no_such_file.json" \
  --current="$WORKDIR/BENCH_micro_test.json" 2>"$WORKDIR/missing_err.txt"
[[ $? -eq 2 ]] || fail "missing baseline file should exit 2"
grep -q 'cannot open' "$WORKDIR/missing_err.txt" \
  || fail "missing file should print a 'cannot open' diagnostic"
set -e

echo "bench_tools_test: all checks passed"
