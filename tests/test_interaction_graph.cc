#include "ipin/graph/interaction_graph.h"

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(InteractionGraphTest, EmptyGraph) {
  InteractionGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_interactions(), 0u);
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.is_sorted());
  const auto stats = g.ComputeStats();
  EXPECT_EQ(stats.time_span, 0);
  EXPECT_EQ(g.WindowFromPercent(10.0), 1);
}

TEST(InteractionGraphTest, AddGrowsNodeCount) {
  InteractionGraph g;
  g.AddInteraction(0, 5, 1);
  EXPECT_EQ(g.num_nodes(), 6u);
  g.AddInteraction(9, 2, 2);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_interactions(), 2u);
}

TEST(InteractionGraphTest, SortednessTracking) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 5);
  EXPECT_TRUE(g.is_sorted());
  g.AddInteraction(1, 2, 3);  // out of order
  EXPECT_FALSE(g.is_sorted());
  g.SortByTime();
  EXPECT_TRUE(g.is_sorted());
  EXPECT_EQ(g.interaction(0).time, 3);
  EXPECT_EQ(g.interaction(1).time, 5);
}

TEST(InteractionGraphTest, ConstructorFromVectorDetectsOrder) {
  std::vector<Interaction> sorted = {{0, 1, 1}, {1, 2, 2}};
  EXPECT_TRUE(InteractionGraph(0, sorted).is_sorted());
  std::vector<Interaction> unsorted = {{0, 1, 2}, {1, 2, 1}};
  EXPECT_FALSE(InteractionGraph(0, unsorted).is_sorted());
}

TEST(InteractionGraphTest, ConstructorGrowsNodeCountToCoverEndpoints) {
  const InteractionGraph g(2, {{0, 7, 1}});
  EXPECT_EQ(g.num_nodes(), 8u);
}

TEST(InteractionGraphTest, StatsComputation) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 10);
  g.AddInteraction(0, 1, 20);  // repeated static edge
  g.AddInteraction(1, 2, 30);
  const auto stats = g.ComputeStats();
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_interactions, 3u);
  EXPECT_EQ(stats.min_time, 10);
  EXPECT_EQ(stats.max_time, 30);
  EXPECT_EQ(stats.time_span, 21);
  EXPECT_EQ(stats.num_static_edges, 2u);
}

TEST(InteractionGraphTest, WindowFromPercent) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 0);
  g.AddInteraction(1, 2, 999);  // span 1000
  EXPECT_EQ(g.WindowFromPercent(10.0), 100);
  EXPECT_EQ(g.WindowFromPercent(100.0), 1000);
  EXPECT_EQ(g.WindowFromPercent(0.0), 1);  // clamped to >= 1
}

TEST(InteractionGraphTest, DistinctTimestampDetection) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 1);
  g.SortByTime();
  EXPECT_FALSE(g.HasDistinctTimestamps());
  g.RankTimestamps();
  EXPECT_TRUE(g.HasDistinctTimestamps());
  EXPECT_EQ(g.interaction(0).time, 0);
  EXPECT_EQ(g.interaction(1).time, 1);
}

TEST(InteractionGraphTest, RankTimestampsPreservesOrder) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 100);
  g.AddInteraction(1, 2, 250);
  g.AddInteraction(2, 3, 900);
  g.SortByTime();
  g.RankTimestamps();
  EXPECT_EQ(g.interaction(0).time, 0);
  EXPECT_EQ(g.interaction(1).time, 1);
  EXPECT_EQ(g.interaction(2).time, 2);
  EXPECT_EQ(g.interaction(0).src, 0u);  // edge payload untouched
}

TEST(InteractionGraphTest, DebugStringMentionsSizes) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 1);
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

TEST(InteractionGraphTest, MemoryUsageGrowsWithEdges) {
  InteractionGraph g;
  const size_t empty_bytes = g.MemoryUsageBytes();
  for (int i = 0; i < 1000; ++i) g.AddInteraction(0, 1, i);
  EXPECT_GT(g.MemoryUsageBytes(), empty_bytes);
}

TEST(InteractionOrderingTest, OperatorLessOrdersByTimeFirst) {
  const Interaction a{5, 5, 1};
  const Interaction b{0, 0, 2};
  EXPECT_LT(a, b);
  const Interaction c{1, 9, 2};
  EXPECT_LT(b, c);  // same time, smaller src
}

}  // namespace
}  // namespace ipin
