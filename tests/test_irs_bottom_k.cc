#include "ipin/core/irs_approx_bottom_k.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

IrsBottomKOptions Options(size_t k, uint64_t salt = 0) {
  IrsBottomKOptions options;
  options.k = k;
  options.salt = salt;
  return options;
}

TEST(IrsBottomKTest, ExactBelowKOnFigureOne) {
  // All IRS sets in Figure 1a are smaller than k, so bottom-k estimates
  // are EXACT (modulo the self-cycle the sketch cannot filter).
  const InteractionGraph g = FigureOneGraph();
  const IrsExact exact = IrsExact::Compute(g, 3);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, 3, Options(16));
  for (NodeId u = 0; u < 6; ++u) {
    const double est = approx.EstimateIrsSize(u);
    const double truth = static_cast<double>(exact.IrsSize(u));
    EXPECT_GE(est, truth) << "node " << u;
    EXPECT_LE(est, truth + 1.0) << "node " << u;  // self-cycle slack
  }
}

TEST(IrsBottomKTest, TracksExactOnSyntheticNetwork) {
  SyntheticConfig config;
  config.num_nodes = 300;
  config.num_interactions = 5000;
  config.time_span = 10000;
  config.seed = 77;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  const IrsExact exact = IrsExact::Compute(g, window);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, window, Options(128));

  double err = 0.0;
  int count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (exact.IrsSize(u) < 10) continue;
    const double truth = static_cast<double>(exact.IrsSize(u));
    err += std::abs(approx.EstimateIrsSize(u) - truth) / truth;
    ++count;
  }
  ASSERT_GT(count, 20);
  EXPECT_LT(err / count, 0.12);  // ~1/sqrt(126) + slack
}

TEST(IrsBottomKTest, SmallSetsAreExact) {
  // Sets below k have exact cardinality (a bottom-k advantage over HLL).
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 200, 1000, 5);
  const Duration window = 50;
  const IrsExact exact = IrsExact::Compute(g, window);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, window, Options(64));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const size_t truth = exact.IrsSize(u);
    if (truth >= 64) continue;
    // Allow +1 for temporal self-cycles (unfilterable in any sketch).
    EXPECT_GE(approx.EstimateIrsSize(u), static_cast<double>(truth));
    EXPECT_LE(approx.EstimateIrsSize(u), static_cast<double>(truth) + 1.0)
        << "node " << u;
  }
}

TEST(IrsBottomKTest, UnionEstimateTracksExact) {
  SyntheticConfig config;
  config.num_nodes = 250;
  config.num_interactions = 4000;
  config.time_span = 8000;
  config.seed = 13;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 1500;
  const IrsExact exact = IrsExact::Compute(g, window);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, window, Options(128));
  const std::vector<NodeId> seeds = {2, 31, 77, 120, 200};
  const double truth = static_cast<double>(exact.UnionSize(seeds));
  if (truth > 30.0) {
    EXPECT_NEAR(approx.EstimateUnionSize(seeds) / truth, 1.0, 0.25);
  }
}

TEST(IrsBottomKTest, LazyAllocationAndEmptyGraph) {
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, 5, Options(8));
  EXPECT_EQ(approx.NumAllocatedSketches(), 1u);
  EXPECT_DOUBLE_EQ(approx.EstimateIrsSize(2), 0.0);
  EXPECT_GT(approx.MemoryUsageBytes(), 0u);

  const InteractionGraph empty(3);
  const IrsApproxBottomK none =
      IrsApproxBottomK::Compute(empty, 5, Options(8));
  EXPECT_EQ(none.NumAllocatedSketches(), 0u);
}

TEST(IrsBottomKDeathTest, RejectsOutOfOrderInteractions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  IrsApproxBottomK irs(3, 5, Options(8));
  irs.ProcessInteraction({0, 1, 10});
  EXPECT_DEATH(irs.ProcessInteraction({1, 2, 20}), "CHECK failed");
}

TEST(IrsBottomKTest, SketchInvariantsHoldAfterScan) {
  const InteractionGraph g = GenerateUniformRandomNetwork(60, 800, 2000, 21);
  const IrsApproxBottomK approx =
      IrsApproxBottomK::Compute(g, 500, Options(16));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (approx.Sketch(u) != nullptr) {
      EXPECT_TRUE(approx.Sketch(u)->CheckInvariants()) << "node " << u;
    }
  }
}

}  // namespace
}  // namespace ipin
