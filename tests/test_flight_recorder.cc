#include "ipin/serve/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/json.h"

namespace ipin::serve {
namespace {

RequestRecord MakeRecord(int64_t id, int64_t total_us) {
  RequestRecord record;
  record.trace_id = static_cast<uint64_t>(id) * 0x1111;
  record.id = id;
  record.mode = QueryMode::kAuto;
  record.status = StatusCode::kOk;
  record.num_seeds = 3;
  record.epoch = 1;
  record.admission_us = 5;
  record.queue_us = 10;
  record.eval_us = total_us - 20;
  record.write_us = 5;
  record.total_us = total_us;
  return record;
}

TEST(FlightRecorderTest, RecentRingKeepsNewestInOrder) {
  FlightRecorder recorder(/*recent_capacity=*/4, /*slow_capacity=*/4,
                          /*slow_threshold_us=*/1000000);
  for (int64_t i = 1; i <= 7; ++i) recorder.Record(MakeRecord(i, 100));

  EXPECT_EQ(recorder.recorded(), 7u);
  EXPECT_EQ(recorder.slow_recorded(), 0u);
  const auto recent = recorder.RecentSnapshot();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest -> newest after the ring wrapped: 4, 5, 6, 7.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, static_cast<int64_t>(i + 4));
  }
  EXPECT_TRUE(recorder.SlowSnapshot().empty());
}

TEST(FlightRecorderTest, UnwrappedRingPreservesInsertionOrder) {
  FlightRecorder recorder(8, 8, 1000000);
  for (int64_t i = 1; i <= 3; ++i) recorder.Record(MakeRecord(i, 100));
  const auto recent = recorder.RecentSnapshot();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, 1);
  EXPECT_EQ(recent[2].id, 3);
}

TEST(FlightRecorderTest, SlowRequestsLandInBothRings) {
  FlightRecorder recorder(16, 2, /*slow_threshold_us=*/500);
  recorder.Record(MakeRecord(1, 100));   // fast
  recorder.Record(MakeRecord(2, 501));   // slow
  recorder.Record(MakeRecord(3, 9000));  // slow
  recorder.Record(MakeRecord(4, 500));   // exactly at threshold: not slow
  recorder.Record(MakeRecord(5, 700));   // slow; evicts id 2

  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.slow_recorded(), 3u);
  EXPECT_EQ(recorder.RecentSnapshot().size(), 5u);
  const auto slow = recorder.SlowSnapshot();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].id, 3);
  EXPECT_EQ(slow[1].id, 5);
}

TEST(FlightRecorderTest, ZeroCapacityRingsStillCount) {
  FlightRecorder recorder(0, 0, 10);
  recorder.Record(MakeRecord(1, 100));
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.slow_recorded(), 1u);
  EXPECT_TRUE(recorder.RecentSnapshot().empty());
  EXPECT_TRUE(recorder.SlowSnapshot().empty());
}

TEST(FlightRecorderTest, DumpJsonMatchesSchema) {
  FlightRecorder recorder(8, 8, /*slow_threshold_us=*/500);
  recorder.Record(MakeRecord(7, 100));
  RequestRecord slow = MakeRecord(8, 2337);
  slow.status = StatusCode::kDeadlineExceeded;
  slow.degraded = true;
  recorder.Record(slow);

  const std::string dump = recorder.DumpJson();
  const auto doc = JsonValue::Parse(dump);
  ASSERT_TRUE(doc.has_value()) << dump;
  EXPECT_EQ(doc->FindString("schema", ""), "ipin.debug.v1");
  EXPECT_EQ(doc->FindNumber("slow_threshold_us", -1), 500.0);
  EXPECT_EQ(doc->FindNumber("recorded", -1), 2.0);
  EXPECT_EQ(doc->FindNumber("slow_recorded", -1), 1.0);

  const JsonValue* recent = doc->Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_TRUE(recent->is_array());
  ASSERT_EQ(recent->array_items().size(), 2u);
  const JsonValue& fast = recent->array_items()[0];
  EXPECT_EQ(fast.FindNumber("id", -1), 7.0);
  EXPECT_EQ(fast.FindString("mode", ""), "auto");
  EXPECT_EQ(fast.FindString("status", ""), "OK");
  EXPECT_EQ(fast.FindNumber("seeds", -1), 3.0);
  EXPECT_EQ(fast.FindNumber("total_us", -1), 100.0);
  EXPECT_GE(fast.FindNumber("age_us", -1), 0.0);

  const JsonValue* slow_arr = doc->Find("slow");
  ASSERT_NE(slow_arr, nullptr);
  ASSERT_TRUE(slow_arr->is_array());
  ASSERT_EQ(slow_arr->array_items().size(), 1u);
  const JsonValue& record = slow_arr->array_items()[0];
  EXPECT_EQ(record.FindNumber("id", -1), 8.0);
  EXPECT_EQ(record.FindString("status", ""), "DEADLINE_EXCEEDED");
  const JsonValue* degraded = record.Find("degraded");
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->is_bool());
  EXPECT_TRUE(degraded->bool_value());
  // Per-stage timings all present: the whole point of the recorder.
  EXPECT_EQ(record.FindNumber("admission_us", -1), 5.0);
  EXPECT_EQ(record.FindNumber("queue_us", -1), 10.0);
  EXPECT_EQ(record.FindNumber("eval_us", -1), 2317.0);
  EXPECT_EQ(record.FindNumber("write_us", -1), 5.0);
  // trace_id is the hex form the wire protocol uses.
  EXPECT_EQ(record.FindString("trace_id", ""), TraceIdToHex(8 * 0x1111));
}

TEST(FlightRecorderTest, DumpOfEmptyRecorderIsValidJson) {
  FlightRecorder recorder(4, 4, 1000);
  const auto doc = JsonValue::Parse(recorder.DumpJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindNumber("recorded", -1), 0.0);
  ASSERT_NE(doc->Find("recent"), nullptr);
  EXPECT_TRUE(doc->Find("recent")->array_items().empty());
}

}  // namespace
}  // namespace ipin::serve
