#include "ipin/serve/protocol.h"

#include <gtest/gtest.h>

namespace ipin::serve {
namespace {

TEST(ServeProtocolTest, RequestRoundtrip) {
  Request request;
  request.id = 42;
  request.method = Method::kQuery;
  request.seeds = {1, 5, 9};
  request.mode = QueryMode::kExact;
  request.deadline_ms = 250;

  const std::string line = SerializeRequest(request);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line

  std::string error;
  const auto parsed = ParseRequest(
      std::string_view(line).substr(0, line.size() - 1), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, 42);
  EXPECT_EQ(parsed->method, Method::kQuery);
  EXPECT_EQ(parsed->seeds, (std::vector<NodeId>{1, 5, 9}));
  EXPECT_EQ(parsed->mode, QueryMode::kExact);
  EXPECT_EQ(parsed->deadline_ms, 250);
}

TEST(ServeProtocolTest, NonQueryMethodsNeedNoSeeds) {
  for (const Method method : {Method::kHealth, Method::kStats,
                              Method::kReload}) {
    Request request;
    request.id = 7;
    request.method = method;
    std::string error;
    const auto parsed = ParseRequest(
        SerializeRequest(request).substr(0,
                                         SerializeRequest(request).size() - 1),
        &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->method, method);
    EXPECT_TRUE(parsed->seeds.empty());
  }
}

TEST(ServeProtocolTest, DefaultsApplied) {
  std::string error;
  const auto parsed = ParseRequest(R"({"seeds": [3]})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, 0);
  EXPECT_EQ(parsed->method, Method::kQuery);  // default method
  EXPECT_EQ(parsed->mode, QueryMode::kAuto);  // default mode
  EXPECT_EQ(parsed->deadline_ms, 0);          // server default
}

TEST(ServeProtocolTest, BadRequestsRejectedWithReason) {
  const struct {
    const char* line;
    const char* reason;
  } cases[] = {
      {"not json", "request is not a JSON object"},
      {"[1, 2]", "request is not a JSON object"},
      {R"({"method": "destroy"})", "unknown method"},
      {R"({"seeds": [1], "mode": "psychic"})", "unknown mode"},
      {R"({"seeds": [1], "deadline_ms": -5})", "negative deadline_ms"},
      {R"({"seeds": "1,2"})", "seeds is not an array"},
      {R"({"seeds": [-1]})", "seed is not a non-negative integer node id"},
      {R"({"seeds": ["a"]})", "seed is not a non-negative integer node id"},
      // Out of uint32 range / non-integral: casting such doubles to NodeId
      // would be undefined behavior, so they must be rejected, not cast.
      {R"({"seeds": [1e18]})", "seed is not a non-negative integer node id"},
      {R"({"seeds": [4294967296]})",
       "seed is not a non-negative integer node id"},
      {R"({"seeds": [1.5]})", "seed is not a non-negative integer node id"},
      {R"({"method": "query"})", "query without seeds"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(ParseRequest(c.line, &error).has_value()) << c.line;
    EXPECT_EQ(error, c.reason) << c.line;
  }
}

TEST(ServeProtocolTest, ExtremeNumericFieldsAreClampedNotUb) {
  // uint32 max is a valid seed; id/deadline_ms/epoch outside their integer
  // range are clamped instead of hitting an out-of-range double->int cast.
  std::string error;
  auto parsed = ParseRequest(
      R"({"id": 1e300, "seeds": [4294967295], "deadline_ms": 1e300})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->seeds, (std::vector<NodeId>{4294967295u}));
  EXPECT_EQ(parsed->id, int64_t{1} << 53);
  EXPECT_EQ(parsed->deadline_ms, int64_t{1} << 53);

  const auto response =
      ParseResponse(R"({"status": "OK", "epoch": -7, "retry_after_ms": 1e300})");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->epoch, 0u);  // negative epoch clamps to 0
  EXPECT_EQ(response->retry_after_ms, int64_t{1} << 53);
}

TEST(ServeProtocolTest, BadRequestStillYieldsId) {
  std::string error;
  int64_t id = 0;
  EXPECT_FALSE(
      ParseRequest(R"({"id": 99, "method": "destroy"})", &error, &id)
          .has_value());
  EXPECT_EQ(id, 99);  // the server can echo it in the error response
}

TEST(ServeProtocolTest, ResponseRoundtrip) {
  Response response;
  response.id = 13;
  response.status = StatusCode::kOk;
  response.estimate = 123.5;
  response.degraded = true;
  response.epoch = 4;

  const std::string line = SerializeResponse(response);
  EXPECT_EQ(line.back(), '\n');
  const auto parsed = ParseResponse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, 13);
  EXPECT_EQ(parsed->status, StatusCode::kOk);
  EXPECT_DOUBLE_EQ(parsed->estimate, 123.5);
  EXPECT_TRUE(parsed->degraded);
  EXPECT_EQ(parsed->epoch, 4u);
}

TEST(ServeProtocolTest, OverloadedResponseCarriesRetryHint) {
  Response response;
  response.id = 8;
  response.status = StatusCode::kOverloaded;
  response.retry_after_ms = 75;
  response.error = "queue full";
  const auto parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, StatusCode::kOverloaded);
  EXPECT_EQ(parsed->retry_after_ms, 75);
  EXPECT_EQ(parsed->error, "queue full");
}

TEST(ServeProtocolTest, InfoMapRoundtrip) {
  Response response;
  response.status = StatusCode::kOk;
  response.info = {{"queue_depth", 3.0}, {"epoch", 2.0}};
  const auto parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->info.size(), 2u);
  // JSON objects carry no order guarantee; check as a set.
  double queue_depth = -1.0, epoch = -1.0;
  for (const auto& [key, value] : parsed->info) {
    if (key == "queue_depth") queue_depth = value;
    if (key == "epoch") epoch = value;
  }
  EXPECT_DOUBLE_EQ(queue_depth, 3.0);
  EXPECT_DOUBLE_EQ(epoch, 2.0);
}

TEST(ServeProtocolTest, ErrorStringsAreEscaped) {
  Response response;
  response.status = StatusCode::kBadRequest;
  response.error = "bad \"line\"\n\twith control \x01 bytes";
  const std::string line = SerializeResponse(response);
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // newline survived escaping
  const auto parsed = ParseResponse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->error, response.error);
}

TEST(ServeProtocolTest, MalformedResponsesRejected) {
  EXPECT_FALSE(ParseResponse("").has_value());
  EXPECT_FALSE(ParseResponse("null").has_value());
  EXPECT_FALSE(ParseResponse(R"({"id": 1})").has_value());  // no status
  EXPECT_FALSE(ParseResponse(R"({"id": 1, "status": "MAYBE"})").has_value());
}

TEST(ServeProtocolTest, TraceIdHexRoundtrip) {
  EXPECT_EQ(TraceIdToHex(0x00c0ffee0badf00dULL), "00c0ffee0badf00d");
  EXPECT_EQ(TraceIdToHex(1), "0000000000000001");
  for (const uint64_t id :
       {uint64_t{1}, uint64_t{0xdeadbeef}, UINT64_MAX}) {
    const auto back = TraceIdFromHex(TraceIdToHex(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  // Short forms and uppercase are accepted on the way in.
  EXPECT_EQ(TraceIdFromHex("f"), 0xfu);
  EXPECT_EQ(TraceIdFromHex("DEADBEEF"), 0xdeadbeefu);
  // Not hex / empty / too long are not.
  EXPECT_FALSE(TraceIdFromHex("").has_value());
  EXPECT_FALSE(TraceIdFromHex("xyz").has_value());
  EXPECT_FALSE(TraceIdFromHex("0x12").has_value());
  EXPECT_FALSE(TraceIdFromHex("00112233445566778").has_value());  // 17 chars
}

TEST(ServeProtocolTest, TraceContextRoundtrip) {
  Request request;
  request.id = 5;
  request.seeds = {1};
  request.trace_id = 0x00c0ffee0badf00dULL;
  request.parent_span = 0x17;
  std::string error;
  const std::string line = SerializeRequest(request);
  EXPECT_NE(line.find("\"trace_id\": \"00c0ffee0badf00d\""),
            std::string::npos);
  const auto parsed =
      ParseRequest(std::string_view(line).substr(0, line.size() - 1), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->trace_id, 0x00c0ffee0badf00dULL);
  EXPECT_EQ(parsed->parent_span, 0x17u);

  // Absent trace fields parse as 0 (= none carried).
  const auto bare = ParseRequest(R"({"seeds": [1]})", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->trace_id, 0u);
  EXPECT_EQ(bare->parent_span, 0u);
}

TEST(ServeProtocolTest, BadTraceContextRejected) {
  const struct {
    const char* line;
    const char* reason;
  } cases[] = {
      {R"({"seeds": [1], "trace_id": 7})", "trace ids must be hex strings"},
      {R"({"seeds": [1], "trace_id": "zz"})",
       "trace ids must be 1-16 hex digits"},
      {R"({"seeds": [1], "trace_id": ""})",
       "trace ids must be 1-16 hex digits"},
      {R"({"seeds": [1], "parent_span": "00112233445566778"})",
       "trace ids must be 1-16 hex digits"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(ParseRequest(c.line, &error).has_value()) << c.line;
    EXPECT_EQ(error, c.reason) << c.line;
  }
}

TEST(ServeProtocolTest, MetricsAndDebugMethodsParse) {
  std::string error;
  auto parsed = ParseRequest(R"({"method": "metrics"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->method, Method::kMetrics);
  EXPECT_EQ(parsed->format, MetricsFormat::kPrometheus);  // default

  parsed = ParseRequest(R"({"method": "metrics", "format": "json"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->format, MetricsFormat::kJson);

  EXPECT_FALSE(
      ParseRequest(R"({"method": "metrics", "format": "xml"})", &error)
          .has_value());
  EXPECT_EQ(error, "unknown format");

  parsed = ParseRequest(R"({"method": "debug"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->method, Method::kDebug);

  // The client serializer round-trips both verbs.
  Request request;
  request.method = Method::kMetrics;
  request.format = MetricsFormat::kJson;
  const std::string line = SerializeRequest(request);
  parsed = ParseRequest(std::string_view(line).substr(0, line.size() - 1),
                        &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->method, Method::kMetrics);
  EXPECT_EQ(parsed->format, MetricsFormat::kJson);
}

TEST(ServeProtocolTest, ResponseTraceAndPayloadRoundtrip) {
  Response response;
  response.id = 3;
  response.status = StatusCode::kOk;
  response.trace_id = 0xabcdULL;
  response.payload = "# TYPE x counter\nx_total 1\n";
  const std::string line = SerializeResponse(response);
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // payload newlines escaped
  const auto parsed = ParseResponse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, 0xabcdULL);
  EXPECT_EQ(parsed->payload, response.payload);

  // Absent fields read back as their "none" values.
  const auto bare = ParseResponse(R"({"status": "OK"})");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->trace_id, 0u);
  EXPECT_TRUE(bare->payload.empty());
}

TEST(ServeProtocolTest, StatusCodeNamesRoundtrip) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kBadRequest, StatusCode::kDeadlineExceeded,
        StatusCode::kOverloaded, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    const auto back = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(StatusCodeFromName("ok").has_value());  // case-sensitive
}


TEST(ServeProtocolTest, ShardedRequestFieldsRoundtrip) {
  Request request;
  request.id = 9;
  request.method = Method::kTopk;
  request.k = 25;
  std::string error;
  auto line = SerializeRequest(request);
  auto parsed =
      ParseRequest(std::string_view(line).substr(0, line.size() - 1), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->method, Method::kTopk);
  EXPECT_EQ(parsed->k, 25);

  request = Request{};
  request.method = Method::kQuery;
  request.seeds = {4, 8};
  request.mode = QueryMode::kSketch;
  request.want_ranks = true;
  line = SerializeRequest(request);
  parsed =
      ParseRequest(std::string_view(line).substr(0, line.size() - 1), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->want_ranks);
  EXPECT_EQ(parsed->mode, QueryMode::kSketch);
}

TEST(ServeProtocolTest, TopkDefaultsAndValidation) {
  std::string error;
  const auto defaulted = ParseRequest(R"({"method": "topk"})", &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_EQ(defaulted->k, 10);
  // k must be >= 1.
  EXPECT_FALSE(
      ParseRequest(R"({"method": "topk", "k": 0})", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocolTest, RanksHexRoundtrip) {
  const std::vector<uint8_t> ranks = {0, 1, 10, 63, 255};
  const std::string hex = RanksToHex(ranks);
  EXPECT_EQ(hex, "00010a3fff");
  const auto back = RanksFromHex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ranks);
  EXPECT_FALSE(RanksFromHex("abc").has_value());   // odd length
  EXPECT_FALSE(RanksFromHex("zz").has_value());    // not hex
  EXPECT_TRUE(RanksFromHex("")->empty());
}

TEST(ServeProtocolTest, ShardedResponseFieldsRoundtrip) {
  Response response;
  response.id = 3;
  response.status = StatusCode::kOk;
  response.estimate = 17.5;
  response.degraded = true;
  response.ranks = {3, 0, 7, 1};
  response.topk = {{5, 12.0}, {9, 3.25}};
  response.shards_total = 3;
  response.shards_answered = 2;
  response.coverage = 0.75;

  const std::string line = SerializeResponse(response);
  const auto parsed =
      ParseResponse(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ranks, (std::vector<uint8_t>{3, 0, 7, 1}));
  ASSERT_EQ(parsed->topk.size(), 2u);
  EXPECT_EQ(parsed->topk[0].first, 5u);
  EXPECT_DOUBLE_EQ(parsed->topk[0].second, 12.0);
  EXPECT_EQ(parsed->shards_total, 3);
  EXPECT_EQ(parsed->shards_answered, 2);
  EXPECT_DOUBLE_EQ(parsed->coverage, 0.75);
  EXPECT_TRUE(parsed->degraded);
}

TEST(ServeProtocolTest, ShardFieldsOmittedWhenNotSharded) {
  Response response;
  response.id = 1;
  response.status = StatusCode::kOk;
  response.estimate = 2.0;
  const std::string line = SerializeResponse(response);
  EXPECT_EQ(line.find("shards_total"), std::string::npos);
  EXPECT_EQ(line.find("coverage"), std::string::npos);
  const auto parsed =
      ParseResponse(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->shards_total, 0);
  EXPECT_EQ(parsed->shards_answered, 0);
}


}  // namespace
}  // namespace ipin::serve
