#include "ipin/baselines/degree.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(HighDegreeTest, PicksHighestOutDegree) {
  const StaticGraph g = StaticGraph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  const auto seeds = SelectSeedsHighDegree(g, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);  // degree 3
  EXPECT_EQ(seeds[1], 1u);  // degree 2
}

TEST(HighDegreeTest, TieBreaksBySmallerId) {
  const StaticGraph g =
      StaticGraph::FromEdges(4, {{2, 0}, {2, 1}, {3, 0}, {3, 1}});
  const auto seeds = SelectSeedsHighDegree(g, 1);
  EXPECT_EQ(seeds[0], 2u);
}

TEST(HighDegreeTest, InteractionOverloadFlattensRepeats) {
  InteractionGraph g(3);
  // Node 0 interacts 10 times with one partner; node 1 with two partners.
  for (int i = 0; i < 10; ++i) g.AddInteraction(0, 2, i);
  g.AddInteraction(1, 0, 20);
  g.AddInteraction(1, 2, 21);
  const auto seeds = SelectSeedsHighDegree(g, 1);
  EXPECT_EQ(seeds[0], 1u);  // 2 distinct neighbours beats 1
}

TEST(SmartHighDegreeTest, AvoidsOverlappingNeighborhoods) {
  // 0 and 1 cover the same 3 targets; 2 covers 2 fresh ones.
  const StaticGraph g = StaticGraph::FromEdges(
      8, {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 6}, {2, 7}});
  const auto shd = SelectSeedsSmartHighDegree(g, 2);
  ASSERT_EQ(shd.size(), 2u);
  EXPECT_EQ(shd[0], 0u);
  EXPECT_EQ(shd[1], 2u);  // HD would pick 1 here

  const auto hd = SelectSeedsHighDegree(g, 2);
  EXPECT_EQ(hd[1], 1u);
}

TEST(SmartHighDegreeTest, CoversAtLeastAsMuchAsHighDegree) {
  // Greedy coverage never covers fewer distinct targets than top-k degree.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId j = 0; j < (u % 5) + 1; ++j) {
      edges.emplace_back(u, 30 + ((u * 3 + j * 7) % 20));
    }
  }
  const StaticGraph g = StaticGraph::FromEdges(50, edges);

  const auto coverage_of = [&g](const std::vector<NodeId>& seeds) {
    std::set<NodeId> covered;
    for (const NodeId s : seeds) {
      const auto nbrs = g.Neighbors(s);
      covered.insert(nbrs.begin(), nbrs.end());
    }
    return covered.size();
  };
  for (const size_t k : {1u, 3u, 5u, 8u}) {
    EXPECT_GE(coverage_of(SelectSeedsSmartHighDegree(g, k)),
              coverage_of(SelectSeedsHighDegree(g, k)))
        << "k=" << k;
  }
}

TEST(SmartHighDegreeTest, KBounds) {
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}});
  EXPECT_EQ(SelectSeedsSmartHighDegree(g, 0).size(), 0u);
  EXPECT_EQ(SelectSeedsSmartHighDegree(g, 99).size(), 3u);
}

TEST(SmartHighDegreeTest, SeedsAreDistinct) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 20; ++u) edges.emplace_back(u, (u + 1) % 20);
  const StaticGraph g = StaticGraph::FromEdges(20, edges);
  const auto seeds = SelectSeedsSmartHighDegree(g, 10);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace ipin
