#include "ipin/serve/server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/json.h"
#include "ipin/common/logging.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/oracle_io.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"
#include "ipin/sketch/estimators.h"

namespace ipin::serve {
namespace {

constexpr size_t kNumNodes = 40;

// Raw blocking Unix-socket connection, for tests that need to speak the wire
// protocol in ways the client library deliberately does not (pipelining,
// never reading).
int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Reads until `count` newline-terminated lines arrived (or EOF/error).
std::vector<std::string> ReadLines(int fd, size_t count) {
  std::vector<std::string> lines;
  std::string buffer;
  while (lines.size() < count) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      lines.push_back(buffer.substr(0, newline));
      buffer.erase(0, newline + 1);
      continue;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return lines;
}

// In-process server over a Unix-domain socket in TempDir, talked to with the
// real client library — the full wire path minus process isolation.
class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    const std::string tag = std::to_string(reinterpret_cast<uintptr_t>(this));
    socket_path_ = ::testing::TempDir() + "/ipin_srv_" + tag + ".sock";
    graph_ = GenerateUniformRandomNetwork(kNumNodes, 400, 1000, 3);
    IrsApproxOptions options;
    options.precision = 5;
    index_ = std::make_unique<IndexManager>("");
    index_->Install(std::make_shared<const IrsApprox>(
        IrsApprox::Compute(graph_, 200, options)));
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    failpoint::ClearAll();
    std::remove(socket_path_.c_str());
  }

  void StartServer(ServerOptions options = {}) {
    options.unix_socket_path = socket_path_;
    server_ = std::make_unique<OracleServer>(index_.get(), options);
    ASSERT_TRUE(server_->Start());
  }

  void LoadExact() {
    index_->SetExact(
        std::make_shared<const IrsExact>(IrsExact::Compute(graph_, 200)));
  }

  ClientOptions MakeClientOptions() const {
    ClientOptions options;
    options.unix_socket_path = socket_path_;
    options.max_attempts = 3;
    options.backoff_initial_ms = 5;
    return options;
  }

  std::string socket_path_;
  InteractionGraph graph_;
  std::unique_ptr<IndexManager> index_;
  std::unique_ptr<OracleServer> server_;
};

TEST_F(ServeServerTest, AnswersSketchQuery) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->epoch, 1u);
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, AutoPrefersExactWhenLoaded) {
  LoadExact();
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kAuto);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  const ExactInfluenceOracle oracle(index_->Exact().get());
  EXPECT_DOUBLE_EQ(response->estimate, oracle.InfluenceOfSet(seeds));
}

TEST_F(ServeServerTest, ExactModeWithoutExactMapDegrades) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kExact);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);  // served from the sketch instead
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, AutoWithoutExactMapIsNotDegraded) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const auto response = client.Query({4, 5}, QueryMode::kAuto);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);  // sketch-only service is the norm
}

TEST_F(ServeServerTest, EvalFaultDegradesToSketch) {
  LoadExact();
  StartServer();
  ASSERT_TRUE(failpoint::Set("serve.eval", "error"));
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kExact);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, SlowExactEvalDegradesWithinDeadline) {
  LoadExact();
  ServerOptions options;
  options.exact_budget_ms = 20;
  StartServer(options);
  // The injected 50 ms stall burns the exact budget; the request deadline
  // (500 ms) still has room for the sketch fallback.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(50)"));
  OracleClient client(MakeClientOptions());
  const auto response =
      client.Query({1, 2, 3}, QueryMode::kExact, /*deadline_ms=*/500);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);
}

TEST_F(ServeServerTest, DeadlineExceededWhenEvalOutlivesIt) {
  LoadExact();
  StartServer();
  // 60 ms stall against a 10 ms deadline: even the fallback answer arrives
  // too late to be truthful about.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(60)"));
  OracleClient client(MakeClientOptions());
  const auto response =
      client.Query({1, 2, 3}, QueryMode::kExact, /*deadline_ms=*/10);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kDeadlineExceeded);
}

TEST_F(ServeServerTest, SeedOutOfRangeIsBadRequest) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const auto response = client.Query({static_cast<NodeId>(kNumNodes + 5)});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kBadRequest);
  EXPECT_EQ(response->error, "seed out of range");
}

TEST_F(ServeServerTest, HealthAndStatsAnswerInline) {
  StartServer();
  OracleClient client(MakeClientOptions());

  Request health;
  health.method = Method::kHealth;
  auto response = client.Call(health);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->epoch, 1u);

  Request stats;
  stats.method = Method::kStats;
  response = client.Call(stats);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);
  double num_nodes = -1.0, queue_capacity = -1.0;
  for (const auto& [key, value] : response->info) {
    if (key == "num_nodes") num_nodes = value;
    if (key == "queue_capacity") queue_capacity = value;
  }
  EXPECT_DOUBLE_EQ(num_nodes, static_cast<double>(kNumNodes));
  EXPECT_DOUBLE_EQ(queue_capacity,
                   static_cast<double>(server_->options().queue_capacity));
}

TEST_F(ServeServerTest, SequentialQueriesOnOneConnectionAllAnswered) {
  StartServer();
  OracleClient client(MakeClientOptions());
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Query({static_cast<NodeId>(i % kNumNodes)});
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk);
  }
}

TEST_F(ServeServerTest, PipelinedQueriesCorrelateById) {
  StartServer();
  const int fd = ConnectUnix(socket_path_);
  ASSERT_GE(fd, 0);

  // One burst of 20 queries with distinct ids. The worker pool may answer
  // them in any order (protocol.h documents no ordering guarantee); every
  // id must come back exactly once with an OK answer.
  constexpr int kRequests = 20;
  std::string burst;
  for (int i = 1; i <= kRequests; ++i) {
    Request request;
    request.id = i;
    request.seeds = {static_cast<NodeId>(i % kNumNodes)};
    request.deadline_ms = 5000;
    burst += SerializeRequest(request);
  }
  ASSERT_TRUE(SendAll(fd, burst));

  const std::vector<std::string> lines = ReadLines(fd, kRequests);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests));
  std::set<int64_t> ids;
  for (const std::string& line : lines) {
    const auto response = ParseResponse(line);
    ASSERT_TRUE(response.has_value()) << line;
    EXPECT_EQ(response->status, StatusCode::kOk) << line;
    ids.insert(response->id);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(*ids.begin(), 1);
  EXPECT_EQ(*ids.rbegin(), kRequests);
  ::close(fd);
}

TEST_F(ServeServerTest, SlowConsumerIsCutOffNotWedgingServer) {
  ServerOptions options;
  options.write_timeout_ms = 100;
  StartServer(options);

  // Abusive peer: pipelines health probes but never reads a byte. Once the
  // socket buffers fill, the reader's bounded write times out, the
  // connection is marked broken and torn down.
  const int fd = ConnectUnix(socket_path_);
  ASSERT_GE(fd, 0);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const std::string request = "{\"method\": \"health\"}\n";
  std::string chunk;
  for (int i = 0; i < 64; ++i) chunk += request;
  size_t sent = 0;
  // Push until our own send buffer jams (server stopped consuming) or we
  // have pushed far more than any buffer chain holds.
  for (int spins = 0; sent < (8u << 20) && spins < 200;) {
    const ssize_t n = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      spins = 0;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ++spins;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } else {
      break;  // reset by the server: it already cut us off
    }
  }

  // Other clients keep getting answers while/after the abuser is cut off.
  OracleClient client(MakeClientOptions());
  const auto response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);

  // And shutdown stays bounded: without the write timeout the abuser's
  // reader thread would be stuck in send() forever and this would hang.
  const auto start = std::chrono::steady_clock::now();
  server_->Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);
  ::close(fd);
}

TEST_F(ServeServerTest, OverloadShedsInsteadOfQueueingUnbounded) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.retry_after_ms = 30;
  StartServer(options);
  // Each evaluation stalls 30 ms: with 1 worker and capacity 2, a burst of
  // concurrent clients must overflow the queue and get shed.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(30)"));

  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::atomic<int64_t> hint{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts = MakeClientOptions();
      copts.jitter_seed = 100 + t;
      OracleClient client(copts);
      for (int i = 0; i < 4; ++i) {
        const auto response = client.Query({1, 2}, QueryMode::kExact,
                                           /*deadline_ms=*/5000);
        if (!response.has_value()) {
          ++other;
        } else if (response->status == StatusCode::kOk) {
          ++ok;
        } else if (response->status == StatusCode::kOverloaded) {
          ++overloaded;
          hint = response->retry_after_ms;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);          // the server kept serving
  EXPECT_GT(overloaded.load(), 0);  // and shed the excess
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(hint.load(), 30);  // the configured backoff hint
  EXPECT_LE(server_->queue_depth(), options.queue_capacity);
}

TEST_F(ServeServerTest, RetryingClientRidesOutOverload) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 10;
  StartServer(options);
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(20)"));

  ClientOptions copts = MakeClientOptions();
  copts.retry_overloaded = true;
  copts.max_attempts = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions mine = copts;
      mine.jitter_seed = 200 + t;
      OracleClient client(mine);
      for (int i = 0; i < 3; ++i) {
        const auto response =
            client.Query({1}, QueryMode::kExact, /*deadline_ms=*/5000);
        if (response.has_value() && response->status == StatusCode::kOk) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  // With retry-on-OVERLOADED every request eventually lands.
  EXPECT_EQ(ok.load(), 12);
}

TEST_F(ServeServerTest, ReloadRequestRollsBackOnInjectedFailure) {
  const std::string index_path = socket_path_ + ".idx";
  ASSERT_TRUE(SaveInfluenceIndex(*index_->Current(), index_path));
  index_ = std::make_unique<IndexManager>(index_path);
  ASSERT_EQ(index_->Reload(), ReloadStatus::kOk);
  StartServer();

  ASSERT_TRUE(failpoint::Set("serve.reload", "error"));
  OracleClient client(MakeClientOptions());
  Request reload;
  reload.method = Method::kReload;
  auto response = client.Call(reload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->info.size(), 1u);
  EXPECT_EQ(response->info[0].first, "rolled_back");
  EXPECT_DOUBLE_EQ(response->info[0].second, 1.0);
  EXPECT_EQ(response->epoch, 1u);  // unchanged

  // Queries still served from the retained epoch.
  const auto query = client.Query({1, 2});
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(query->status, StatusCode::kOk);

  failpoint::Clear("serve.reload");
  response = client.Call(reload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->epoch, 2u);
  std::remove(index_path.c_str());
}

TEST_F(ServeServerTest, QueriesKeepServingOldEpochDuringSlowReload) {
  const std::string index_path = socket_path_ + ".idx";
  ASSERT_TRUE(SaveInfluenceIndex(*index_->Current(), index_path));
  index_ = std::make_unique<IndexManager>(index_path);
  ASSERT_EQ(index_->Reload(), ReloadStatus::kOk);
  StartServer();

  ASSERT_TRUE(failpoint::Set("serve.reload", "delay(150)"));
  OracleClient reload_client(MakeClientOptions());
  std::thread reloader([&reload_client] {
    Request reload;
    reload.method = Method::kReload;
    const auto response = reload_client.Call(reload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->epoch, 2u);
  });

  OracleClient client(MakeClientOptions());
  int served = 0;
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Query({1, 2});
    ASSERT_TRUE(response.has_value());
    if (response->status == StatusCode::kOk) ++served;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reloader.join();
  EXPECT_EQ(served, 20);  // the slow reload never blocked a query
  std::remove(index_path.c_str());
}

TEST_F(ServeServerTest, WedgedReloadDoesNotBlockShutdown) {
  const std::string index_path = socket_path_ + ".idx";
  ASSERT_TRUE(SaveInfluenceIndex(*index_->Current(), index_path));
  index_ = std::make_unique<IndexManager>(index_path);
  ASSERT_EQ(index_->Reload(), ReloadStatus::kOk);
  ServerOptions options;
  options.drain_deadline_ms = 200;
  StartServer(options);

  // The reload wedges for 1.2 s (hung disk stand-in), far past the 200 ms
  // drain deadline. Fire it and shut down without waiting for the answer.
  ASSERT_TRUE(failpoint::Set("serve.reload", "delay(1200)"));
  const int fd = ConnectUnix(socket_path_);
  ASSERT_GE(fd, 0);
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ASSERT_TRUE(SendAll(fd, "{\"id\": 1, \"method\": \"reload\"}\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // picked up

  const auto start = std::chrono::steady_clock::now();
  server_->Shutdown();  // must detach the wedged reload thread, not join it
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_LT(elapsed_ms, 1000);

  // The detached thread still answers once the wedge clears: reading the
  // response both proves that and synchronizes with its last access to the
  // IndexManager, so the fixture can safely tear down afterwards.
  const std::vector<std::string> lines = ReadLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  const auto response = ParseResponse(lines[0]);
  ASSERT_TRUE(response.has_value()) << lines[0];
  EXPECT_EQ(response->id, 1);
  EXPECT_EQ(response->status, StatusCode::kOk);
  ::close(fd);
  std::remove(index_path.c_str());
}

TEST_F(ServeServerTest, InjectedReadFaultDropsConnectionClientRetries) {
  StartServer();
  ClientOptions copts = MakeClientOptions();
  copts.io_timeout_ms = 500;
  copts.max_attempts = 2;
  OracleClient client(copts);

  // While the read fault is armed every request line tears the connection:
  // the client retries on a fresh connection, then gives up.
  ASSERT_TRUE(failpoint::Set("serve.read", "error"));
  std::string error;
  EXPECT_FALSE(client.Query({1, 2}, QueryMode::kAuto, 0, &error).has_value());
  EXPECT_GE(client.retries(), 1u);

  // Fault cleared: the same client recovers on its next call.
  failpoint::Clear("serve.read");
  const auto response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
}

TEST_F(ServeServerTest, ShutdownDrainsAndUnlinksSocket) {
  StartServer();
  OracleClient client(MakeClientOptions());
  ASSERT_TRUE(client.Query({1}).has_value());

  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  // Socket gone: a fresh client cannot connect.
  OracleClient late(MakeClientOptions());
  std::string error;
  EXPECT_FALSE(late.Query({1}, QueryMode::kAuto, 0, &error).has_value());
  EXPECT_FALSE(error.empty());
  // Idempotent.
  server_->Shutdown();
}

TEST_F(ServeServerTest, ShutdownAnswersInFlightRequests) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 2;
  options.drain_deadline_ms = 5000;
  StartServer(options);
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(40)"));

  std::atomic<int> answered{0}, dropped{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts = MakeClientOptions();
      copts.jitter_seed = 300 + t;
      copts.max_attempts = 1;  // no retries: we count first-shot outcomes
      OracleClient client(copts);
      const auto response =
          client.Query({1, 2}, QueryMode::kExact, /*deadline_ms=*/5000);
      if (response.has_value()) {
        ++answered;
      } else {
        ++dropped;
      }
    });
  }
  // Give the requests time to be admitted, then drain under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->Shutdown();
  for (auto& t : clients) t.join();
  // Every admitted request got an answer before its connection closed; a
  // request that raced the drain may have seen UNAVAILABLE (still a
  // response). Nothing should observe a silently-dropped connection.
  EXPECT_EQ(answered.load(), 4);
  EXPECT_EQ(dropped.load(), 0);
}

TEST_F(ServeServerTest, UnavailableWhenNoIndexLoaded) {
  index_ = std::make_unique<IndexManager>("");  // nothing installed
  StartServer();
  OracleClient client(MakeClientOptions());

  Request health;
  health.method = Method::kHealth;
  const auto response = client.Call(health);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kUnavailable);

  const auto query = client.Query({1});
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(query->status, StatusCode::kUnavailable);
  EXPECT_GT(query->retry_after_ms, 0);
}

TEST_F(ServeServerTest, TraceContextEchoedAndServerAssigned) {
  StartServer();
  OracleClient client(MakeClientOptions());

  // Explicit trace context is echoed verbatim, on queries and inline verbs.
  Request request;
  request.method = Method::kQuery;
  request.seeds = {1, 2};
  request.trace_id = 0xabc123;
  auto response = client.Call(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->trace_id, 0xabc123u);

  Request health;
  health.method = Method::kHealth;
  health.trace_id = 0x5150;
  response = client.Call(health);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->trace_id, 0x5150u);

  // The client library stamps queries that carry none.
  response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(client.last_trace_id(), 0u);
  EXPECT_EQ(response->trace_id, client.last_trace_id());

  // A bare-wire query with no trace field gets a server-assigned id, so
  // every request shows up in the server's trace and flight recorder.
  const int fd = ConnectUnix(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "{\"id\": 9, \"seeds\": [1]}\n"));
  const std::vector<std::string> lines = ReadLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = ParseResponse(lines[0]);
  ASSERT_TRUE(parsed.has_value()) << lines[0];
  EXPECT_EQ(parsed->status, StatusCode::kOk);
  EXPECT_NE(parsed->trace_id, 0u);
  ::close(fd);
}

TEST_F(ServeServerTest, MetricsVerbAnswersInlineWithPayload) {
  StartServer();
  OracleClient client(MakeClientOptions());
  ASSERT_TRUE(client.Query({1, 2}).has_value());  // populate serve counters

  Request metrics;
  metrics.method = Method::kMetrics;
  metrics.trace_id = 0x77;
  auto response = client.Call(metrics);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->epoch, 1u);
  EXPECT_EQ(response->trace_id, 0x77u);
#ifndef IPIN_OBS_DISABLED
  // Prometheus text exposition: TYPE comments and _total counter series.
  EXPECT_NE(response->payload.find("# TYPE"), std::string::npos);
  EXPECT_NE(response->payload.find("serve_requests_accepted_total"),
            std::string::npos);
#endif

  metrics.format = MetricsFormat::kJson;
  response = client.Call(metrics);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
#ifndef IPIN_OBS_DISABLED
  const auto doc = JsonValue::Parse(response->payload);
  ASSERT_TRUE(doc.has_value()) << response->payload;
  EXPECT_EQ(doc->FindString("schema", ""), "ipin.metrics.v1");
#endif
}

TEST_F(ServeServerTest, DebugVerbDumpsSlowQueryWithStageTimings) {
  LoadExact();
  ServerOptions options;
  options.exact_budget_ms = 100;
  options.slow_query_us = 5000;  // 5 ms: the stalled query below is "slow"
  StartServer(options);
  // A 30 ms eval stall pushes one request over the slow-query threshold.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(30)"));
  OracleClient client(MakeClientOptions());
  auto query = client.Query({1, 2, 3}, QueryMode::kExact,
                            /*deadline_ms=*/5000);
  ASSERT_TRUE(query.has_value());
  ASSERT_EQ(query->status, StatusCode::kOk);
  const uint64_t slow_trace = client.last_trace_id();
  failpoint::Clear("serve.eval");

  // The worker records to the flight recorder after writing the query
  // response, so the record can trail the answer by a beat: poll.
  Request debug;
  debug.method = Method::kDebug;
  std::optional<Response> response;
  std::optional<JsonValue> doc;
  for (int spin = 0; spin < 400; ++spin) {
    response = client.Call(debug);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, StatusCode::kOk);
    doc = JsonValue::Parse(response->payload);
    ASSERT_TRUE(doc.has_value()) << response->payload;
    if (doc->FindNumber("slow_recorded", 0) >= 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(doc->FindString("schema", ""), "ipin.debug.v1");
  EXPECT_EQ(doc->FindNumber("slow_threshold_us", -1), 5000.0);
  EXPECT_GE(doc->FindNumber("recorded", 0), 1.0);
  EXPECT_GE(doc->FindNumber("slow_recorded", 0), 1.0);

  // The stalled query sits in the slow ring with per-stage timings that
  // blame the eval stage for the 30 ms.
  const JsonValue* slow = doc->Find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(slow->is_array());
  ASSERT_FALSE(slow->array_items().empty());
  bool found = false;
  for (const JsonValue& record : slow->array_items()) {
    if (record.FindString("trace_id", "") != TraceIdToHex(slow_trace)) {
      continue;
    }
    found = true;
    EXPECT_EQ(record.FindString("status", ""), "OK");
    EXPECT_GE(record.FindNumber("eval_us", 0), 25000.0);
    EXPECT_GE(record.FindNumber("total_us", 0),
              record.FindNumber("eval_us", 0));
    EXPECT_GE(record.FindNumber("queue_us", -1), 0.0);
    EXPECT_GE(record.FindNumber("admission_us", -1), 0.0);
    EXPECT_GE(record.FindNumber("write_us", -1), 0.0);
  }
  EXPECT_TRUE(found) << response->payload;
}

#ifndef IPIN_OBS_DISABLED
TEST_F(ServeServerTest, StatsReportsWindowedFields) {
  StartServer();
  OracleClient client(MakeClientOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Query({1, 2}).has_value());
  }
  Request stats;
  stats.method = Method::kStats;
  const auto response = client.Call(stats);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);
  double win_s = -1.0, win_qps = -1.0, win_p99 = -1.0;
  for (const auto& [key, value] : response->info) {
    if (key == "win_s") win_s = value;
    if (key == "win_qps") win_qps = value;
    if (key == "win_p99_us") win_p99 = value;
  }
  // The window exists and is the configured width; the rates themselves
  // need two sampler ticks (seconds apart), which this test does not wait
  // for — they legitimately read 0 right after startup.
  EXPECT_DOUBLE_EQ(win_s,
                   static_cast<double>(server_->options().stats_window_s));
  EXPECT_GE(win_qps, 0.0);
  EXPECT_GE(win_p99, 0.0);
}

// End-to-end accuracy audit: serve sketch answers with audit_rate=1, wait
// for the background re-evaluations on the shared pool, and assert the
// measured relative error respects the same vHLL tolerance that
// test_influence_oracle's TracksExactOracle establishes for this exact
// configuration (precision 9, |influence| > 30 -> within 25%, i.e. 250
// per-mille).
TEST(ServeAuditTest, MeasuredSketchErrorWithinVhllTolerance) {
  SetLogLevel(LogLevel::kError);
  SyntheticConfig config;
  config.num_nodes = 250;
  config.num_interactions = 4000;
  config.time_span = 9000;
  config.seed = 19;
  const InteractionGraph graph = GenerateInteractionNetwork(config);
  const Duration window = 2000;
  auto exact =
      std::make_shared<const IrsExact>(IrsExact::Compute(graph, window));
  IrsApproxOptions approx_options;
  approx_options.precision = 9;
  IndexManager index("");
  index.Install(std::make_shared<const IrsApprox>(
      IrsApprox::Compute(graph, window, approx_options)));
  index.SetExact(exact);

  const std::vector<NodeId> seeds = {2, 30, 71, 120, 200};
  const ExactInfluenceOracle oracle(exact.get());
  const double truth = oracle.InfluenceOfSet(seeds);
  ASSERT_GT(truth, 30.0);  // the 25% tolerance presumes a non-tiny set

  ServerOptions options;
  options.unix_socket_path =
      ::testing::TempDir() + "/ipin_audit_" +
      std::to_string(static_cast<unsigned long long>(config.seed)) + ".sock";
  options.audit_rate = 1.0;  // audit every sketch-served answer
  OracleServer server(&index, options);
  ASSERT_TRUE(server.Start());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* sampled = registry.GetCounter("serve.audit.sampled");
  obs::Counter* completed = registry.GetCounter("serve.audit.completed");
  obs::Histogram* abs_pm =
      registry.GetHistogram("serve.audit.rel_error_abs_pm");
  const uint64_t completed_before = completed->Value();
  const uint64_t recorded_before = abs_pm->Count();

  ClientOptions copts;
  copts.unix_socket_path = options.unix_socket_path;
  OracleClient client(copts);
  constexpr uint64_t kQueries = 5;
  for (uint64_t i = 0; i < kQueries; ++i) {
    const auto response = client.Query(seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, StatusCode::kOk);
  }
  EXPECT_GE(sampled->Value(), kQueries);

  // The re-evaluations run on the global pool; wait for them to land.
  for (int spin = 0;
       spin < 1000 && completed->Value() < completed_before + kQueries;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(completed->Value(), completed_before + kQueries);
  // truth > 30, so no audit can hit the zero-truth path: every sample
  // recorded a relative error, and the worst of them stays inside the
  // sketch's accuracy envelope.
  ASSERT_EQ(abs_pm->Count(), recorded_before + kQueries);
  EXPECT_LE(abs_pm->Max(), 250u);
  server.Shutdown();
  std::remove(options.unix_socket_path.c_str());
}
#endif  // IPIN_OBS_DISABLED

TEST_F(ServeServerTest, EphemeralTcpPortWorks) {
  ServerOptions options;
  options.tcp_port = 0;
  server_ = std::make_unique<OracleServer>(index_.get(), options);
  ASSERT_TRUE(server_->Start());
  ASSERT_GT(server_->bound_port(), 0);

  ClientOptions copts;
  copts.tcp_port = server_->bound_port();
  OracleClient client(copts);
  const auto response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
}


TEST_F(ServeServerTest, WantRanksReturnsTheUnionRankVector) {
  StartServer();
  OracleClient client(MakeClientOptions());
  Request request;
  request.method = Method::kQuery;
  request.seeds = {1, 2, 3};
  request.mode = QueryMode::kSketch;
  request.want_ranks = true;
  const auto response = client.Call(request);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);
  // One rank cell per HLL register at the index's precision.
  const size_t cells = size_t{1} << index_->Current()->options().precision;
  ASSERT_EQ(response->ranks.size(), cells);
  // The vector is the answer: estimating from it reproduces both the wire
  // estimate and the local oracle bit for bit. This is the invariant the
  // sharded router's merge relies on.
  EXPECT_DOUBLE_EQ(EstimateFromRanks(response->ranks), response->estimate);
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(request.seeds));
}

TEST_F(ServeServerTest, TopkVerbMatchesLocalRanking) {
  StartServer();
  OracleClient client(MakeClientOptions());
  Request request;
  request.method = Method::kTopk;
  request.k = 7;
  const auto response = client.Call(request);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);

  // Ground truth straight off the in-process index: every sketched node,
  // estimate descending, ties by ascending node id.
  std::vector<std::pair<NodeId, double>> truth;
  const auto index = index_->Current();
  for (NodeId u = 0; u < index->num_nodes(); ++u) {
    const SketchView sketch = index->Sketch(u);
    if (sketch) truth.emplace_back(u, sketch.Estimate());
  }
  std::sort(truth.begin(), truth.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  truth.resize(std::min<size_t>(7, truth.size()));

  ASSERT_EQ(response->topk.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(response->topk[i].first, truth[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(response->topk[i].second, truth[i].second);
  }
}


}  // namespace
}  // namespace ipin::serve
