#include "ipin/serve/server.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/oracle_io.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"

namespace ipin::serve {
namespace {

constexpr size_t kNumNodes = 40;

// In-process server over a Unix-domain socket in TempDir, talked to with the
// real client library — the full wire path minus process isolation.
class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    const std::string tag = std::to_string(reinterpret_cast<uintptr_t>(this));
    socket_path_ = ::testing::TempDir() + "/ipin_srv_" + tag + ".sock";
    graph_ = GenerateUniformRandomNetwork(kNumNodes, 400, 1000, 3);
    IrsApproxOptions options;
    options.precision = 5;
    index_ = std::make_unique<IndexManager>("");
    index_->Install(std::make_shared<const IrsApprox>(
        IrsApprox::Compute(graph_, 200, options)));
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    failpoint::ClearAll();
    std::remove(socket_path_.c_str());
  }

  void StartServer(ServerOptions options = {}) {
    options.unix_socket_path = socket_path_;
    server_ = std::make_unique<OracleServer>(index_.get(), options);
    ASSERT_TRUE(server_->Start());
  }

  void LoadExact() {
    index_->SetExact(
        std::make_shared<const IrsExact>(IrsExact::Compute(graph_, 200)));
  }

  ClientOptions MakeClientOptions() const {
    ClientOptions options;
    options.unix_socket_path = socket_path_;
    options.max_attempts = 3;
    options.backoff_initial_ms = 5;
    return options;
  }

  std::string socket_path_;
  InteractionGraph graph_;
  std::unique_ptr<IndexManager> index_;
  std::unique_ptr<OracleServer> server_;
};

TEST_F(ServeServerTest, AnswersSketchQuery) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->epoch, 1u);
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, AutoPrefersExactWhenLoaded) {
  LoadExact();
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kAuto);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  const ExactInfluenceOracle oracle(index_->Exact().get());
  EXPECT_DOUBLE_EQ(response->estimate, oracle.InfluenceOfSet(seeds));
}

TEST_F(ServeServerTest, ExactModeWithoutExactMapDegrades) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kExact);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);  // served from the sketch instead
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, AutoWithoutExactMapIsNotDegraded) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const auto response = client.Query({4, 5}, QueryMode::kAuto);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);  // sketch-only service is the norm
}

TEST_F(ServeServerTest, EvalFaultDegradesToSketch) {
  LoadExact();
  StartServer();
  ASSERT_TRUE(failpoint::Set("serve.eval", "error"));
  OracleClient client(MakeClientOptions());
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kExact);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);
  EXPECT_DOUBLE_EQ(response->estimate,
                   index_->Current()->EstimateUnionSize(seeds));
}

TEST_F(ServeServerTest, SlowExactEvalDegradesWithinDeadline) {
  LoadExact();
  ServerOptions options;
  options.exact_budget_ms = 20;
  StartServer(options);
  // The injected 50 ms stall burns the exact budget; the request deadline
  // (500 ms) still has room for the sketch fallback.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(50)"));
  OracleClient client(MakeClientOptions());
  const auto response =
      client.Query({1, 2, 3}, QueryMode::kExact, /*deadline_ms=*/500);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_TRUE(response->degraded);
}

TEST_F(ServeServerTest, DeadlineExceededWhenEvalOutlivesIt) {
  LoadExact();
  StartServer();
  // 60 ms stall against a 10 ms deadline: even the fallback answer arrives
  // too late to be truthful about.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(60)"));
  OracleClient client(MakeClientOptions());
  const auto response =
      client.Query({1, 2, 3}, QueryMode::kExact, /*deadline_ms=*/10);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kDeadlineExceeded);
}

TEST_F(ServeServerTest, SeedOutOfRangeIsBadRequest) {
  StartServer();
  OracleClient client(MakeClientOptions());
  const auto response = client.Query({static_cast<NodeId>(kNumNodes + 5)});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kBadRequest);
  EXPECT_EQ(response->error, "seed out of range");
}

TEST_F(ServeServerTest, HealthAndStatsAnswerInline) {
  StartServer();
  OracleClient client(MakeClientOptions());

  Request health;
  health.method = Method::kHealth;
  auto response = client.Call(health);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->epoch, 1u);

  Request stats;
  stats.method = Method::kStats;
  response = client.Call(stats);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, StatusCode::kOk);
  double num_nodes = -1.0, queue_capacity = -1.0;
  for (const auto& [key, value] : response->info) {
    if (key == "num_nodes") num_nodes = value;
    if (key == "queue_capacity") queue_capacity = value;
  }
  EXPECT_DOUBLE_EQ(num_nodes, static_cast<double>(kNumNodes));
  EXPECT_DOUBLE_EQ(queue_capacity,
                   static_cast<double>(server_->options().queue_capacity));
}

TEST_F(ServeServerTest, PipelinedRequestsAnsweredInOrder) {
  StartServer();
  OracleClient client(MakeClientOptions());
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Query({static_cast<NodeId>(i % kNumNodes)});
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk);
  }
}

TEST_F(ServeServerTest, OverloadShedsInsteadOfQueueingUnbounded) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.retry_after_ms = 30;
  StartServer(options);
  // Each evaluation stalls 30 ms: with 1 worker and capacity 2, a burst of
  // concurrent clients must overflow the queue and get shed.
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(30)"));

  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::atomic<int64_t> hint{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts = MakeClientOptions();
      copts.jitter_seed = 100 + t;
      OracleClient client(copts);
      for (int i = 0; i < 4; ++i) {
        const auto response = client.Query({1, 2}, QueryMode::kExact,
                                           /*deadline_ms=*/5000);
        if (!response.has_value()) {
          ++other;
        } else if (response->status == StatusCode::kOk) {
          ++ok;
        } else if (response->status == StatusCode::kOverloaded) {
          ++overloaded;
          hint = response->retry_after_ms;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);          // the server kept serving
  EXPECT_GT(overloaded.load(), 0);  // and shed the excess
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(hint.load(), 30);  // the configured backoff hint
  EXPECT_LE(server_->queue_depth(), options.queue_capacity);
}

TEST_F(ServeServerTest, RetryingClientRidesOutOverload) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 10;
  StartServer(options);
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(20)"));

  ClientOptions copts = MakeClientOptions();
  copts.retry_overloaded = true;
  copts.max_attempts = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions mine = copts;
      mine.jitter_seed = 200 + t;
      OracleClient client(mine);
      for (int i = 0; i < 3; ++i) {
        const auto response =
            client.Query({1}, QueryMode::kExact, /*deadline_ms=*/5000);
        if (response.has_value() && response->status == StatusCode::kOk) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  // With retry-on-OVERLOADED every request eventually lands.
  EXPECT_EQ(ok.load(), 12);
}

TEST_F(ServeServerTest, ReloadRequestRollsBackOnInjectedFailure) {
  const std::string index_path = socket_path_ + ".idx";
  ASSERT_TRUE(SaveInfluenceIndex(*index_->Current(), index_path));
  index_ = std::make_unique<IndexManager>(index_path);
  ASSERT_EQ(index_->Reload(), ReloadStatus::kOk);
  StartServer();

  ASSERT_TRUE(failpoint::Set("serve.reload", "error"));
  OracleClient client(MakeClientOptions());
  Request reload;
  reload.method = Method::kReload;
  auto response = client.Call(reload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->info.size(), 1u);
  EXPECT_EQ(response->info[0].first, "rolled_back");
  EXPECT_DOUBLE_EQ(response->info[0].second, 1.0);
  EXPECT_EQ(response->epoch, 1u);  // unchanged

  // Queries still served from the retained epoch.
  const auto query = client.Query({1, 2});
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(query->status, StatusCode::kOk);

  failpoint::Clear("serve.reload");
  response = client.Call(reload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->epoch, 2u);
  std::remove(index_path.c_str());
}

TEST_F(ServeServerTest, QueriesKeepServingOldEpochDuringSlowReload) {
  const std::string index_path = socket_path_ + ".idx";
  ASSERT_TRUE(SaveInfluenceIndex(*index_->Current(), index_path));
  index_ = std::make_unique<IndexManager>(index_path);
  ASSERT_EQ(index_->Reload(), ReloadStatus::kOk);
  StartServer();

  ASSERT_TRUE(failpoint::Set("serve.reload", "delay(150)"));
  OracleClient reload_client(MakeClientOptions());
  std::thread reloader([&reload_client] {
    Request reload;
    reload.method = Method::kReload;
    const auto response = reload_client.Call(reload);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->epoch, 2u);
  });

  OracleClient client(MakeClientOptions());
  int served = 0;
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Query({1, 2});
    ASSERT_TRUE(response.has_value());
    if (response->status == StatusCode::kOk) ++served;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reloader.join();
  EXPECT_EQ(served, 20);  // the slow reload never blocked a query
  std::remove(index_path.c_str());
}

TEST_F(ServeServerTest, InjectedReadFaultDropsConnectionClientRetries) {
  StartServer();
  ClientOptions copts = MakeClientOptions();
  copts.io_timeout_ms = 500;
  copts.max_attempts = 2;
  OracleClient client(copts);

  // While the read fault is armed every request line tears the connection:
  // the client retries on a fresh connection, then gives up.
  ASSERT_TRUE(failpoint::Set("serve.read", "error"));
  std::string error;
  EXPECT_FALSE(client.Query({1, 2}, QueryMode::kAuto, 0, &error).has_value());
  EXPECT_GE(client.retries(), 1u);

  // Fault cleared: the same client recovers on its next call.
  failpoint::Clear("serve.read");
  const auto response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
}

TEST_F(ServeServerTest, ShutdownDrainsAndUnlinksSocket) {
  StartServer();
  OracleClient client(MakeClientOptions());
  ASSERT_TRUE(client.Query({1}).has_value());

  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  // Socket gone: a fresh client cannot connect.
  OracleClient late(MakeClientOptions());
  std::string error;
  EXPECT_FALSE(late.Query({1}, QueryMode::kAuto, 0, &error).has_value());
  EXPECT_FALSE(error.empty());
  // Idempotent.
  server_->Shutdown();
}

TEST_F(ServeServerTest, ShutdownAnswersInFlightRequests) {
  LoadExact();
  ServerOptions options;
  options.num_workers = 2;
  options.drain_deadline_ms = 5000;
  StartServer(options);
  ASSERT_TRUE(failpoint::Set("serve.eval", "delay(40)"));

  std::atomic<int> answered{0}, dropped{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts = MakeClientOptions();
      copts.jitter_seed = 300 + t;
      copts.max_attempts = 1;  // no retries: we count first-shot outcomes
      OracleClient client(copts);
      const auto response =
          client.Query({1, 2}, QueryMode::kExact, /*deadline_ms=*/5000);
      if (response.has_value()) {
        ++answered;
      } else {
        ++dropped;
      }
    });
  }
  // Give the requests time to be admitted, then drain under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->Shutdown();
  for (auto& t : clients) t.join();
  // Every admitted request got an answer before its connection closed; a
  // request that raced the drain may have seen UNAVAILABLE (still a
  // response). Nothing should observe a silently-dropped connection.
  EXPECT_EQ(answered.load(), 4);
  EXPECT_EQ(dropped.load(), 0);
}

TEST_F(ServeServerTest, UnavailableWhenNoIndexLoaded) {
  index_ = std::make_unique<IndexManager>("");  // nothing installed
  StartServer();
  OracleClient client(MakeClientOptions());

  Request health;
  health.method = Method::kHealth;
  const auto response = client.Call(health);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kUnavailable);

  const auto query = client.Query({1});
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(query->status, StatusCode::kUnavailable);
  EXPECT_GT(query->retry_after_ms, 0);
}

TEST_F(ServeServerTest, EphemeralTcpPortWorks) {
  ServerOptions options;
  options.tcp_port = 0;
  server_ = std::make_unique<OracleServer>(index_.get(), options);
  ASSERT_TRUE(server_->Start());
  ASSERT_GT(server_->bound_port(), 0);

  ClientOptions copts;
  copts.tcp_port = server_->bound_port();
  OracleClient client(copts);
  const auto response = client.Query({1, 2});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
}

}  // namespace
}  // namespace ipin::serve
