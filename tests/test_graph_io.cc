#include "ipin/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/logging.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ipin_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(GraphIoTest, LoadsBasicEdgeList) {
  WriteFile("# comment\n10 20 5\n20 30 7\n\n% another comment\n10 30 9\n");
  const auto graph = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->num_nodes(), 3u);  // remapped to dense ids
  EXPECT_EQ(graph->num_interactions(), 3u);
  EXPECT_TRUE(graph->is_sorted());
}

TEST_F(GraphIoTest, RemapsInOrderOfFirstAppearance) {
  WriteFile("100 7 1\n7 100 2\n");
  const auto graph = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(graph.has_value());
  // 100 -> 0, 7 -> 1.
  EXPECT_EQ(graph->interaction(0).src, 0u);
  EXPECT_EQ(graph->interaction(0).dst, 1u);
  EXPECT_EQ(graph->interaction(1).src, 1u);
  EXPECT_EQ(graph->interaction(1).dst, 0u);
}

TEST_F(GraphIoTest, SortsUnorderedInput) {
  WriteFile("0 1 9\n1 2 3\n");
  const auto graph = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->interaction(0).time, 3);
  EXPECT_EQ(graph->interaction(1).time, 9);
}

TEST_F(GraphIoTest, AcceptsCommaSeparated) {
  WriteFile("0,1,5\n1,2,6\n");
  const auto graph = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->num_interactions(), 2u);
}

TEST_F(GraphIoTest, KonectFormatIgnoresWeight) {
  WriteFile("1 2 1 100\n2 3 -1 200\n");
  const auto graph =
      LoadInteractionsFromFile(path_, EdgeListFormat::kKonect);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->num_interactions(), 2u);
  EXPECT_EQ(graph->interaction(0).time, 100);
  EXPECT_EQ(graph->interaction(1).time, 200);
}

TEST_F(GraphIoTest, RejectsMalformedLines) {
  WriteFile("0 1 5\nnot numbers here\n");
  EXPECT_FALSE(LoadInteractionsFromFile(path_).has_value());
}

TEST_F(GraphIoTest, RejectsTooFewFields) {
  WriteFile("0 1\n");
  EXPECT_FALSE(LoadInteractionsFromFile(path_).has_value());
}

TEST_F(GraphIoTest, RejectsNegativeNodeIds) {
  WriteFile("-1 2 5\n");
  EXPECT_FALSE(LoadInteractionsFromFile(path_).has_value());
}

TEST_F(GraphIoTest, LenientModeSkipsMalformedLines) {
  obs::Counter* skipped =
      obs::MetricsRegistry::Global().GetCounter("graph.io.skipped_lines");
  const uint64_t before = skipped->Value();
  WriteFile("0 1 5\nnot numbers here\n1 2 6\n0 1\n-3 2 7\n2 0 8\n");
  const auto graph = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->num_interactions(), 3u);  // the three well-formed lines
#ifdef IPIN_OBS_DISABLED
  EXPECT_EQ(skipped->Value() - before, 0u);
#else
  EXPECT_EQ(skipped->Value() - before, 3u);
#endif
}

TEST_F(GraphIoTest, LenientModeSkipsTimestampRegressions) {
  // A timestamp far in the past mid-stream is treated as damage in lenient
  // mode; strict mode keeps it (the post-load sort handles unsorted files).
  WriteFile("0 1 100\n1 2 3\n2 0 200\n");
  const auto lenient = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  ASSERT_TRUE(lenient.has_value());
  EXPECT_EQ(lenient->num_interactions(), 2u);
  const auto strict = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(strict->num_interactions(), 3u);
}

TEST_F(GraphIoTest, LenientModeReportsSkippedLineNumbers) {
  // Debug log carries the line number and reason of each early skip, so a
  // damaged file can be inspected without a rerun under a debugger.
  SetLogLevel(LogLevel::kDebug);
  std::vector<std::string> debug_lines;
  SetLogSink([&debug_lines](LogLevel level, const std::string& message) {
    if (level == LogLevel::kDebug) debug_lines.push_back(message);
  });
  WriteFile("0 1 5\nbroken\n1 2 6\n2 x 7\n2 0 8\n");
  const auto graph = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kError);
  ASSERT_TRUE(graph.has_value());

  ASSERT_EQ(debug_lines.size(), 2u);
  EXPECT_NE(debug_lines[0].find(":2: skipped (too few fields)"),
            std::string::npos)
      << debug_lines[0];
  EXPECT_NE(debug_lines[1].find(":4: skipped (unparsable or negative field)"),
            std::string::npos)
      << debug_lines[1];
}

TEST_F(GraphIoTest, SkippedLineReportIsCappedAtTen) {
  SetLogLevel(LogLevel::kDebug);
  std::vector<std::string> debug_lines;
  SetLogSink([&debug_lines](LogLevel level, const std::string& message) {
    if (level == LogLevel::kDebug) debug_lines.push_back(message);
  });
  std::string content = "0 1 5\n";
  for (int i = 0; i < 25; ++i) content += "garbage line\n";
  WriteFile(content);
  const auto graph = LoadInteractionsFromFile(
      path_, EdgeListFormat::kSrcDstTime, ParseMode::kLenient);
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kError);
  ASSERT_TRUE(graph.has_value());

  // 10 per-line records plus one "... and N more" trailer.
  ASSERT_EQ(debug_lines.size(), 11u);
  EXPECT_NE(debug_lines[0].find(":2: skipped"), std::string::npos);
  EXPECT_NE(debug_lines[9].find(":11: skipped"), std::string::npos);
  EXPECT_NE(debug_lines[10].find("and 15 more skipped lines"),
            std::string::npos)
      << debug_lines[10];
}

TEST_F(GraphIoTest, StrictModeStaysTheDefaultAndFails) {
  WriteFile("0 1 5\nnot numbers here\n");
  EXPECT_FALSE(LoadInteractionsFromFile(path_).has_value());
  EXPECT_FALSE(LoadInteractionsFromFile(path_, EdgeListFormat::kSrcDstTime,
                                        ParseMode::kStrict)
                   .has_value());
}

TEST_F(GraphIoTest, LenientModeRejectsFullyUnusableFile) {
  WriteFile("total garbage\nmore garbage\n");
  EXPECT_FALSE(LoadInteractionsFromFile(path_, EdgeListFormat::kSrcDstTime,
                                        ParseMode::kLenient)
                   .has_value());
}

TEST_F(GraphIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(
      LoadInteractionsFromFile("/nonexistent/definitely/missing.txt")
          .has_value());
}

TEST_F(GraphIoTest, SaveLoadRoundtrip) {
  InteractionGraph g;
  g.AddInteraction(0, 1, 10);
  g.AddInteraction(1, 2, 20);
  g.AddInteraction(2, 0, 30);
  ASSERT_TRUE(SaveInteractionsToFile(g, path_));
  const auto loaded = LoadInteractionsFromFile(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_interactions(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded->interaction(i).time, g.interaction(i).time);
  }
}

TEST_F(GraphIoTest, DimacsRoundtrip) {
  const StaticGraph g =
      StaticGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  ASSERT_TRUE(SaveDimacs(g, path_));
  const auto loaded = LoadDimacs(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 4u);
  EXPECT_EQ(loaded->num_edges(), 4u);
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  EXPECT_TRUE(loaded->HasEdge(3, 0));
}

TEST_F(GraphIoTest, DimacsRejectsArcBeforeHeader) {
  WriteFile("a 1 2 1\np sp 3 1\n");
  EXPECT_FALSE(LoadDimacs(path_).has_value());
}

TEST_F(GraphIoTest, DimacsRejectsOutOfRangeArc) {
  WriteFile("p sp 2 1\na 1 5 1\n");
  EXPECT_FALSE(LoadDimacs(path_).has_value());
}

TEST_F(GraphIoTest, DimacsIgnoresComments) {
  WriteFile("c hello\np sp 2 1\nc mid\na 1 2 1\n");
  const auto loaded = LoadDimacs(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 1u);
}

TEST_F(GraphIoTest, DimacsRejectsMissingHeader) {
  WriteFile("c only comments\n");
  EXPECT_FALSE(LoadDimacs(path_).has_value());
}

}  // namespace
}  // namespace ipin
