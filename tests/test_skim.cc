#include "ipin/baselines/skim.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace ipin {
namespace {

SkimOptions Options(double p, size_t instances = 8, size_t k = 32) {
  SkimOptions options;
  options.probability = p;
  options.num_instances = instances;
  options.sketch_k = k;
  return options;
}

// Exact reachability size from u in a deterministic graph.
size_t ReachableCount(const StaticGraph& g, NodeId u) {
  std::set<NodeId> seen = {u};
  std::vector<NodeId> stack = {u};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (const NodeId v : g.Neighbors(x)) {
      if (seen.insert(v).second) stack.push_back(v);
    }
  }
  return seen.size();
}

TEST(SkimTest, DeterministicGraphPicksMaxReachabilityFirst) {
  // With p=1 all instances equal the input graph, so the first seed must be
  // the node with the largest reachability set.
  const StaticGraph g = StaticGraph::FromEdges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}});
  const SkimResult result = SelectSeedsSkim(g, 1, Options(1.0, 4, 16));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);  // reaches 5 nodes
  size_t best = 0;
  for (NodeId u = 0; u < 7; ++u) best = std::max(best, ReachableCount(g, u));
  EXPECT_EQ(best, 5u);
}

TEST(SkimTest, SecondSeedCoversDisjointComponent) {
  const StaticGraph g = StaticGraph::FromEdges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}});
  const SkimResult result = SelectSeedsSkim(g, 2, Options(1.0, 4, 16));
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[1], 5u);  // chain {5,6}, only uncovered component
}

TEST(SkimTest, GainsAreNonIncreasing) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 40; ++u) {
    edges.emplace_back(u, (u * 3 + 1) % 40);
    edges.emplace_back(u, (u * 7 + 2) % 40);
  }
  const StaticGraph g = StaticGraph::FromEdges(40, edges);
  const SkimResult result = SelectSeedsSkim(g, 8, Options(0.5));
  ASSERT_EQ(result.seeds.size(), 8u);
  for (size_t i = 1; i < result.gains.size(); ++i) {
    EXPECT_LE(result.gains[i], result.gains[i - 1] + 1e-9);
  }
}

TEST(SkimTest, DeterministicGivenSeed) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 30; ++u) edges.emplace_back(u, (u * 11 + 3) % 30);
  const StaticGraph g = StaticGraph::FromEdges(30, edges);
  const SkimResult a = SelectSeedsSkim(g, 5, Options(0.5));
  const SkimResult b = SelectSeedsSkim(g, 5, Options(0.5));
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(SkimTest, EstimatedSpreadMatchesDeterministicCoverage) {
  // p=1, single component of size 5: spread of seed 0 must be exactly 5.
  const StaticGraph g =
      StaticGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const SkimResult result = SelectSeedsSkim(g, 1, Options(1.0, 4, 16));
  EXPECT_DOUBLE_EQ(result.estimated_spread, 5.0);
}

TEST(SkimTest, SeedsAreDistinctAndInRange) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 50; ++u) {
    edges.emplace_back(u, (u * 13 + 1) % 50);
    edges.emplace_back(u, (u * 5 + 2) % 50);
  }
  const StaticGraph g = StaticGraph::FromEdges(50, edges);
  const SkimResult result = SelectSeedsSkim(g, 10, Options(0.3));
  ASSERT_EQ(result.seeds.size(), 10u);
  const std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const NodeId s : result.seeds) EXPECT_LT(s, 50u);
}

TEST(SkimTest, EmptyGraphAndZeroK) {
  EXPECT_TRUE(SelectSeedsSkim(StaticGraph(), 3, Options(0.5)).seeds.empty());
  const StaticGraph g = StaticGraph::FromEdges(2, {{0, 1}});
  EXPECT_TRUE(SelectSeedsSkim(g, 0, Options(0.5)).seeds.empty());
}

TEST(SkimTest, KLargerThanNReturnsAllNodes) {
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}, {1, 2}});
  const SkimResult result = SelectSeedsSkim(g, 10, Options(1.0, 2, 8));
  EXPECT_EQ(result.seeds.size(), 3u);
}

TEST(SkimTest, InteractionOverloadWorks) {
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 2);
  g.AddInteraction(2, 3, 3);
  const SkimResult result = SelectSeedsSkim(g, 1, Options(1.0, 2, 8));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(SkimTest, LowProbabilityShrinksSpread) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u + 1 < 60; ++u) edges.emplace_back(u, u + 1);
  const StaticGraph g = StaticGraph::FromEdges(60, edges);
  const SkimResult high = SelectSeedsSkim(g, 1, Options(1.0, 8, 16));
  const SkimResult low = SelectSeedsSkim(g, 1, Options(0.2, 8, 16));
  EXPECT_GT(high.estimated_spread, low.estimated_spread);
}

}  // namespace
}  // namespace ipin
