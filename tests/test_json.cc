#include "ipin/common/json.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->bool_value(), true);
  EXPECT_EQ(JsonValue::Parse("false")->bool_value(), false);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-3.5e2")->number_value(), -350.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->string_value(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  const auto v = JsonValue::Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeEscapeBeyondAscii) {
  // U+00E9 (e-acute) -> two-byte UTF-8; U+20AC (euro) -> three bytes.
  const auto v = JsonValue::Parse(R"("é€")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, ArraysAndObjects) {
  const auto v = JsonValue::Parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items()[1].number_value(), 2.0);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->Find("c")->bool_value(), true);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, ObjectKeepsMemberOrder) {
  const auto v = JsonValue::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.has_value());
  const auto& items = v->object_items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

TEST(JsonParseTest, FindTypedFallbacks) {
  const auto v = JsonValue::Parse(R"({"n": 7, "s": "x"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->FindNumber("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(v->FindNumber("s", -1.0), -1.0);  // wrong type
  EXPECT_DOUBLE_EQ(v->FindNumber("gone", -1.0), -1.0);
  EXPECT_EQ(v->FindString("s", "d"), "x");
  EXPECT_EQ(v->FindString("n", "d"), "d");  // wrong type
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::Parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(JsonValue::Parse("01").has_value());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::Parse(deep).has_value());
  // But moderate nesting is fine.
  EXPECT_TRUE(JsonValue::Parse("[[[[[[[[[[1]]]]]]]]]]").has_value());
}

TEST(JsonParseTest, ParseFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/json_test.json";
  {
    std::ofstream out(path);
    out << R"({"schema": "ipin.bench.v1", "reps": 3})";
  }
  const auto v = JsonValue::ParseFile(path);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->FindString("schema", ""), "ipin.bench.v1");
  EXPECT_DOUBLE_EQ(v->FindNumber("reps", 0.0), 3.0);
  std::remove(path.c_str());
  EXPECT_FALSE(JsonValue::ParseFile(path).has_value());
}

}  // namespace
}  // namespace ipin
