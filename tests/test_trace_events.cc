#include "ipin/obs/trace_events.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/json.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"

namespace ipin::obs {
namespace {

// The recorder is process-global; each test runs its own Start/Stop session
// and resets the buffers afterwards. Tests run serially within the binary,
// so sessions never overlap.

class TraceEventsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    StopTraceRecording();  // harmless when already stopped
    ResetTraceEventsForTest();
  }

  // Records via real spans so the TraceSpan -> recorder hook is exercised.
  // Direct TraceSpan objects (not the macros) so the counts hold under
  // -DIPIN_OBS_DISABLED too, matching the test_trace_spans idiom.
  static void RecordSomeSpans() {
    TraceSpan outer("test.outer");
    for (int i = 0; i < 3; ++i) {
      TraceSpan inner("test.inner");
      RecordInstantEvent("test.tick");
    }
  }

  static std::string WriteTraceToTempFile(const char* name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    EXPECT_TRUE(WriteChromeTrace(path));
    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    std::remove(path.c_str());
    return contents.str();
  }
};

TEST_F(TraceEventsTest, OffByDefaultAndNoEventsRecorded) {
  EXPECT_FALSE(IsTraceRecording());
  RecordSomeSpans();
  EXPECT_EQ(GetTraceEventStats().recorded_events, 0u);
}

TEST_F(TraceEventsTest, StartStopLifecycle) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;  // no sampler thread in unit tests
  ASSERT_TRUE(StartTraceRecording(options));
  EXPECT_TRUE(IsTraceRecording());
  EXPECT_FALSE(StartTraceRecording(options));  // second start refused
  StopTraceRecording();
  EXPECT_FALSE(IsTraceRecording());
}

TEST_F(TraceEventsTest, WritesValidJsonWithMatchedBeginEnd) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  ASSERT_TRUE(StartTraceRecording(options));
  RecordSomeSpans();
  RecordCounterEvent("test.counter", 42.0);
  StopTraceRecording();

  const std::string text = WriteTraceToTempFile("trace.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << "not valid JSON:\n" << text;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Begin/end events must pair up per (tid, name), properly nested.
  size_t begins = 0, ends = 0, instants = 0, counters = 0;
  std::vector<std::string> stack;
  for (const JsonValue& e : events->array_items()) {
    const std::string phase = e.FindString("ph", "");
    const std::string name = e.FindString("name", "");
    ASSERT_NE(e.Find("ts"), nullptr);
    if (phase == "B") {
      ++begins;
      stack.push_back(name);
    } else if (phase == "E") {
      ++ends;
      ASSERT_FALSE(stack.empty()) << "E without matching B";
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    } else if (phase == "i") {
      ++instants;
    } else if (phase == "C") {
      ++counters;
      ASSERT_NE(e.Find("args"), nullptr);
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed span in output";
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, 4u);  // 1 outer + 3 inner
  EXPECT_EQ(instants, 3u);
  EXPECT_EQ(counters, 1u);
}

TEST_F(TraceEventsTest, TimestampsAreMonotonePerThread) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  ASSERT_TRUE(StartTraceRecording(options));
  RecordSomeSpans();
  StopTraceRecording();

  const std::string text = WriteTraceToTempFile("trace_mono.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value());
  double last_ts = -1.0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    const double ts = e.FindNumber("ts", -1.0);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST_F(TraceEventsTest, RingWrapKeepsNewestAndStillBalances) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  options.events_per_thread = 64;  // force wrap-around
  ASSERT_TRUE(StartTraceRecording(options));
  for (int i = 0; i < 500; ++i) {
    TraceSpan span("test.wrapped");
  }
  StopTraceRecording();

  const TraceEventStats stats = GetTraceEventStats();
  EXPECT_EQ(stats.recorded_events, 64u);
  EXPECT_EQ(stats.dropped_events, 1000u - 64u);  // 500 B + 500 E emitted

  const std::string text = WriteTraceToTempFile("trace_wrap.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  size_t begins = 0, ends = 0;
  int depth = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    const std::string phase = e.FindString("ph", "");
    if (phase == "B") {
      ++begins;
      ++depth;
    } else if (phase == "E") {
      ++ends;
      --depth;
    }
    ASSERT_GE(depth, 0) << "unbalanced E after wrap";
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0u);
}

TEST_F(TraceEventsTest, OpenSpanGetsSyntheticEnd) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  ASSERT_TRUE(StartTraceRecording(options));
  RecordBeginEvent("test.never_closed");
  RecordInstantEvent("test.inside");
  StopTraceRecording();

  const std::string text = WriteTraceToTempFile("trace_open.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  size_t begins = 0, ends = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    const std::string phase = e.FindString("ph", "");
    begins += phase == "B";
    ends += phase == "E";
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);  // synthetic close
}

TEST_F(TraceEventsTest, MultipleThreadsGetDistinctTids) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  ASSERT_TRUE(StartTraceRecording(options));
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan span("test.worker");
      }
    });
  }
  for (auto& w : workers) w.join();
  StopTraceRecording();

  EXPECT_GE(GetTraceEventStats().threads, 4u);

  const std::string text = WriteTraceToTempFile("trace_mt.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  std::vector<double> tids;
  size_t events = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    ++events;
    const double tid = e.FindNumber("tid", -1.0);
    ASSERT_GE(tid, 0.0);
    bool seen = false;
    for (const double t : tids) seen = seen || t == tid;
    if (!seen) tids.push_back(tid);
  }
  EXPECT_EQ(events, 4u * 100u);  // 4 threads x (50 B + 50 E)
  EXPECT_GE(tids.size(), 4u);
}

TEST_F(TraceEventsTest, CounterSamplerEmitsCounterTracks) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 5;
  // Bump the counter before the session so even the sampler's first pass
  // sees the final value (samples record deterministically as 7).
  MetricsRegistry::Global().GetCounter("test.sampler.work_items")->Add(7);
  ASSERT_TRUE(StartTraceRecording(options));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  StopTraceRecording();

  const std::string text = WriteTraceToTempFile("trace_sampler.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  bool found = false;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    if (e.FindString("ph", "") != "C") continue;
    if (e.FindString("name", "") == "test.sampler.work_items") {
      found = true;
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->FindNumber("value", -1.0), 7.0);
    }
  }
  EXPECT_TRUE(found) << "sampler did not record the counter track:\n" << text;
}

TEST_F(TraceEventsTest, SecondSessionDiscardsFirstSessionsEvents) {
  TraceRecorderOptions options;
  options.counter_sample_period_ms = 0;
  ASSERT_TRUE(StartTraceRecording(options));
  RecordSomeSpans();
  StopTraceRecording();
  EXPECT_GT(GetTraceEventStats().recorded_events, 0u);

  ASSERT_TRUE(StartTraceRecording(options));
  RecordInstantEvent("test.second_session");
  StopTraceRecording();

  const std::string text = WriteTraceToTempFile("trace_second.json");
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  size_t events = 0;
  for (const JsonValue& e : doc->Find("traceEvents")->array_items()) {
    ++events;
    EXPECT_EQ(e.FindString("name", ""), "test.second_session");
  }
  EXPECT_EQ(events, 1u);
}

}  // namespace
}  // namespace ipin::obs
