#include "ipin/baselines/temporal_pagerank.h"

#include <numeric>

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(TemporalPageRankTest, ScoresNormalized) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 500, 2000, 1);
  const auto scores = ComputeTemporalPageRank(g);
  const double sum = std::accumulate(scores.begin(), scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (const double s : scores) EXPECT_GE(s, 0.0);
}

TEST(TemporalPageRankTest, EmptyGraphAllZero) {
  const InteractionGraph g(4);
  const auto scores = ComputeTemporalPageRank(g);
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(TemporalPageRankTest, PopularReceiverScoresHighest) {
  InteractionGraph g(5);
  for (int i = 0; i < 10; ++i) {
    g.AddInteraction(static_cast<NodeId>(i % 4 == 3 ? 1 : i % 4), 4,
                     i + 1);  // everyone sends to node 4
  }
  const auto scores = ComputeTemporalPageRank(g);
  for (NodeId u = 0; u < 4; ++u) EXPECT_GT(scores[4], scores[u]);
}

TEST(TemporalPageRankTest, TimeOrderMatters) {
  // Chain 0->1->2 in time order passes mass to 2; in anti-time order the
  // relayed mass cannot flow, so 2 scores strictly less.
  InteractionGraph ordered(3);
  ordered.AddInteraction(0, 1, 1);
  ordered.AddInteraction(1, 2, 2);
  InteractionGraph reversed_order(3);
  reversed_order.AddInteraction(1, 2, 1);
  reversed_order.AddInteraction(0, 1, 2);
  TemporalPageRankOptions options;
  options.tau = 100.0;
  const auto a = ComputeTemporalPageRank(ordered, options);
  const auto b = ComputeTemporalPageRank(reversed_order, options);
  EXPECT_GT(a[2], b[2]);
}

TEST(TemporalPageRankTest, DecayReducesStaleRelays) {
  // Same chain, but with a huge gap before the relay: with a small tau the
  // relayed share of 2's score shrinks towards the fresh-walk-only value.
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 2, 1000000);
  TemporalPageRankOptions slow_decay;
  slow_decay.tau = 1e9;
  TemporalPageRankOptions fast_decay;
  fast_decay.tau = 10.0;
  const auto slow = ComputeTemporalPageRank(g, slow_decay);
  const auto fast = ComputeTemporalPageRank(g, fast_decay);
  // Node 2's share of the total is lower under fast decay.
  EXPECT_LT(fast[2], slow[2]);
}

TEST(TemporalPageRankTest, SeedSelectionPicksTemporalSource) {
  // Node 0 seeds a long time-respecting relay chain; static out-degree of
  // every node is 1, but temporally node 0's mass reaches everyone.
  InteractionGraph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) {
    g.AddInteraction(u, u + 1, u + 1);
  }
  const auto seeds = SelectSeedsTemporalPageRank(g, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(TemporalPageRankTest, SeedsAreValidAndDistinct) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 400, 1000, 3);
  const auto seeds = SelectSeedsTemporalPageRank(g, 10);
  ASSERT_EQ(seeds.size(), 10u);
  std::set<NodeId> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const NodeId s : seeds) EXPECT_LT(s, 40u);
}

TEST(TemporalPageRankTest, DeterministicResult) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 300, 900, 5);
  EXPECT_EQ(ComputeTemporalPageRank(g), ComputeTemporalPageRank(g));
}

}  // namespace
}  // namespace ipin
