#include "ipin/core/information_channel.h"

#include <gtest/gtest.h>

#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

TEST(BruteForceIrsTest, FigureOneMatchesPaperExample) {
  const InteractionGraph g = FigureOneGraph();
  const auto expected = FigureOneSummariesW3();
  for (NodeId u = 0; u < 6; ++u) {
    const IrsSummary summary = BruteForceIrsSummary(g, u, 3);
    EXPECT_EQ(summary.size(), expected[u].size()) << "node " << u;
    for (const auto& [v, t] : expected[u]) {
      const auto it = summary.find(v);
      ASSERT_NE(it, summary.end()) << "node " << u << " missing " << v;
      EXPECT_EQ(it->second, t) << "lambda(" << u << "," << v << ")";
    }
  }
}

TEST(BruteForceIrsTest, IntroductionChannelClaims) {
  // Section 1: "there is an information channel from a to e, but not from
  // a to f" (any duration).
  const InteractionGraph g = FigureOneGraph();
  EXPECT_TRUE(HasInformationChannel(g, kA, kE, 100));
  EXPECT_FALSE(HasInformationChannel(g, kA, kF, 100));
}

TEST(BruteForceIrsTest, WindowOneGivesDirectTargetsOnly) {
  const InteractionGraph g = FigureOneGraph();
  const IrsSummary a = BruteForceIrsSummary(g, kA, 1);
  EXPECT_EQ(a.size(), 2u);  // d (t=1) and b (t=5)
  EXPECT_EQ(a.at(kD), 1);
  EXPECT_EQ(a.at(kB), 5);
}

TEST(BruteForceIrsTest, IrsGrowsWithWindow) {
  const InteractionGraph g = FigureOneGraph();
  for (NodeId u = 0; u < 6; ++u) {
    size_t prev = 0;
    for (const Duration w : {1, 2, 3, 5, 8, 100}) {
      const size_t size = BruteForceIrsSummary(g, u, w).size();
      EXPECT_GE(size, prev) << "node " << u << " window " << w;
      prev = size;
    }
  }
}

TEST(BruteForceIrsTest, LambdaNeverIncreasesWithWindow) {
  const InteractionGraph g = FigureOneGraph();
  const IrsSummary narrow = BruteForceIrsSummary(g, kA, 3);
  const IrsSummary wide = BruteForceIrsSummary(g, kA, 8);
  for (const auto& [v, t] : narrow) {
    ASSERT_TRUE(wide.count(v));
    EXPECT_LE(wide.at(v), t);  // more channels available, earliest end <=
  }
}

TEST(FindEarliestChannelTest, ReconstructsPaperPath) {
  const InteractionGraph g = FigureOneGraph();
  // lambda(a, c) = 7 at window 3, via a->b(5), b->e(6), e->c(7).
  const auto path = FindEarliestChannel(g, kA, kC, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].src, kA);
  EXPECT_EQ(path[0].time, 5);
  EXPECT_EQ(path[1].time, 6);
  EXPECT_EQ(path[2].dst, kC);
  EXPECT_EQ(path[2].time, 7);
}

TEST(FindEarliestChannelTest, SingleEdgeChannel) {
  const InteractionGraph g = FigureOneGraph();
  const auto path = FindEarliestChannel(g, kA, kD, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].time, 1);
}

TEST(FindEarliestChannelTest, NoChannelGivesEmpty) {
  const InteractionGraph g = FigureOneGraph();
  EXPECT_TRUE(FindEarliestChannel(g, kA, kF, 100).empty());
  EXPECT_TRUE(FindEarliestChannel(g, kC, kA, 100).empty());
}

TEST(FindEarliestChannelTest, PathIsTimeIncreasingAndWindowed) {
  const InteractionGraph g =
      GenerateUniformRandomNetwork(20, 150, 1000, 1234);
  const Duration window = 200;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 20; ++v) {
      const auto path = FindEarliestChannel(g, u, v, window);
      if (path.empty()) continue;
      EXPECT_EQ(path.front().src, u);
      EXPECT_EQ(path.back().dst, v);
      for (size_t i = 1; i < path.size(); ++i) {
        EXPECT_LT(path[i - 1].time, path[i].time);
        EXPECT_EQ(path[i - 1].dst, path[i].src);
      }
      EXPECT_LE(path.back().time - path.front().time + 1, window);
    }
  }
}

TEST(BruteForceIrsTest, SelfLoopDoesNotPutNodeInOwnIrs) {
  // A node is never a member of its own IRS (paper Example 2 drops the
  // e -> b -> e cycle entry).
  InteractionGraph g(2);
  g.AddInteraction(0, 0, 1);
  EXPECT_TRUE(BruteForceIrsSummary(g, 0, 5).empty());
}

TEST(BruteForceIrsTest, TemporalCycleExcludesSelfButAllowsTransit) {
  InteractionGraph g(3);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(1, 0, 2);
  g.AddInteraction(0, 2, 3);
  const IrsSummary s = BruteForceIrsSummary(g, 0, 5);
  EXPECT_FALSE(s.count(0));  // 0 -> 1 -> 0 exists but self is filtered
  EXPECT_TRUE(s.count(1));
  EXPECT_TRUE(s.count(2));
  // Node 1 reaches 2 only by transiting through 0: 1->0(2), 0->2(3).
  const IrsSummary s1 = BruteForceIrsSummary(g, 1, 5);
  EXPECT_TRUE(s1.count(2));
}

TEST(BruteForceIrsTest, EmptyGraphHasEmptySummaries) {
  InteractionGraph g(3);
  const auto all = BruteForceAllIrsSummaries(g, 10);
  for (const auto& s : all) EXPECT_TRUE(s.empty());
}

TEST(BruteForceIrsTest, TimeOrderMattersNotInsertionOrder) {
  // Path must respect time even when interactions interleave: y->z happens
  // BEFORE x->y, so x cannot reach z.
  InteractionGraph g(3);
  g.AddInteraction(1, 2, 1);  // y->z at 1
  g.AddInteraction(0, 1, 2);  // x->y at 2
  EXPECT_FALSE(HasInformationChannel(g, 0, 2, 100));
  EXPECT_TRUE(HasInformationChannel(g, 0, 1, 100));
}

}  // namespace
}  // namespace ipin
