#include "ipin/core/influence_maximization.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

// Reference greedy without the early-exit optimization: full scan per round,
// same tie-break preference as Algorithm 4 (gain, then individual influence,
// then smaller id).
SeedSelection NaiveGreedy(const InfluenceOracle& oracle, size_t k) {
  SeedSelection result;
  const size_t n = oracle.num_nodes();
  auto coverage = oracle.NewCoverage();
  std::vector<char> selected(n, 0);
  while (result.seeds.size() < std::min(k, n)) {
    double best_gain = -1.0;
    NodeId best = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
      if (selected[u]) continue;
      const double gain = coverage->GainOf(u);
      ++result.gain_evaluations;
      const bool better =
          gain > best_gain ||
          (gain == best_gain && best != kInvalidNode &&
           oracle.InfluenceOf(u) > oracle.InfluenceOf(best));
      if (better) {
        best_gain = gain;
        best = u;
      }
    }
    if (best == kInvalidNode) break;
    selected[best] = 1;
    coverage->Commit(best);
    result.seeds.push_back(best);
    result.gains.push_back(best_gain);
  }
  result.total_coverage = coverage->Covered();
  return result;
}

TEST(GreedyTest, PicksObviousWinnerFirst) {
  SetCoverageOracle oracle({{1, 2, 3, 4, 5}, {1, 2}, {6}, {}});
  const SeedSelection result = SelectSeedsGreedy(oracle, 2);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);  // covers 5
  EXPECT_EQ(result.seeds[1], 2u);  // covers 1 new (node 6)
  EXPECT_DOUBLE_EQ(result.total_coverage, 6.0);
}

TEST(GreedyTest, AccountsForOverlap) {
  // Node 0 covers {1..5}; node 1 covers {1..4, 6}; node 2 covers {7, 8}.
  // Plain top-2-by-size picks 0 and 1 (coverage 7); greedy picks 0 and 2
  // only if |{7,8} new| > |{6} new| -> yes.
  SetCoverageOracle oracle({{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}, {7, 8}});
  const SeedSelection result = SelectSeedsGreedy(oracle, 2);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_EQ(result.seeds[1], 2u);
  EXPECT_DOUBLE_EQ(result.total_coverage, 7.0);
}

TEST(GreedyTest, MatchesNaiveGreedyOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const InteractionGraph g =
        GenerateUniformRandomNetwork(25, 180, 500, seed);
    const IrsExact irs = IrsExact::Compute(g, 100);
    const ExactInfluenceOracle oracle(&irs);
    const SeedSelection fast = SelectSeedsGreedy(oracle, 6);
    const SeedSelection naive = NaiveGreedy(oracle, 6);
    EXPECT_EQ(fast.seeds, naive.seeds) << "seed " << seed;
    EXPECT_DOUBLE_EQ(fast.total_coverage, naive.total_coverage);
    EXPECT_LE(fast.gain_evaluations, naive.gain_evaluations);
  }
}

TEST(CelfTest, MatchesSimpleGreedy) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const InteractionGraph g =
        GenerateUniformRandomNetwork(25, 180, 500, seed + 10);
    const IrsExact irs = IrsExact::Compute(g, 100);
    const ExactInfluenceOracle oracle(&irs);
    const SeedSelection greedy = SelectSeedsGreedy(oracle, 6);
    const SeedSelection celf = SelectSeedsCelf(oracle, 6);
    EXPECT_EQ(greedy.seeds, celf.seeds) << "seed " << seed;
    EXPECT_DOUBLE_EQ(greedy.total_coverage, celf.total_coverage);
  }
}

TEST(CelfTest, UsesFewerEvaluationsThanNaive) {
  const InteractionGraph g = GenerateUniformRandomNetwork(60, 500, 1500, 3);
  const IrsExact irs = IrsExact::Compute(g, 300);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection celf = SelectSeedsCelf(oracle, 8);
  const SeedSelection naive = NaiveGreedy(oracle, 8);
  EXPECT_EQ(celf.seeds, naive.seeds);
  EXPECT_LT(celf.gain_evaluations, naive.gain_evaluations);
}

TEST(GreedyTest, NearOptimalOnTinyInstances) {
  // Greedy >= (1 - 1/e) * OPT for monotone submodular coverage.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const InteractionGraph g = GenerateUniformRandomNetwork(12, 60, 200, seed);
    const IrsExact irs = IrsExact::Compute(g, 50);
    const ExactInfluenceOracle oracle(&irs);
    const SeedSelection greedy = SelectSeedsGreedy(oracle, 3);
    const SeedSelection optimal = SelectSeedsExhaustive(oracle, 3);
    EXPECT_GE(greedy.total_coverage + 1e-9,
              (1.0 - 1.0 / 2.718281828) * optimal.total_coverage)
        << "seed " << seed;
  }
}

TEST(GreedyTest, GainsAreNonIncreasing) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 300, 900, 7);
  const IrsExact irs = IrsExact::Compute(g, 200);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection result = SelectSeedsGreedy(oracle, 10);
  for (size_t i = 1; i < result.gains.size(); ++i) {
    EXPECT_LE(result.gains[i], result.gains[i - 1] + 1e-9);
  }
}

TEST(GreedyTest, KLargerThanNSelectsAllNodes) {
  SetCoverageOracle oracle({{1}, {2}, {0}});
  const SeedSelection result = SelectSeedsGreedy(oracle, 10);
  EXPECT_EQ(result.seeds.size(), 3u);
}

TEST(GreedyTest, KZeroSelectsNothing) {
  SetCoverageOracle oracle({{1}, {2}});
  EXPECT_TRUE(SelectSeedsGreedy(oracle, 0).seeds.empty());
  EXPECT_TRUE(SelectSeedsCelf(oracle, 0).seeds.empty());
}

TEST(GreedyTest, EmptyOracle) {
  SetCoverageOracle oracle({});
  EXPECT_TRUE(SelectSeedsGreedy(oracle, 3).seeds.empty());
  EXPECT_TRUE(SelectSeedsCelf(oracle, 3).seeds.empty());
}

TEST(GreedyTest, AllEmptySetsStillSelectsDeterministically) {
  SetCoverageOracle oracle({{}, {}, {}});
  const SeedSelection result = SelectSeedsGreedy(oracle, 2);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.total_coverage, 0.0);
}

TEST(ExhaustiveTest, FindsTrueOptimum) {
  // Node sets engineered so the best pair is {1, 2} (disjoint, 3 + 3),
  // beating {0, anything} despite node 0 having the largest set.
  SetCoverageOracle oracle(
      {{1, 2, 3, 4}, {5, 6, 7}, {8, 9, 10}, {1, 2}, {}});
  const SeedSelection best = SelectSeedsExhaustive(oracle, 2);
  EXPECT_DOUBLE_EQ(best.total_coverage, 7.0);  // {0} u {1} or {0} u {2}
}

TEST(GreedyTest, SeedsAreDistinct) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 200, 600, 9);
  const IrsExact irs = IrsExact::Compute(g, 150);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection result = SelectSeedsGreedy(oracle, 10);
  std::vector<NodeId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace ipin
