#include "ipin/common/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

FlagMap ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagMap::Parse(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()));
}

TEST(FlagMapTest, ParsesKeyValue) {
  const FlagMap flags = ParseArgs({"--name=foo", "--count=5"});
  EXPECT_EQ(flags.GetString("name"), "foo");
  EXPECT_EQ(flags.GetInt("count", 0), 5);
}

TEST(FlagMapTest, BareFlagIsTrue) {
  const FlagMap flags = ParseArgs({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagMapTest, DefaultsApplyWhenAbsent) {
  const FlagMap flags = ParseArgs({});
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagMapTest, ParsesDoubles) {
  const FlagMap flags = ParseArgs({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
}

TEST(FlagMapTest, BoolSpellings) {
  const FlagMap flags =
      ParseArgs({"--a=true", "--b=0", "--c=yes", "--d=false", "--e=weird"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // unparsable -> default
}

TEST(FlagMapTest, UnparsableIntFallsBackToDefault) {
  const FlagMap flags = ParseArgs({"--n=abc"});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
}

TEST(FlagMapTest, PositionalArguments) {
  const FlagMap flags = ParseArgs({"input.txt", "--k=3", "out.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "out.txt");
}

TEST(FlagMapTest, LastValueWins) {
  const FlagMap flags = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

TEST(FlagMapTest, EmptyValue) {
  const FlagMap flags = ParseArgs({"--name="});
  EXPECT_EQ(flags.GetString("name", "d"), "");
}

}  // namespace
}  // namespace ipin
