#include "ipin/common/failpoint.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace ipin {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, UnarmedIsFree) {
  EXPECT_FALSE(failpoint::AnyArmed());
  const auto result = IPIN_FAILPOINT("never.armed");
  EXPECT_FALSE(result.fail);
  EXPECT_FALSE(result.active());
  // Nothing armed => the macro short-circuits: no hit is recorded.
  EXPECT_EQ(failpoint::HitCount("never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorModeFailsEveryHit) {
  ASSERT_TRUE(failpoint::Set("io.write", "error"));
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);
  EXPECT_EQ(failpoint::HitCount("io.write"), 2u);
  // Other names stay unaffected.
  EXPECT_FALSE(IPIN_FAILPOINT("io.read").fail);
}

TEST_F(FailpointTest, ErrorModeWithThresholdFailsFromNthHit) {
  ASSERT_TRUE(failpoint::Set("io.write", "error(3)"));
  EXPECT_FALSE(IPIN_FAILPOINT("io.write").fail);  // hit 1
  EXPECT_FALSE(IPIN_FAILPOINT("io.write").fail);  // hit 2
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);   // hit 3
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);   // hit 4
}

TEST_F(FailpointTest, ShortWriteModeCapsBytes) {
  ASSERT_TRUE(failpoint::Set("io.write", "short_write(16)"));
  const auto result = IPIN_FAILPOINT("io.write");
  EXPECT_FALSE(result.fail);
  EXPECT_TRUE(result.active());
  EXPECT_EQ(result.short_write, 16u);
}

TEST_F(FailpointTest, OffSpecAndClearDisarm) {
  ASSERT_TRUE(failpoint::Set("a", "error"));
  ASSERT_TRUE(failpoint::Set("b", "error"));
  ASSERT_TRUE(failpoint::Set("a", "off"));
  EXPECT_FALSE(IPIN_FAILPOINT("a").fail);
  failpoint::Clear("b");
  EXPECT_FALSE(IPIN_FAILPOINT("b").fail);
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, BadSpecRejected) {
  EXPECT_FALSE(failpoint::Set("x", "explode"));
  EXPECT_FALSE(failpoint::Set("x", "error(nope)"));
  EXPECT_FALSE(failpoint::Set("x", "short_write"));  // missing argument
  EXPECT_FALSE(failpoint::Set("", "error"));         // empty name
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, RearmingResetsHitCount) {
  ASSERT_TRUE(failpoint::Set("x", "error"));
  (void)IPIN_FAILPOINT("x");
  (void)IPIN_FAILPOINT("x");
  EXPECT_EQ(failpoint::HitCount("x"), 2u);
  ASSERT_TRUE(failpoint::Set("x", "error"));
  EXPECT_EQ(failpoint::HitCount("x"), 0u);
}

TEST_F(FailpointTest, ListShowsArmedSpecs) {
  ASSERT_TRUE(failpoint::Set("b.point", "short_write(8)"));
  ASSERT_TRUE(failpoint::Set("a.point", "error"));
  const auto list = failpoint::List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], "a.point=error(1)");
  EXPECT_EQ(list[1], "b.point=short_write(8)");
}

TEST_F(FailpointTest, LoadFromEnvParsesMultipleSpecs) {
  ::setenv("IPIN_FAILPOINTS", "env.a=error;env.b=short_write(4)", 1);
  failpoint::LoadFromEnv();
  ::unsetenv("IPIN_FAILPOINTS");
  EXPECT_TRUE(IPIN_FAILPOINT("env.a").fail);
  EXPECT_EQ(IPIN_FAILPOINT("env.b").short_write, 4u);
}

TEST_F(FailpointTest, DelayModePassesThrough) {
  ASSERT_TRUE(failpoint::Set("slow", "delay(1)"));
  const auto result = IPIN_FAILPOINT("slow");
  EXPECT_FALSE(result.fail);
  EXPECT_FALSE(result.active());
}

// crash_after_n terminates the process with exit code 134 (a simulated
// kill) once the threshold is crossed.
TEST_F(FailpointTest, CrashAfterNKillsProcess) {
  ASSERT_TRUE(failpoint::Set("boom", "crash_after_n(2)"));
  EXPECT_FALSE(IPIN_FAILPOINT("boom").fail);  // hit 1 passes
  EXPECT_FALSE(IPIN_FAILPOINT("boom").fail);  // hit 2 passes
  EXPECT_EXIT((void)IPIN_FAILPOINT("boom"),   // hit 3 crashes
              ::testing::ExitedWithCode(134), "failpoint");
}

}  // namespace
}  // namespace ipin
