#include "ipin/common/failpoint.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, UnarmedIsFree) {
  EXPECT_FALSE(failpoint::AnyArmed());
  const auto result = IPIN_FAILPOINT("never.armed");
  EXPECT_FALSE(result.fail);
  EXPECT_FALSE(result.active());
  // Nothing armed => the macro short-circuits: no hit is recorded.
  EXPECT_EQ(failpoint::HitCount("never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorModeFailsEveryHit) {
  ASSERT_TRUE(failpoint::Set("io.write", "error"));
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);
  EXPECT_EQ(failpoint::HitCount("io.write"), 2u);
  // Other names stay unaffected.
  EXPECT_FALSE(IPIN_FAILPOINT("io.read").fail);
}

TEST_F(FailpointTest, ErrorModeWithThresholdFailsFromNthHit) {
  ASSERT_TRUE(failpoint::Set("io.write", "error(3)"));
  EXPECT_FALSE(IPIN_FAILPOINT("io.write").fail);  // hit 1
  EXPECT_FALSE(IPIN_FAILPOINT("io.write").fail);  // hit 2
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);   // hit 3
  EXPECT_TRUE(IPIN_FAILPOINT("io.write").fail);   // hit 4
}

TEST_F(FailpointTest, ShortWriteModeCapsBytes) {
  ASSERT_TRUE(failpoint::Set("io.write", "short_write(16)"));
  const auto result = IPIN_FAILPOINT("io.write");
  EXPECT_FALSE(result.fail);
  EXPECT_TRUE(result.active());
  EXPECT_EQ(result.short_write, 16u);
}

TEST_F(FailpointTest, OffSpecAndClearDisarm) {
  ASSERT_TRUE(failpoint::Set("a", "error"));
  ASSERT_TRUE(failpoint::Set("b", "error"));
  ASSERT_TRUE(failpoint::Set("a", "off"));
  EXPECT_FALSE(IPIN_FAILPOINT("a").fail);
  failpoint::Clear("b");
  EXPECT_FALSE(IPIN_FAILPOINT("b").fail);
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, BadSpecRejected) {
  EXPECT_FALSE(failpoint::Set("x", "explode"));
  EXPECT_FALSE(failpoint::Set("x", "error(nope)"));
  EXPECT_FALSE(failpoint::Set("x", "short_write"));  // missing argument
  EXPECT_FALSE(failpoint::Set("", "error"));         // empty name
  EXPECT_FALSE(failpoint::Set("x", "error_prob"));   // missing probability
  EXPECT_FALSE(failpoint::Set("x", "error_prob(1.5)"));   // out of [0, 1]
  EXPECT_FALSE(failpoint::Set("x", "error_prob(-0.1)"));
  EXPECT_FALSE(failpoint::Set("x", "error_prob(lots)"));
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, ErrorProbHitRateTracksProbability) {
  ASSERT_TRUE(failpoint::Set("flaky", "error_prob(0.3)"));
  constexpr int kTrials = 2000;
  int failures = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (IPIN_FAILPOINT("flaky").fail) ++failures;
  }
  // Binomial(2000, 0.3): stddev ~20.5, so +-100 is ~5 sigma — deterministic
  // in practice for any fixed seed.
  EXPECT_NEAR(failures, 600, 100);
  EXPECT_EQ(failpoint::HitCount("flaky"), static_cast<size_t>(kTrials));
}

TEST_F(FailpointTest, ErrorProbExtremesAreExact) {
  ASSERT_TRUE(failpoint::Set("never", "error_prob(0)"));
  ASSERT_TRUE(failpoint::Set("always", "error_prob(1)"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(IPIN_FAILPOINT("never").fail);
    EXPECT_TRUE(IPIN_FAILPOINT("always").fail);
  }
}

TEST_F(FailpointTest, ErrorProbReplaysFromSeed) {
  const auto sample = [](const char* seed) {
    if (seed != nullptr) {
      ::setenv("IPIN_FAILPOINT_SEED", seed, 1);
    } else {
      ::unsetenv("IPIN_FAILPOINT_SEED");
    }
    EXPECT_TRUE(failpoint::Set("flaky", "error_prob(0.5)"));  // re-arm seeds
    ::unsetenv("IPIN_FAILPOINT_SEED");
    std::vector<bool> fails;
    for (int i = 0; i < 64; ++i) fails.push_back(IPIN_FAILPOINT("flaky").fail);
    return fails;
  };

  const auto run1 = sample("12345");
  const auto run2 = sample("12345");
  const auto run3 = sample("99999");
  EXPECT_EQ(run1, run2);  // same seed => bit-identical fault schedule
  EXPECT_NE(run1, run3);  // different seed => different schedule
}

TEST_F(FailpointTest, ErrorProbSchedulesDifferPerName) {
  ::setenv("IPIN_FAILPOINT_SEED", "7", 1);
  ASSERT_TRUE(failpoint::Set("point.a", "error_prob(0.5)"));
  ASSERT_TRUE(failpoint::Set("point.b", "error_prob(0.5)"));
  ::unsetenv("IPIN_FAILPOINT_SEED");
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(IPIN_FAILPOINT("point.a").fail);
    b.push_back(IPIN_FAILPOINT("point.b").fail);
  }
  // One base seed, but per-name PRNGs: armed points fail on uncorrelated
  // schedules instead of in lockstep.
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, RearmingResetsHitCount) {
  ASSERT_TRUE(failpoint::Set("x", "error"));
  (void)IPIN_FAILPOINT("x");
  (void)IPIN_FAILPOINT("x");
  EXPECT_EQ(failpoint::HitCount("x"), 2u);
  ASSERT_TRUE(failpoint::Set("x", "error"));
  EXPECT_EQ(failpoint::HitCount("x"), 0u);
}

TEST_F(FailpointTest, ListShowsArmedSpecs) {
  ASSERT_TRUE(failpoint::Set("b.point", "short_write(8)"));
  ASSERT_TRUE(failpoint::Set("a.point", "error"));
  const auto list = failpoint::List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], "a.point=error(1)");
  EXPECT_EQ(list[1], "b.point=short_write(8)");
}

TEST_F(FailpointTest, LoadFromEnvParsesMultipleSpecs) {
  ::setenv("IPIN_FAILPOINTS", "env.a=error;env.b=short_write(4)", 1);
  failpoint::LoadFromEnv();
  ::unsetenv("IPIN_FAILPOINTS");
  EXPECT_TRUE(IPIN_FAILPOINT("env.a").fail);
  EXPECT_EQ(IPIN_FAILPOINT("env.b").short_write, 4u);
}

TEST_F(FailpointTest, DelayModePassesThrough) {
  ASSERT_TRUE(failpoint::Set("slow", "delay(1)"));
  const auto result = IPIN_FAILPOINT("slow");
  EXPECT_FALSE(result.fail);
  EXPECT_FALSE(result.active());
}

// crash_after_n terminates the process with exit code 134 (a simulated
// kill) once the threshold is crossed.
TEST_F(FailpointTest, CrashAfterNKillsProcess) {
  ASSERT_TRUE(failpoint::Set("boom", "crash_after_n(2)"));
  EXPECT_FALSE(IPIN_FAILPOINT("boom").fail);  // hit 1 passes
  EXPECT_FALSE(IPIN_FAILPOINT("boom").fail);  // hit 2 passes
  EXPECT_EXIT((void)IPIN_FAILPOINT("boom"),   // hit 3 crashes
              ::testing::ExitedWithCode(134), "failpoint");
}

}  // namespace
}  // namespace ipin
