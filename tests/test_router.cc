#include "ipin/serve/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/core/irs_approx.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/serve/client.h"
#include "ipin/serve/server.h"
#include "ipin/serve/shard_map.h"
#include "ipin/sketch/estimators.h"

// End-to-end scatter-gather: N in-process OracleServers (each serving the
// shard slice ExtractShardIndex cut for it) behind one RouterServer, talked
// to over real Unix sockets with the real client. The acceptance criteria
// of the sharded serving tier live here: merge exactness against the
// single-process answer, partial-result degradation when shards die, probe
// recovery, map rollback, and seeded failpoint replay.

namespace ipin::serve {
namespace {

constexpr size_t kNumNodes = 60;

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kError);
    tag_ = std::to_string(reinterpret_cast<uintptr_t>(this));
    const InteractionGraph graph =
        GenerateUniformRandomNetwork(kNumNodes, 600, 1000, 11);
    IrsApproxOptions options;
    options.precision = 5;
    full_ = std::make_shared<const IrsApprox>(
        IrsApprox::Compute(graph, 200, options));
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Shutdown();
    for (auto& server : shard_servers_) {
      if (server != nullptr) server->Shutdown();
    }
    failpoint::ClearAll();
    for (const auto& path : socket_paths_) std::remove(path.c_str());
    std::remove(router_socket_.c_str());
  }

  std::string ShardSocket(size_t i) const {
    return ::testing::TempDir() + "/ipin_rt_" + tag_ + "_s" +
           std::to_string(i) + ".sock";
  }

  // Builds the map, extracts the per-shard indexes, and starts one backend
  // per shard.
  void StartShards(size_t n) {
    std::vector<ShardInfo> infos(n);
    socket_paths_.clear();
    for (size_t i = 0; i < n; ++i) {
      infos[i].name = "shard" + std::to_string(i);
      infos[i].endpoint.unix_socket_path = ShardSocket(i);
      socket_paths_.push_back(infos[i].endpoint.unix_socket_path);
    }
    map_ = std::make_shared<const ShardMap>(infos);
    manager_ = std::make_unique<ShardMapManager>("");
    manager_->Install(map_);

    shard_indexes_.clear();
    shard_servers_.clear();
    for (size_t i = 0; i < n; ++i) {
      auto index = std::make_unique<IndexManager>("");
      index->Install(std::make_shared<const IrsApprox>(
          ExtractShardIndex(*full_, *map_, i)));
      shard_indexes_.push_back(std::move(index));
      shard_servers_.push_back(nullptr);
      StartShard(i);
    }
  }

  void StartShard(size_t i) {
    ServerOptions options;
    options.unix_socket_path = socket_paths_[i];
    options.num_workers = 2;
    options.shard_id = static_cast<int>(i);
    options.shard_count = static_cast<int>(shard_indexes_.size());
    shard_servers_[i] =
        std::make_unique<OracleServer>(shard_indexes_[i].get(), options);
    ASSERT_TRUE(shard_servers_[i]->Start());
  }

  void StopShard(size_t i) {
    shard_servers_[i]->Shutdown();
    shard_servers_[i].reset();
    std::remove(socket_paths_[i].c_str());
  }

  void StartRouter(RouterOptions options = {}) {
    router_socket_ = ::testing::TempDir() + "/ipin_rt_" + tag_ + ".sock";
    options.unix_socket_path = router_socket_;
    options.num_workers = 2;
    if (options.health.probe_interval_ms == 200) {
      options.health.probe_interval_ms = 30;  // fast recovery in tests
    }
    router_ = std::make_unique<RouterServer>(manager_.get(), options);
    ASSERT_TRUE(router_->Start());
  }

  OracleClient RouterClient(int max_attempts = 1) const {
    ClientOptions options;
    options.unix_socket_path = router_socket_;
    options.max_attempts = max_attempts;
    options.backoff_initial_ms = 5;
    return OracleClient(options);
  }

  // Spins until the router's health tracker reports `shard` in `state` (the
  // prober runs on its own clock), failing the test after ~3s.
  void WaitForShardState(size_t shard, ShardState state) {
    for (int spin = 0; spin < 300; ++spin) {
      const auto snapshot = router_->ShardHealth();
      if (shard < snapshot.size() && snapshot[shard] == state) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "shard " << shard << " never reached state "
           << ShardStateName(state);
  }

  std::string tag_;
  std::shared_ptr<const IrsApprox> full_;
  std::shared_ptr<const ShardMap> map_;
  std::unique_ptr<ShardMapManager> manager_;
  std::vector<std::string> socket_paths_;
  std::vector<std::unique_ptr<IndexManager>> shard_indexes_;
  std::vector<std::unique_ptr<OracleServer>> shard_servers_;
  std::string router_socket_;
  std::unique_ptr<RouterServer> router_;
};

// Acceptance criterion #1: with all shards healthy the routed answer is
// bit-identical to the single-process answer, for N in {2, 3, 5}.
TEST_F(RouterTest, MergedEstimateMatchesSingleProcessExactly) {
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {1, 2, 3}, {5, 10, 15, 20, 25, 30}, {59}, {7, 7}};
  for (const size_t num_shards : {2u, 3u, 5u}) {
    StartShards(num_shards);
    StartRouter();
    OracleClient client = RouterClient();
    for (const auto& seeds : seed_sets) {
      const auto response = client.Query(seeds, QueryMode::kSketch);
      ASSERT_TRUE(response.has_value())
          << num_shards << " shards, " << seeds.size() << " seeds";
      EXPECT_EQ(response->status, StatusCode::kOk);
      EXPECT_FALSE(response->degraded);
      EXPECT_EQ(response->shards_answered, response->shards_total);
      EXPECT_GT(response->shards_total, 0);
      EXPECT_DOUBLE_EQ(response->coverage, 1.0);
      EXPECT_DOUBLE_EQ(response->estimate, full_->EstimateUnionSize(seeds))
          << num_shards << " shards, " << seeds.size() << " seeds";
    }
    router_->Shutdown();
    router_.reset();
    for (size_t i = 0; i < num_shards; ++i) StopShard(i);
  }
}

TEST_F(RouterTest, WantRanksReturnsTheMergedUnionVector) {
  StartShards(3);
  StartRouter();
  OracleClient client = RouterClient();
  Request request;
  request.method = Method::kQuery;
  request.seeds = {1, 2, 3, 40, 50};
  request.mode = QueryMode::kSketch;
  request.want_ranks = true;
  std::string error;
  const auto response = client.Call(request, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, StatusCode::kOk);
  ASSERT_EQ(response->ranks.size(),
            size_t{1} << full_->options().precision);
  EXPECT_DOUBLE_EQ(EstimateFromRanks(response->ranks), response->estimate);
  EXPECT_DOUBLE_EQ(response->estimate,
                   full_->EstimateUnionSize(request.seeds));
}

TEST_F(RouterTest, TopkMergeMatchesSingleProcessOrder) {
  StartShards(3);
  StartRouter();

  // Ground truth straight off the full index: nodes with sketches, ranked
  // by estimate descending, ties by node id ascending.
  std::vector<std::pair<NodeId, double>> expected;
  for (NodeId u = 0; u < full_->num_nodes(); ++u) {
    if (full_->Sketch(u)) {
      expected.emplace_back(u, full_->Sketch(u).Estimate());
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  constexpr size_t kK = 7;
  ASSERT_GE(expected.size(), kK);
  expected.resize(kK);

  OracleClient client = RouterClient();
  Request request;
  request.method = Method::kTopk;
  request.k = kK;
  std::string error;
  const auto response = client.Call(request, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->topk.size(), kK);
  for (size_t i = 0; i < kK; ++i) {
    EXPECT_EQ(response->topk[i].first, expected[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(response->topk[i].second, expected[i].second)
        << "rank " << i;
  }
}

TEST_F(RouterTest, EmptySeedSetIsRejectedLikeASingleServer) {
  // The wire protocol rejects "query without seeds" at parse time; the
  // router presents the same contract as a single ipin_oracled.
  StartShards(2);
  StartRouter();
  OracleClient client = RouterClient();
  const auto response = client.Query({}, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kBadRequest);
}

TEST_F(RouterTest, OutOfRangeSeedPropagatesBadRequest) {
  StartShards(3);
  StartRouter();
  OracleClient client = RouterClient();
  const auto response =
      client.Query({static_cast<NodeId>(kNumNodes + 100)},
                   QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kBadRequest);
}

TEST_F(RouterTest, ExactModeIsServedBySketchMergeAndMarkedDegraded) {
  StartShards(2);
  StartRouter();
  OracleClient client = RouterClient();
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto response = client.Query(seeds, QueryMode::kExact);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  // The router always merges on the sketch path; an explicit exact ask is
  // answered but flagged.
  EXPECT_TRUE(response->degraded);
  EXPECT_DOUBLE_EQ(response->estimate, full_->EstimateUnionSize(seeds));
}

// Acceptance criterion #2: one shard down -> every answer that needed it is
// a degraded partial with shards_answered = N-1; the router never errors
// while at least one shard can answer.
TEST_F(RouterTest, DeadShardYieldsDegradedPartialsNeverErrors) {
  StartShards(3);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  StartRouter(options);
  StopShard(1);

  OracleClient client = RouterClient();
  // Seeds spanning every shard, so shard 1's subset is always missing.
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) seeds.push_back(u);
  const auto parts = map_->PartitionSeeds(seeds);
  ASSERT_FALSE(parts[1].empty()) << "test graph must give shard 1 seeds";

  for (int i = 0; i < 5; ++i) {
    const auto response = client.Query(seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk) << "iteration " << i;
    EXPECT_TRUE(response->degraded);
    EXPECT_EQ(response->shards_total, 3);
    EXPECT_EQ(response->shards_answered, 2);
    EXPECT_LT(response->coverage, 1.0);
    EXPECT_GT(response->coverage, 0.0);
    // Conservative bound: missing seeds only lose rank mass.
    EXPECT_LE(response->estimate, full_->EstimateUnionSize(seeds));
  }

  // Seeds owned entirely by live shards still answer exactly, undegraded.
  std::vector<NodeId> live_seeds;
  for (const NodeId u : parts[0]) live_seeds.push_back(u);
  ASSERT_FALSE(live_seeds.empty());
  const auto response = client.Query(live_seeds, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  EXPECT_DOUBLE_EQ(response->estimate,
                   full_->EstimateUnionSize(live_seeds));
}

TEST_F(RouterTest, AllShardsDownAnswersUnavailableWithRetryHint) {
  StartShards(2);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  StartRouter(options);
  StopShard(0);
  StopShard(1);

  OracleClient client = RouterClient();
  const auto response = client.Query({1, 2, 3}, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kUnavailable);
  EXPECT_GT(response->retry_after_ms, 0);
}

// Acceptance criterion #3: the circuit opens after down_after consecutive
// failures and the prober closes it again once the backend is back.
TEST_F(RouterTest, CircuitOpensOnFailuresAndProbeRecovers) {
  StartShards(3);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probe_interval_ms = 30;
  StartRouter(options);

  StopShard(2);
  OracleClient client = RouterClient();
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) seeds.push_back(u);
  // Each query fans a leg to shard 2 and fails it; two failures open the
  // circuit.
  for (int i = 0; i < 3; ++i) {
    const auto response = client.Query(seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk);
    EXPECT_TRUE(response->degraded);
  }
  WaitForShardState(2, ShardState::kDown);

  // With the circuit open the router answers fast partials (the dead leg is
  // skipped, not dialed); liveness is unaffected.
  const auto during = client.Query(seeds, QueryMode::kSketch);
  ASSERT_TRUE(during.has_value());
  EXPECT_EQ(during->status, StatusCode::kOk);
  EXPECT_TRUE(during->degraded);
  EXPECT_EQ(during->shards_answered, 2);

  // Restart the backend: the prober should close the circuit on its own,
  // with no query traffic needed.
  StartShard(2);
  WaitForShardState(2, ShardState::kHealthy);

  const auto after = client.Query(seeds, QueryMode::kSketch);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, StatusCode::kOk);
  EXPECT_FALSE(after->degraded);
  EXPECT_EQ(after->shards_answered, 3);
  EXPECT_DOUBLE_EQ(after->estimate, full_->EstimateUnionSize(seeds));
}

TEST_F(RouterTest, HealthVerbReflectsMapAndStatsCountShards) {
  StartShards(2);
  StartRouter();
  OracleClient client = RouterClient();

  Request health;
  health.method = Method::kHealth;
  std::string error;
  const auto health_response = client.Call(health, &error);
  ASSERT_TRUE(health_response.has_value()) << error;
  EXPECT_EQ(health_response->status, StatusCode::kOk);
  EXPECT_EQ(health_response->epoch, 1u);

  ASSERT_TRUE(client.Query({1, 2}).has_value());  // build the fleet
  Request stats;
  stats.method = Method::kStats;
  const auto stats_response = client.Call(stats, &error);
  ASSERT_TRUE(stats_response.has_value()) << error;
  EXPECT_EQ(stats_response->status, StatusCode::kOk);
  double shards_total = -1.0;
  double shards_healthy = -1.0;
  for (const auto& [name, value] : stats_response->info) {
    if (name == "shards_total") shards_total = value;
    if (name == "shards_healthy") shards_healthy = value;
  }
  EXPECT_DOUBLE_EQ(shards_total, 2.0);
  EXPECT_DOUBLE_EQ(shards_healthy, 2.0);
}

TEST_F(RouterTest, ShardMapReloadRollsBackOnCorruptFile) {
  // A file-backed manager this time, so the reload verb has a file to read.
  const std::string map_path =
      ::testing::TempDir() + "/ipin_rt_" + tag_ + "_map.json";
  StartShards(2);
  {
    std::ofstream out(map_path, std::ios::trunc);
    out << map_->ToJson() << '\n';
  }
  manager_ = std::make_unique<ShardMapManager>(map_path);
  ASSERT_EQ(manager_->Reload(), ReloadStatus::kOk);
  StartRouter();

  OracleClient client = RouterClient();
  const auto before = client.Query({1, 2, 3}, QueryMode::kSketch);
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->status, StatusCode::kOk);

  {
    std::ofstream out(map_path, std::ios::trunc);
    out << "corrupt {{{" << '\n';
  }
  Request reload;
  reload.method = Method::kReload;
  std::string error;
  const auto reload_response = client.Call(reload, &error);
  ASSERT_TRUE(reload_response.has_value()) << error;
  EXPECT_EQ(reload_response->status, StatusCode::kOk);
  double rolled_back = -1.0;
  for (const auto& [name, value] : reload_response->info) {
    if (name == "rolled_back") rolled_back = value;
  }
  EXPECT_DOUBLE_EQ(rolled_back, 1.0);
  EXPECT_EQ(reload_response->epoch, 1u) << "old epoch keeps routing";

  // And the old map still answers exactly.
  const std::vector<NodeId> seeds = {1, 2, 3};
  const auto after = client.Query(seeds, QueryMode::kSketch);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, StatusCode::kOk);
  EXPECT_DOUBLE_EQ(after->estimate, full_->EstimateUnionSize(seeds));
  std::remove(map_path.c_str());
}

TEST_F(RouterTest, MergeFailpointAnswersInternal) {
  StartShards(2);
  StartRouter();
  OracleClient client = RouterClient();
  failpoint::Set("serve.shard.merge", "error");
  const auto response = client.Query({1, 2, 3}, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kInternal);
  failpoint::Clear("serve.shard.merge");
  const auto recovered = client.Query({1, 2, 3}, QueryMode::kSketch);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->status, StatusCode::kOk);
}

// The failpoint satellite: serve.shard.rpc=error_prob(p) under a fixed
// IPIN_FAILPOINT_SEED yields a deterministic fault schedule — re-arming with
// the same seed replays the exact same sequence of statuses.
TEST_F(RouterTest, RpcFailpointScheduleReplaysFromSeed) {
  StartShards(2);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  // The circuit must never open during the run: an open circuit skips legs
  // without drawing from the failpoint PRNG, which would couple the
  // schedule to probe timing.
  options.health.suspect_after = 1000000;
  options.health.down_after = 1000000;
  StartRouter(options);

  setenv("IPIN_FAILPOINT_SEED", "424242", 1);
  const auto run_once = [&] {
    // Re-arming resets the failpoint PRNG to the seeded start.
    failpoint::Set("serve.shard.rpc", "error_prob(0.5)");
    OracleClient client = RouterClient();
    // Single-seed queries: exactly one leg, hence exactly one PRNG draw per
    // query — the schedule maps 1:1 onto the status sequence.
    std::string statuses;
    for (int i = 0; i < 40; ++i) {
      const auto response =
          client.Query({static_cast<NodeId>(i % kNumNodes)},
                       QueryMode::kSketch);
      if (!response.has_value()) {
        statuses += '?';
      } else if (response->status == StatusCode::kOk) {
        statuses += response->degraded ? 'd' : 'o';
      } else {
        statuses += 'u';
      }
    }
    failpoint::Clear("serve.shard.rpc");
    return statuses;
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second) << "same seed must replay the same schedule";
  // The schedule injected faults and let successes through (p=0.5 over 40
  // draws makes an all-one-way run vanishingly unlikely).
  EXPECT_NE(first.find('u'), std::string::npos);
  EXPECT_NE(first.find('o'), std::string::npos);
  unsetenv("IPIN_FAILPOINT_SEED");
}

TEST_F(RouterTest, LegRecordsLandInFlightRecorderWithShardTag) {
  StartShards(2);
  StartRouter();
  OracleClient client = RouterClient();
  ASSERT_TRUE(client.Query({1, 2, 3, 40, 50}).has_value());

  // One overall record (shard=-1) plus one record per answering leg, all
  // sharing the request's trace id.
  const auto records = router_->flight_recorder().RecentSnapshot();
  ASSERT_FALSE(records.empty());
  bool saw_overall = false;
  bool saw_leg = false;
  for (const auto& record : records) {
    if (record.shard < 0) saw_overall = true;
    if (record.shard >= 0) {
      saw_leg = true;
      EXPECT_LT(record.shard, 2);
    }
  }
  EXPECT_TRUE(saw_overall);
  EXPECT_TRUE(saw_leg);
  EXPECT_NE(router_->DebugDump().find("\"shard\""), std::string::npos);
}

// --- Live resharding: double-dispatch, replica failover, fleet swaps ------

// The zero-downtime tentpole, in-process: growing the fleet with a
// transition block keeps every answer bit-identical to the single index
// even while the new shards' backends DO NOT EXIST YET — moved seeds fall
// back to their old owners.
TEST_F(RouterTest, DoubleDispatchKeepsAnswersExactDuringReshard) {
  StartShards(2);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probe_interval_ms = 30;
  StartRouter(options);
  OracleClient client = RouterClient();

  std::vector<ShardInfo> grown_infos(3);
  for (size_t i = 0; i < 2; ++i) {
    grown_infos[i].name = "shard" + std::to_string(i);
    grown_infos[i].endpoint.unix_socket_path = socket_paths_[i];
  }
  grown_infos[2].name = "shard2";
  grown_infos[2].endpoint.unix_socket_path = ShardSocket(2);
  auto grown = std::make_shared<ShardMap>(grown_infos);
  grown->BeginTransition(map_);
  std::vector<NodeId> all_seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) all_seeds.push_back(u);
  ASSERT_FALSE(grown->PartitionSeeds(all_seeds)[2].empty())
      << "the grown map must move some seeds to shard2";
  manager_->Install(grown);

  // Every instant of the transition answers exactly, repeatedly (the
  // health tracker is meanwhile marking the absent shard2 down — neither
  // state may cost coverage).
  for (int i = 0; i < 5; ++i) {
    const auto response = client.Query(all_seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk) << "iteration " << i;
    EXPECT_FALSE(response->degraded) << "iteration " << i;
    EXPECT_DOUBLE_EQ(response->coverage, 1.0);
    EXPECT_DOUBLE_EQ(response->estimate,
                     full_->EstimateUnionSize(all_seeds));
  }

  // Topk merges across BOTH epochs' fleets and dedupes moved nodes.
  Request topk;
  topk.method = Method::kTopk;
  topk.k = 5;
  std::string error;
  const auto topk_response = client.Call(topk, &error);
  ASSERT_TRUE(topk_response.has_value()) << error;
  EXPECT_EQ(topk_response->status, StatusCode::kOk);
  EXPECT_FALSE(topk_response->degraded);
  ASSERT_EQ(topk_response->topk.size(), 5u);

  // The admin verb reports the transition.
  Request status;
  status.method = Method::kReshardStatus;
  const auto mid = client.Call(status, &error);
  ASSERT_TRUE(mid.has_value()) << error;
  double in_transition = -1.0, shards = -1.0, prev_shards = -1.0;
  for (const auto& [name, value] : mid->info) {
    if (name == "in_transition") in_transition = value;
    if (name == "shards") shards = value;
    if (name == "prev_shards") prev_shards = value;
  }
  EXPECT_DOUBLE_EQ(in_transition, 1.0);
  EXPECT_DOUBLE_EQ(shards, 3.0);
  EXPECT_DOUBLE_EQ(prev_shards, 2.0);

  // Materialize shard2, finalize the map: still exact, transition gone.
  socket_paths_.push_back(grown_infos[2].endpoint.unix_socket_path);
  auto index = std::make_unique<IndexManager>("");
  index->Install(std::make_shared<const IrsApprox>(
      ExtractShardIndex(*full_, *grown, 2)));
  shard_indexes_.push_back(std::move(index));
  shard_servers_.push_back(nullptr);
  StartShard(2);
  manager_->Install(std::make_shared<const ShardMap>(grown_infos));

  const auto after = client.Query(all_seeds, QueryMode::kSketch);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, StatusCode::kOk);
  EXPECT_FALSE(after->degraded);
  EXPECT_DOUBLE_EQ(after->estimate, full_->EstimateUnionSize(all_seeds));
  const auto done = client.Call(status, &error);
  ASSERT_TRUE(done.has_value()) << error;
  for (const auto& [name, value] : done->info) {
    if (name == "in_transition") EXPECT_DOUBLE_EQ(value, 0.0);
    if (name == "shards") EXPECT_DOUBLE_EQ(value, 3.0);
    if (name == "prev_shards") EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

// Replica failover end to end: a replica backend keeps the shard's answers
// exact through the primary's death, and the primary takes traffic back
// once probes see it healthy.
TEST_F(RouterTest, ReplicaFailoverKeepsShardAnswersExact) {
  StartShards(2);
  std::vector<ShardInfo> infos(2);
  for (size_t i = 0; i < 2; ++i) {
    infos[i].name = "shard" + std::to_string(i);
    infos[i].endpoint.unix_socket_path = socket_paths_[i];
  }
  const std::string replica_socket = ShardSocket(9);
  infos[0].replicas.push_back(
      ShardEndpoint{.unix_socket_path = replica_socket});
  auto with_replica = std::make_shared<const ShardMap>(infos);
  manager_->Install(with_replica);

  // The replica serves the SAME shard-0 slice on its own socket.
  ServerOptions replica_options;
  replica_options.unix_socket_path = replica_socket;
  replica_options.num_workers = 2;
  OracleServer replica_server(shard_indexes_[0].get(), replica_options);
  ASSERT_TRUE(replica_server.Start());

  RouterOptions options;
  options.connect_timeout_ms = 100;
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probe_interval_ms = 30;
  StartRouter(options);
  OracleClient client = RouterClient();

  std::vector<NodeId> all_seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) all_seeds.push_back(u);
  const auto shard0_seeds = with_replica->PartitionSeeds(all_seeds)[0];
  ASSERT_FALSE(shard0_seeds.empty());
  const double truth = full_->EstimateUnionSize(shard0_seeds);

  const auto before = client.Query(shard0_seeds, QueryMode::kSketch);
  ASSERT_TRUE(before.has_value());
  ASSERT_DOUBLE_EQ(before->estimate, truth);

  // Kill the primary. Failover is promotion, not hedging: once the health
  // tracker moves the active endpoint, EVERY leg dials the replica, so
  // answers return to exact and stay there.
  StopShard(0);
  bool promoted = false;
  int unavailable = 0;
  for (int spin = 0; spin < 300; ++spin) {
    const auto response = client.Query(shard0_seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    // Until down_after consecutive failures open the primary's circuit the
    // shard0-only request has zero answering legs — UNAVAILABLE, by the
    // partial-result contract. Promotion must then end the outage; nothing
    // other than that brief window may surface.
    if (response->status == StatusCode::kUnavailable) {
      ++unavailable;
      EXPECT_FALSE(promoted) << "no outage after the replica took over";
    } else {
      ASSERT_EQ(response->status, StatusCode::kOk);
      if (!response->degraded && response->estimate == truth) {
        promoted = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(promoted) << "replica was never promoted";
  // The detection window is bounded by the circuit threshold: one failed
  // query per remaining allowed failure, not a lingering outage.
  EXPECT_LE(unavailable, options.health.down_after);

  // Restart the primary: probes demote the replica; exactness holds across
  // the switch-back.
  StartShard(0);
  for (int i = 0; i < 20; ++i) {
    const auto response = client.Query(shard0_seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk);
    if (!response->degraded) EXPECT_DOUBLE_EQ(response->estimate, truth);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  replica_server.Shutdown();
  std::remove(replica_socket.c_str());
}

// Satellite: probe recovery racing a reshard install. A shard dies, the
// circuit opens, and WHILE it is down the map is swapped for a transition
// map (fleet replacement). The new fleet's prober must still recover the
// restarted shard, and the transition must hold coverage at 1 throughout.
TEST_F(RouterTest, ProbeRecoveryRacesReshardInstall) {
  StartShards(3);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probe_interval_ms = 30;
  StartRouter(options);
  OracleClient client = RouterClient();

  std::vector<NodeId> all_seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) all_seeds.push_back(u);
  StopShard(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(all_seeds, QueryMode::kSketch).has_value());
  }
  WaitForShardState(1, ShardState::kDown);

  // Mid-outage fleet replacement: grow 3 -> 4 with shard3 backendless.
  std::vector<ShardInfo> grown_infos(4);
  for (size_t i = 0; i < 3; ++i) {
    grown_infos[i].name = "shard" + std::to_string(i);
    grown_infos[i].endpoint.unix_socket_path = socket_paths_[i];
  }
  grown_infos[3].name = "shard3";
  grown_infos[3].endpoint.unix_socket_path = ShardSocket(3);
  auto grown = std::make_shared<ShardMap>(grown_infos);
  grown->BeginTransition(map_);
  manager_->Install(grown);

  // Restart the dead shard: the REPLACED fleet's probes (its health state
  // started fresh) must pick it up, and with the fallback legs covering
  // shard3 the answer converges back to exact.
  StartShard(1);
  bool recovered = false;
  for (int spin = 0; spin < 300; ++spin) {
    const auto response = client.Query(all_seeds, QueryMode::kSketch);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, StatusCode::kOk);
    if (!response->degraded &&
        response->estimate == full_->EstimateUnionSize(all_seeds)) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered)
      << "reshard install while a shard was down broke probe recovery";
}

// Satellite: a fleet replacement resets the circuit breaker. A down shard
// whose backend is already back answers the FIRST query after the map swap
// — the new fleet must not inherit the open circuit and wait for a probe.
TEST_F(RouterTest, FleetReplacementResetsTheCircuitBreaker) {
  StartShards(2);
  RouterOptions options;
  options.connect_timeout_ms = 100;
  options.health.suspect_after = 1;
  options.health.down_after = 2;
  options.health.probe_interval_ms = 60000;  // probes can't help here
  StartRouter(options);
  OracleClient client = RouterClient();

  std::vector<NodeId> all_seeds;
  for (NodeId u = 0; u < kNumNodes; ++u) all_seeds.push_back(u);
  StopShard(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(all_seeds, QueryMode::kSketch).has_value());
  }
  WaitForShardState(1, ShardState::kDown);
  StartShard(1);

  // With the probe interval effectively infinite, only the fleet swap can
  // close the circuit.
  manager_->Install(std::make_shared<const ShardMap>(*map_));
  const auto response = client.Query(all_seeds, QueryMode::kSketch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_FALSE(response->degraded);
  EXPECT_DOUBLE_EQ(response->estimate, full_->EstimateUnionSize(all_seeds));
}

}  // namespace
}  // namespace ipin::serve
