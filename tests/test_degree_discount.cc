#include "ipin/baselines/degree_discount.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ipin/baselines/degree.h"

namespace ipin {
namespace {

TEST(DegreeDiscountTest, FirstPickIsMaxDegree) {
  const StaticGraph g = StaticGraph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}});
  const auto seeds = SelectSeedsDegreeDiscount(g, 1, 0.1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(DegreeDiscountTest, DiscountsNeighborsOfSelectedSeeds) {
  // 0 -> {2,3,4}; 1 -> {5,6}; 2 -> {3,4}. After picking 0, node 2 is
  // discounted (two of its targets already "hit" and it is 0's neighbour),
  // so 1 wins the second slot even though 2's raw degree equals 1's.
  const StaticGraph g = StaticGraph::FromEdges(
      7, {{0, 2}, {0, 3}, {0, 4}, {1, 5}, {1, 6}, {2, 3}, {2, 4}});
  const auto seeds = SelectSeedsDegreeDiscount(g, 2, 0.5);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 1u);
}

TEST(DegreeDiscountTest, ZeroProbabilityStillDiscountsSelectedNeighbors) {
  // With p = 0 the score is d - 2t: picking a hub pushes its targets down.
  const StaticGraph g = StaticGraph::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}, {1, 2}});
  const auto seeds = SelectSeedsDegreeDiscount(g, 2, 0.0);
  ASSERT_EQ(seeds.size(), 2u);
  // 0 and 1 have degree 3; 0 wins by id, then 1 is discounted (target of 0)
  // to 3 - 2 = 1... still the best remaining (others have degree <= 1)?
  // Nodes 2..5 have degree 0. So 1 is still second.
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 1u);
}

TEST(DegreeDiscountTest, SeedsDistinctAndBounded) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 40; ++u) {
    edges.emplace_back(u, (u * 7 + 1) % 40);
    edges.emplace_back(u, (u * 11 + 3) % 40);
  }
  const StaticGraph g = StaticGraph::FromEdges(40, edges);
  const auto seeds = SelectSeedsDegreeDiscount(g, 15, 0.3);
  ASSERT_EQ(seeds.size(), 15u);
  const std::set<NodeId> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), 15u);
}

TEST(DegreeDiscountTest, KBounds) {
  const StaticGraph g = StaticGraph::FromEdges(3, {{0, 1}});
  EXPECT_TRUE(SelectSeedsDegreeDiscount(g, 0, 0.5).empty());
  EXPECT_EQ(SelectSeedsDegreeDiscount(g, 99, 0.5).size(), 3u);
}

TEST(DegreeDiscountTest, DeterministicAndMatchesHighDegreeOnDisjointGraph) {
  // With disjoint neighbourhoods no discounting ever applies, so the result
  // equals plain top-k out-degree.
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Node 3i has edges to 3i+1, 3i+2 (hubs of disjoint triangles).
  for (NodeId i = 0; i < 10; ++i) {
    edges.emplace_back(3 * i, 3 * i + 1);
    edges.emplace_back(3 * i, 3 * i + 2);
  }
  const StaticGraph g = StaticGraph::FromEdges(30, edges);
  const auto dd = SelectSeedsDegreeDiscount(g, 5, 0.4);
  const auto hd = SelectSeedsHighDegree(g, 5);
  EXPECT_EQ(dd, hd);
}

TEST(DegreeDiscountTest, InteractionOverloadWorks) {
  InteractionGraph g(4);
  g.AddInteraction(0, 1, 1);
  g.AddInteraction(0, 2, 2);
  g.AddInteraction(3, 1, 3);
  const auto seeds = SelectSeedsDegreeDiscount(g, 1, 0.5);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

}  // namespace
}  // namespace ipin
