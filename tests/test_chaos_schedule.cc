#include "ipin/serve/chaos.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

// The pure half of the chaos-drill engine: schedules must be a
// deterministic function of (scenario, seed, options) — that is the whole
// replay contract ("replay with --seed=N"). No processes are spawned here;
// this binary is in the TSan suite.

namespace ipin::serve {
namespace {

TEST(ChaosScheduleTest, SameSeedYieldsByteIdenticalJson) {
  for (const char* scenario :
       {"kill-primary-mid-reshard", "replica-failover"}) {
    const auto a = ChaosSchedule::Generate(scenario, 42);
    const auto b = ChaosSchedule::Generate(scenario, 42);
    ASSERT_TRUE(a.has_value()) << scenario;
    ASSERT_TRUE(b.has_value()) << scenario;
    EXPECT_EQ(a->ToJson(), b->ToJson()) << scenario;
  }
}

TEST(ChaosScheduleTest, DifferentSeedsDifferInOffsetsOrVictim) {
  const auto a = ChaosSchedule::Generate("kill-primary-mid-reshard", 1);
  const auto b = ChaosSchedule::Generate("kill-primary-mid-reshard", 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->ToJson(), b->ToJson());
}

TEST(ChaosScheduleTest, UnknownScenarioIsRejected) {
  EXPECT_FALSE(ChaosSchedule::Generate("eat-the-disk", 7).has_value());
}

TEST(ChaosScheduleTest, ActionsAreOrderedWithPositiveOffsets) {
  const auto schedule =
      ChaosSchedule::Generate("kill-primary-mid-reshard", 1234);
  ASSERT_TRUE(schedule.has_value());
  int64_t last = 0;
  for (const ChaosAction& action : schedule->actions) {
    EXPECT_GE(action.at_ms, 1);
    EXPECT_GE(action.at_ms, last) << "actions must be time-ordered";
    last = action.at_ms;
  }
}

TEST(ChaosScheduleTest, ReshardScenarioHasTheFullActionArc) {
  const auto schedule =
      ChaosSchedule::Generate("kill-primary-mid-reshard", 99);
  ASSERT_TRUE(schedule.has_value());
  ASSERT_EQ(schedule->actions.size(), 6u);
  EXPECT_EQ(schedule->actions[0].kind, ChaosActionKind::kSpawnNewShards);
  EXPECT_EQ(schedule->actions[1].kind,
            ChaosActionKind::kInstallTransitionMap);
  EXPECT_EQ(schedule->actions[2].kind, ChaosActionKind::kKillPrimary);
  EXPECT_EQ(schedule->actions[3].kind, ChaosActionKind::kCorruptMapReload);
  EXPECT_EQ(schedule->actions[4].kind, ChaosActionKind::kRestartDaemon);
  EXPECT_EQ(schedule->actions[5].kind, ChaosActionKind::kFinalizeMap);
  // The restart targets exactly the daemon the kill took out.
  EXPECT_EQ(schedule->actions[2].target, schedule->actions[4].target);
  EXPECT_EQ(schedule->actions[2].target.rfind("old", 0), 0u);
}

TEST(ChaosScheduleTest, VictimIsSeedChosenWithinTheOldFleet) {
  ChaosScheduleOptions options;
  options.num_old_shards = 4;
  std::set<std::string> victims;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const auto schedule =
        ChaosSchedule::Generate("kill-primary-mid-reshard", seed, options);
    ASSERT_TRUE(schedule.has_value());
    const std::string& target = schedule->actions[2].target;
    ASSERT_EQ(target.rfind("old", 0), 0u);
    const int index = std::stoi(target.substr(3));
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 4);
    victims.insert(target);
  }
  // 64 seeds over 4 shards: the draw must actually vary.
  EXPECT_GT(victims.size(), 1u);
}

TEST(ChaosScheduleTest, JsonCarriesSchemaSeedAndKindSpellings) {
  const auto schedule = ChaosSchedule::Generate("replica-failover", 5);
  ASSERT_TRUE(schedule.has_value());
  const std::string json = schedule->ToJson();
  EXPECT_NE(json.find("\"schema\": \"ipin.chaos.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"kill-primary\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"restart-daemon\""), std::string::npos);
}

TEST(ChaosScheduleTest, KindNamesAreStable) {
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kSpawnNewShards),
               "spawn-new-shards");
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kInstallTransitionMap),
               "install-transition-map");
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kKillPrimary),
               "kill-primary");
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kCorruptMapReload),
               "corrupt-map-reload");
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kRestartDaemon),
               "restart-daemon");
  EXPECT_STREQ(ChaosActionKindName(ChaosActionKind::kFinalizeMap),
               "finalize-map");
}

TEST(ChaosScheduleTest, SpacingAndJitterBoundTheOffsets) {
  ChaosScheduleOptions options;
  options.spacing_ms = 100;
  options.jitter = 0.2;  // +-20 ms around each 100 ms step
  const auto schedule =
      ChaosSchedule::Generate("kill-primary-mid-reshard", 17, options);
  ASSERT_TRUE(schedule.has_value());
  for (size_t i = 0; i < schedule->actions.size(); ++i) {
    const int64_t nominal = 100 * static_cast<int64_t>(i + 1);
    EXPECT_GE(schedule->actions[i].at_ms, nominal - 20) << "action " << i;
    EXPECT_LE(schedule->actions[i].at_ms, nominal + 20) << "action " << i;
  }
}

}  // namespace
}  // namespace ipin::serve
