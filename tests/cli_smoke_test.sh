#!/usr/bin/env bash
# End-to-end smoke test of the ipin_cli binary: every subcommand in a
# realistic generate -> index -> query pipeline. Invoked by ctest with the
# binary path as $1 and the build mode ("obs-enabled" or "obs-disabled")
# as $2. Under -DIPIN_OBS_DISABLED the IPIN_* instrumentation macros
# compile out, so assertions on recorded metric/span content only hold in
# obs-enabled builds; the plumbing (valid JSON, schema tags) holds in both.
set -euo pipefail

CLI="$1"
OBS_MODE="${2:-obs-enabled}"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

"${CLI}" generate --dataset=slashdot --scale=0.01 --out="${WORK}/net.txt" \
  | grep -q "wrote"
"${CLI}" stats "${WORK}/net.txt" | grep -q "interactions"
"${CLI}" build-index --in="${WORK}/net.txt" --window-pct=10 \
  --out="${WORK}/index.bin" | grep -q "built index"
"${CLI}" topk --index="${WORK}/index.bin" --k=5 | grep -q "combined reach"
"${CLI}" query --index="${WORK}/index.bin" --seeds=0,1,2 \
  | grep -q "estimated influence"
"${CLI}" simulate --in="${WORK}/net.txt" --seeds=0,1,2 --p=0.5 --runs=5 \
  | grep -q "TCIC spread"
"${CLI}" convert --in="${WORK}/net.txt" --dimacs="${WORK}/net.gr"
head -1 "${WORK}/net.gr" | grep -q "^p sp"

# The report command must emit a pipeline summary and, with --metrics_out,
# a valid JSON run report containing the headline instrumentation.
"${CLI}" report --in="${WORK}/net.txt" --window-pct=10 \
  --metrics_out="${WORK}/m.json" | grep -q "pipeline report"
test -s "${WORK}/m.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${WORK}/m.json" > /dev/null
else
  echo "python3 unavailable; skipping JSON syntax validation" >&2
fi
grep -q '"ipin.metrics.v1"' "${WORK}/m.json"
# build-index also honors the global flag.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index2.bin" \
  --metrics_out="${WORK}/m2.json" > /dev/null
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"irs.exact.edges_scanned"' "${WORK}/m.json"
  grep -q '"sketch.vhll' "${WORK}/m.json"
  grep -q '"oracle.sketch.query_us"' "${WORK}/m.json"
  # Histogram snapshots carry interpolated percentiles.
  grep -q '"p95"' "${WORK}/m.json"
  grep -q '"irs.approx.edges_scanned"' "${WORK}/m2.json"
fi

# --trace_out writes a Chrome trace_event JSON file with span events.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index3.bin" \
  --trace_out="${WORK}/trace.json" > /dev/null
test -s "${WORK}/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${WORK}/trace.json" > /dev/null
fi
grep -q '"traceEvents"' "${WORK}/trace.json"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"ph":"B"' "${WORK}/trace.json"
  grep -q 'irs.approx.compute' "${WORK}/trace.json"
fi

# report --format selects the exporter: prom and json must both work.
# (Capture to files: grep -q on a pipe would SIGPIPE the CLI mid-write.)
"${CLI}" report --in="${WORK}/net.txt" --format=prom > "${WORK}/report.prom"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '^# TYPE irs_exact_edges_scanned_total counter' "${WORK}/report.prom"
  grep -q '_p95 ' "${WORK}/report.prom"
fi
"${CLI}" report --in="${WORK}/net.txt" --format=json > "${WORK}/report.json"
grep -q '"ipin.metrics.v1"' "${WORK}/report.json"
if "${CLI}" report --in="${WORK}/net.txt" --format=nonsense 2>/dev/null; then
  echo "expected failure on bad --format" >&2
  exit 1
fi

# Failure paths must fail loudly — and missing/unreadable inputs are the
# user's problem, reported with a one-line diagnostic and exit code 2.
set +e
"${CLI}" topk --index="${WORK}/does-not-exist.bin" 2>"${WORK}/err1.txt"
[ $? -eq 2 ] || { echo "missing index should exit 2" >&2; exit 1; }
grep -q "cannot open index" "${WORK}/err1.txt" \
  || { echo "missing index should print a cannot-open line" >&2; exit 1; }
[ "$(wc -l < "${WORK}/err1.txt")" -eq 1 ] \
  || { echo "missing index should print exactly one stderr line" >&2; exit 1; }
"${CLI}" stats "${WORK}/no-such-net.txt" 2>"${WORK}/err2.txt"
[ $? -eq 2 ] || { echo "missing dataset should exit 2" >&2; exit 1; }
grep -q "cannot open dataset" "${WORK}/err2.txt" \
  || { echo "missing dataset should print a cannot-open line" >&2; exit 1; }
"${CLI}" frobnicate 2>/dev/null
[ $? -ne 0 ] || { echo "expected failure on unknown command" >&2; exit 1; }
set -e

# Lenient parsing: a damaged edge file loads with --lenient, fails without.
printf '0 1 5\ngarbage line\n1 2 6\n' > "${WORK}/damaged.txt"
if "${CLI}" stats "${WORK}/damaged.txt" 2>/dev/null; then
  echo "strict parse should reject a damaged file" >&2
  exit 1
fi
"${CLI}" stats "${WORK}/damaged.txt" --lenient | grep -q "interactions"

# Checkpointed builds: the flags produce checkpoint files, and a rerun
# resumes from them instead of rescanning.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index4.bin" \
  --checkpoint_dir="${WORK}/ckpt" --checkpoint_every=500 \
  | grep -q "checkpointing:"
ls "${WORK}/ckpt" | grep -q '\.ipinckpt$'
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index5.bin" \
  --checkpoint_dir="${WORK}/ckpt" --checkpoint_every=500 \
  | grep -q "resumed [1-9]"
cmp "${WORK}/index4.bin" "${WORK}/index5.bin" \
  || { echo "resumed index differs from the uninterrupted one" >&2; exit 1; }

# Failpoints are reachable from the environment: an injected load error
# must fail the command...
if IPIN_FAILPOINTS="graph_io.load=error" "${CLI}" stats "${WORK}/net.txt" \
    2>/dev/null; then
  echo "expected failure with graph_io.load failpoint armed" >&2
  exit 1
fi
# ...and a corrupted saved index must degrade, not crash: flip one byte in
# a section payload and the query must still answer.
cp "${WORK}/index.bin" "${WORK}/index_corrupt.bin"
python3 - "$WORK/index_corrupt.bin" <<'EOF' 2>/dev/null || \
  printf '\x41' | dd of="${WORK}/index_corrupt.bin" bs=1 seek=200 \
    conv=notrunc status=none
import sys
path = sys.argv[1]
with open(path, "r+b") as f:
    f.seek(200)
    byte = f.read(1)
    f.seek(200)
    f.write(bytes([byte[0] ^ 0x20]))
EOF
"${CLI}" query --index="${WORK}/index_corrupt.bin" --seeds=0,1,2 \
  2>"${WORK}/err3.txt" | grep -q "estimated influence"
grep -qi "degraded" "${WORK}/err3.txt" \
  || { echo "degraded load should warn on stderr" >&2; exit 1; }

# Run ledger: --ledger_dir persists one ipin.run.v1 manifest per command
# in both build modes (the ledger is cold-path code, never compiled out).
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index6.bin" \
  --ledger_dir="${WORK}/ledgers" 2>"${WORK}/led1.txt" > /dev/null
grep -q "wrote run ledger to" "${WORK}/led1.txt" \
  || { echo "ledger path line missing" >&2; exit 1; }
ls "${WORK}/ledgers" | grep -q '\.ipinrun$' \
  || { echo "no .ipinrun file written" >&2; exit 1; }
grep -aq '"ipin.run.v1"' "${WORK}/ledgers"/*.ipinrun \
  || { echo "ledger missing schema tag" >&2; exit 1; }
grep -aq '"outcome":"ok"' "${WORK}/ledgers"/*.ipinrun \
  || { echo "ledger missing ok outcome" >&2; exit 1; }
# The IPIN_LEDGER_DIR env fallback works too.
IPIN_LEDGER_DIR="${WORK}/ledgers_env" "${CLI}" stats "${WORK}/net.txt" \
  > /dev/null 2>&1
ls "${WORK}/ledgers_env" | grep -q '\.ipinrun$' \
  || { echo "IPIN_LEDGER_DIR fallback did not write a ledger" >&2; exit 1; }

# End-of-command summary line on success, at the default log level.
grep -q "done in .*peak rss .*threads" "${WORK}/led1.txt" \
  || { echo "summary line missing" >&2; exit 1; }
# ...and never on the (single-line stderr) error paths.
set +e
"${CLI}" topk --index="${WORK}/does-not-exist.bin" 2>"${WORK}/err4.txt"
set -e
if grep -q "done in" "${WORK}/err4.txt"; then
  echo "summary line must not appear on failure" >&2; exit 1
fi
[ "$(wc -l < "${WORK}/err4.txt")" -eq 1 ] \
  || { echo "error path grew beyond one stderr line" >&2; exit 1; }

# Heartbeats: --progress_out appends ipin.heartbeat.v1 lines; the final
# beat on stop guarantees at least one in obs-enabled builds. In disabled
# builds the flag is an accepted no-op.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index7.bin" \
  --progress_out="${WORK}/hb.jsonl" --heartbeat_ms=20 > /dev/null
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  test -s "${WORK}/hb.jsonl"
  grep -q '"ipin.heartbeat.v1"' "${WORK}/hb.jsonl"
  grep -q '"rss_bytes"' "${WORK}/hb.jsonl"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${WORK}/hb.jsonl" <<'EOF'
import json, sys
prev = 0
for line in open(sys.argv[1]):
    beat = json.loads(line)
    assert beat["seq"] > prev, (beat["seq"], prev)
    prev = beat["seq"]
EOF
  fi
  # An unopenable --progress_out is the user's problem: exit 2.
  set +e
  "${CLI}" stats "${WORK}/net.txt" \
    --progress_out="${WORK}/no/such/dir/hb.jsonl" 2>/dev/null
  [ $? -eq 2 ] || { echo "bad --progress_out should exit 2" >&2; exit 1; }
  set -e
fi

# A resumed checkpointed build records a checkpoint.resume event in its
# ledger (the run ledger works in both obs modes).
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index8.bin" \
  --checkpoint_dir="${WORK}/ckpt2" --checkpoint_every=500 > /dev/null
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index9.bin" \
  --checkpoint_dir="${WORK}/ckpt2" --checkpoint_every=500 \
  --ledger_dir="${WORK}/ledgers_resume" > /dev/null
grep -aq '"outcome":"resumed"' "${WORK}/ledgers_resume"/*.ipinrun \
  || { echo "resumed build ledger lacks resumed outcome" >&2; exit 1; }
grep -aq '"checkpoint.resume"' "${WORK}/ledgers_resume"/*.ipinrun \
  || { echo "resumed build ledger lacks checkpoint.resume event" >&2; exit 1; }
cmp "${WORK}/index8.bin" "${WORK}/index9.bin" \
  || { echo "ledgered resume changed the index bytes" >&2; exit 1; }

echo "cli smoke test OK"
