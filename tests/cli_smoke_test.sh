#!/usr/bin/env bash
# End-to-end smoke test of the ipin_cli binary: every subcommand in a
# realistic generate -> index -> query pipeline. Invoked by ctest with the
# binary path as $1 and the build mode ("obs-enabled" or "obs-disabled")
# as $2. Under -DIPIN_OBS_DISABLED the IPIN_* instrumentation macros
# compile out, so assertions on recorded metric/span content only hold in
# obs-enabled builds; the plumbing (valid JSON, schema tags) holds in both.
set -euo pipefail

CLI="$1"
OBS_MODE="${2:-obs-enabled}"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

"${CLI}" generate --dataset=slashdot --scale=0.01 --out="${WORK}/net.txt" \
  | grep -q "wrote"
"${CLI}" stats "${WORK}/net.txt" | grep -q "interactions"
"${CLI}" build-index --in="${WORK}/net.txt" --window-pct=10 \
  --out="${WORK}/index.bin" | grep -q "built index"
"${CLI}" topk --index="${WORK}/index.bin" --k=5 | grep -q "combined reach"
"${CLI}" query --index="${WORK}/index.bin" --seeds=0,1,2 \
  | grep -q "estimated influence"
"${CLI}" simulate --in="${WORK}/net.txt" --seeds=0,1,2 --p=0.5 --runs=5 \
  | grep -q "TCIC spread"
"${CLI}" convert --in="${WORK}/net.txt" --dimacs="${WORK}/net.gr"
head -1 "${WORK}/net.gr" | grep -q "^p sp"

# The report command must emit a pipeline summary and, with --metrics_out,
# a valid JSON run report containing the headline instrumentation.
"${CLI}" report --in="${WORK}/net.txt" --window-pct=10 \
  --metrics_out="${WORK}/m.json" | grep -q "pipeline report"
test -s "${WORK}/m.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${WORK}/m.json" > /dev/null
else
  echo "python3 unavailable; skipping JSON syntax validation" >&2
fi
grep -q '"ipin.metrics.v1"' "${WORK}/m.json"
# build-index also honors the global flag.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index2.bin" \
  --metrics_out="${WORK}/m2.json" > /dev/null
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"irs.exact.edges_scanned"' "${WORK}/m.json"
  grep -q '"sketch.vhll' "${WORK}/m.json"
  grep -q '"oracle.sketch.query_us"' "${WORK}/m.json"
  # Histogram snapshots carry interpolated percentiles.
  grep -q '"p95"' "${WORK}/m.json"
  grep -q '"irs.approx.edges_scanned"' "${WORK}/m2.json"
fi

# --trace_out writes a Chrome trace_event JSON file with span events.
"${CLI}" build-index --in="${WORK}/net.txt" --out="${WORK}/index3.bin" \
  --trace_out="${WORK}/trace.json" > /dev/null
test -s "${WORK}/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${WORK}/trace.json" > /dev/null
fi
grep -q '"traceEvents"' "${WORK}/trace.json"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '"ph":"B"' "${WORK}/trace.json"
  grep -q 'irs.approx.compute' "${WORK}/trace.json"
fi

# report --format selects the exporter: prom and json must both work.
# (Capture to files: grep -q on a pipe would SIGPIPE the CLI mid-write.)
"${CLI}" report --in="${WORK}/net.txt" --format=prom > "${WORK}/report.prom"
if [ "${OBS_MODE}" = "obs-enabled" ]; then
  grep -q '^# TYPE irs_exact_edges_scanned counter' "${WORK}/report.prom"
  grep -q '_p95 ' "${WORK}/report.prom"
fi
"${CLI}" report --in="${WORK}/net.txt" --format=json > "${WORK}/report.json"
grep -q '"ipin.metrics.v1"' "${WORK}/report.json"
if "${CLI}" report --in="${WORK}/net.txt" --format=nonsense 2>/dev/null; then
  echo "expected failure on bad --format" >&2
  exit 1
fi

# Failure paths must fail loudly.
if "${CLI}" topk --index="${WORK}/does-not-exist.bin" 2>/dev/null; then
  echo "expected failure on missing index" >&2
  exit 1
fi
if "${CLI}" frobnicate 2>/dev/null; then
  echo "expected failure on unknown command" >&2
  exit 1
fi

echo "cli smoke test OK"
