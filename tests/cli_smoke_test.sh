#!/usr/bin/env bash
# End-to-end smoke test of the ipin_cli binary: every subcommand in a
# realistic generate -> index -> query pipeline. Invoked by ctest with the
# binary path as $1.
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

"${CLI}" generate --dataset=slashdot --scale=0.01 --out="${WORK}/net.txt" \
  | grep -q "wrote"
"${CLI}" stats "${WORK}/net.txt" | grep -q "interactions"
"${CLI}" build-index --in="${WORK}/net.txt" --window-pct=10 \
  --out="${WORK}/index.bin" | grep -q "built index"
"${CLI}" topk --index="${WORK}/index.bin" --k=5 | grep -q "combined reach"
"${CLI}" query --index="${WORK}/index.bin" --seeds=0,1,2 \
  | grep -q "estimated influence"
"${CLI}" simulate --in="${WORK}/net.txt" --seeds=0,1,2 --p=0.5 --runs=5 \
  | grep -q "TCIC spread"
"${CLI}" convert --in="${WORK}/net.txt" --dimacs="${WORK}/net.gr"
head -1 "${WORK}/net.gr" | grep -q "^p sp"

# Failure paths must fail loudly.
if "${CLI}" topk --index="${WORK}/does-not-exist.bin" 2>/dev/null; then
  echo "expected failure on missing index" >&2
  exit 1
fi
if "${CLI}" frobnicate 2>/dev/null; then
  echo "expected failure on unknown command" >&2
  exit 1
fi

echo "cli smoke test OK"
