#include "ipin/baselines/mc_greedy.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_exact.h"
#include "ipin/datasets/synthetic.h"
#include "test_util.h"

namespace ipin {
namespace {

McGreedyOptions Options(Duration window, double p, size_t runs = 30) {
  McGreedyOptions options;
  options.tcic.window = window;
  options.tcic.probability = p;
  options.num_runs = runs;
  return options;
}

TEST(McGreedyTest, DeterministicCascadePicksBestSpreader) {
  // p = 1 makes spreads deterministic; on Figure 1a with window 3, seed a
  // activates {a,b,d,e} (4 nodes) — the best single seed.
  const InteractionGraph g = FigureOneGraph();
  const McGreedyResult result =
      SelectSeedsMcGreedy(g, 1, Options(3, 1.0, 1));
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], kA);
  EXPECT_DOUBLE_EQ(result.spread_after_pick[0], 4.0);
}

TEST(McGreedyTest, SpreadAfterPickIsNonDecreasing) {
  const InteractionGraph g = GenerateUniformRandomNetwork(40, 400, 1000, 3);
  const McGreedyResult result =
      SelectSeedsMcGreedy(g, 6, Options(200, 0.5, 20));
  ASSERT_EQ(result.seeds.size(), 6u);
  for (size_t i = 1; i < result.spread_after_pick.size(); ++i) {
    EXPECT_GE(result.spread_after_pick[i],
              result.spread_after_pick[i - 1] - 1e-9);
  }
}

TEST(McGreedyTest, SeedsAreDistinct) {
  const InteractionGraph g = GenerateUniformRandomNetwork(30, 300, 800, 5);
  const McGreedyResult result =
      SelectSeedsMcGreedy(g, 8, Options(300, 0.5, 10));
  const std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), result.seeds.size());
}

TEST(McGreedyTest, DeterministicGivenSeed) {
  const InteractionGraph g = GenerateUniformRandomNetwork(25, 250, 600, 7);
  const McGreedyResult a = SelectSeedsMcGreedy(g, 4, Options(150, 0.5, 15));
  const McGreedyResult b = SelectSeedsMcGreedy(g, 4, Options(150, 0.5, 15));
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(McGreedyTest, CandidatePoolRestrictsSelection) {
  const InteractionGraph g = GenerateUniformRandomNetwork(50, 400, 1000, 9);
  McGreedyOptions options = Options(300, 0.5, 10);
  options.candidate_pool = 5;
  const McGreedyResult result = SelectSeedsMcGreedy(g, 3, options);
  // Fewer simulations than the full-candidate run.
  const McGreedyResult full = SelectSeedsMcGreedy(g, 3, Options(300, 0.5, 10));
  EXPECT_LT(result.simulations_used, full.simulations_used);
}

TEST(McGreedyTest, SimulationBudgetRespected) {
  const InteractionGraph g = GenerateUniformRandomNetwork(60, 500, 1200, 11);
  McGreedyOptions options = Options(400, 0.5, 50);
  options.max_simulations = 200;
  const McGreedyResult result = SelectSeedsMcGreedy(g, 10, options);
  // The budget may stop selection early, but must bound the work.
  EXPECT_LE(result.simulations_used, 200u + options.num_runs);
}

TEST(McGreedyTest, AgreesWithIrsGreedyOnSpreadQuality) {
  // On a deterministic cascade (p=1), the MC greedy directly optimizes the
  // simulation objective; IRS greedy optimizes channel coverage. Their seed
  // sets' spreads should be in the same ballpark (IRS within 70% of MC).
  SyntheticConfig config;
  config.num_nodes = 120;
  config.num_interactions = 1500;
  config.time_span = 4000;
  config.seed = 13;
  const InteractionGraph g = GenerateInteractionNetwork(config);
  const Duration window = 800;

  const McGreedyResult mc = SelectSeedsMcGreedy(g, 5, Options(window, 1.0, 1));
  const IrsExact irs = IrsExact::Compute(g, window);
  const ExactInfluenceOracle oracle(&irs);
  const SeedSelection irs_seeds = SelectSeedsCelf(oracle, 5);

  TcicOptions tcic;
  tcic.window = window;
  tcic.probability = 1.0;
  const double mc_spread = AverageTcicSpread(g, mc.seeds, tcic, 1, 42);
  const double irs_spread = AverageTcicSpread(g, irs_seeds.seeds, tcic, 1, 42);
  EXPECT_GE(irs_spread, 0.7 * mc_spread);
}

TEST(McGreedyTest, EmptyAndZeroK) {
  // A graph with no interactions: seeds are selected (zero gain each, like
  // the other greedy selectors) but spread stays zero.
  const InteractionGraph g(3);
  const McGreedyResult empty = SelectSeedsMcGreedy(g, 3, Options(10, 0.5, 2));
  EXPECT_EQ(empty.seeds.size(), 3u);
  for (const double s : empty.spread_after_pick) EXPECT_DOUBLE_EQ(s, 0.0);
  const InteractionGraph g2 = FigureOneGraph();
  EXPECT_TRUE(SelectSeedsMcGreedy(g2, 0, Options(3, 0.5, 2)).seeds.empty());
}

}  // namespace
}  // namespace ipin
