#include "ipin/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ipin {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(buckets)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);  // mean = 1/rate
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.NextExponential(1.0), 0.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 1.2), 100u);
    EXPECT_EQ(rng.NextZipf(1, 1.5), 0u);
  }
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(29);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.NextZipf(100, 1.2)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], n / 10);  // rank 0 takes a large share
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[i] = i;
  rng.Shuffle(&values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(37);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  rng.Shuffle(&values);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 15);  // E[fixed points] = 1
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(41);
  for (const uint64_t k : {1u, 5u, 30u, 90u}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    const std::set<uint64_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (const uint64_t x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementKGreaterThanN) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(sample.size(), 10u);
  const std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmptyUniverse) {
  Rng rng(47);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 5).empty());
}

}  // namespace
}  // namespace ipin
